//! Memory requests as seen by a controller.

use core::fmt;
use stacksim_types::{CoreId, Cycle, DramLocation, LineAddr};

/// What a memory request does.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Fetch a cache line (L2 miss fill; demand or prefetch).
    #[default]
    Read,
    /// Write a dirty line back to memory.
    Writeback,
}

/// One line-granularity request queued at a memory controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRequest {
    /// The requested cache line.
    pub line: LineAddr,
    /// Pre-decoded DRAM location of the line.
    pub location: DramLocation,
    /// Read or writeback.
    pub kind: RequestKind,
    /// Core the request originated from (writebacks keep the evicting core).
    pub core: CoreId,
    /// When the request entered the memory system.
    pub arrival: Cycle,
    /// Opaque token for matching completions back to MSHR entries.
    pub token: u64,
}

impl MemRequest {
    /// Whether the request returns data to the processor.
    pub const fn needs_reply(&self) -> bool {
        matches!(self.kind, RequestKind::Read)
    }
}

impl fmt::Display for MemRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {} {}/{}/row{} from {} {}",
            self.kind,
            self.line,
            self.location.mc,
            self.location.bank,
            self.location.row,
            self.core,
            self.arrival
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_types::{AddressMapper, MemoryGeometry, PhysAddr};

    #[test]
    fn reply_semantics() {
        let geom = MemoryGeometry::new(8 << 30, 8, 8, 4096, 2).unwrap();
        let mapper = AddressMapper::new(geom);
        let addr = PhysAddr::new(0x10000);
        let req = MemRequest {
            line: addr.line(),
            location: mapper.decode(addr),
            kind: RequestKind::Read,
            core: CoreId::new(1),
            arrival: Cycle::new(5),
            token: 7,
        };
        assert!(req.needs_reply());
        let wb = MemRequest {
            kind: RequestKind::Writeback,
            ..req
        };
        assert!(!wb.needs_reply());
        assert!(req.to_string().contains("mc"));
    }
}
