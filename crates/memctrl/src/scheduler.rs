//! Memory request scheduling policies.

use core::fmt;
use stacksim_dram::BankTickState;
use stacksim_types::Cycle;

use crate::request::MemRequest;

/// The arbitration policy a memory controller uses to pick the next request
/// from its queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulerPolicy {
    /// Strict arrival order, gated only on bank readiness.
    Fifo,
    /// First-ready, first-come-first-serve: among requests whose bank is
    /// free, prefer row-buffer hits, then the oldest (Rixner et al.; the
    /// paper's assumed controller, §2.4).
    #[default]
    FrFcfs,
}

impl SchedulerPolicy {
    /// Parses the [`Display`](fmt::Display) name back into a policy (the
    /// scenario-file spelling). `None` for an unknown name.
    ///
    /// # Examples
    ///
    /// ```
    /// use stacksim_memctrl::SchedulerPolicy;
    ///
    /// assert_eq!(SchedulerPolicy::from_name("fifo"), Some(SchedulerPolicy::Fifo));
    /// assert_eq!(SchedulerPolicy::from_name("frfcfs"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<SchedulerPolicy> {
        match name {
            "fifo" => Some(SchedulerPolicy::Fifo),
            "fr-fcfs" => Some(SchedulerPolicy::FrFcfs),
            _ => None,
        }
    }
}

impl fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerPolicy::Fifo => f.write_str("fifo"),
            SchedulerPolicy::FrFcfs => f.write_str("fr-fcfs"),
        }
    }
}

impl SchedulerPolicy {
    /// Picks the queue index of the request to issue at `now`, or `None` if
    /// no request's bank can accept a command yet. `banks` is the
    /// controller's flat [`BankTickState`] mirror, indexed by
    /// `location.rank_in_mc` and `location.bank`.
    pub fn pick(&self, queue: &[MemRequest], banks: &BankTickState, now: Cycle) -> Option<usize> {
        let ready = |req: &MemRequest| {
            banks.bank_free_at(req.location.rank_in_mc as usize, req.location.bank) <= now
        };
        match self {
            SchedulerPolicy::Fifo => {
                // Head-of-line only: FIFO does not look past the oldest
                // request, which is precisely its weakness.
                queue.first().filter(|r| ready(r)).map(|_| 0)
            }
            SchedulerPolicy::FrFcfs => {
                let mut oldest_ready: Option<usize> = None;
                for (i, req) in queue.iter().enumerate() {
                    if !ready(req) {
                        continue;
                    }
                    if banks.is_row_open(
                        req.location.rank_in_mc as usize,
                        req.location.bank,
                        req.location.row,
                    ) {
                        // First ready row hit in arrival order wins outright.
                        return Some(i);
                    }
                    if oldest_ready.is_none() {
                        oldest_ready = Some(i);
                    }
                }
                oldest_ready
            }
        }
    }

    /// The earliest cycle at which [`pick`](Self::pick) could return a
    /// request, before rounding to the controller's clock: the head
    /// request's bank-free time for FIFO (which never looks past the
    /// head), the first-free bank among all queued requests for FR-FCFS.
    /// `None` for an empty queue. Used by the simulator's fast-forward to
    /// bound how far an idle stretch can be skipped.
    pub fn earliest_ready<'a>(
        &self,
        mut queue: impl Iterator<Item = &'a MemRequest>,
        banks: &BankTickState,
    ) -> Option<Cycle> {
        let free_at = |req: &MemRequest| {
            banks.bank_free_at(req.location.rank_in_mc as usize, req.location.bank)
        };
        match self {
            SchedulerPolicy::Fifo => queue.next().map(free_at),
            SchedulerPolicy::FrFcfs => queue.map(free_at).min(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_dram::{BankConfig, Rank};
    use stacksim_types::{AddressMapper, BankId, CoreId, DramTiming, MemoryGeometry, PhysAddr};

    use crate::request::RequestKind;

    fn setup() -> (Vec<Rank>, AddressMapper) {
        let cfg = BankConfig::new(DramTiming::COMMODITY_2D.to_cycles(3.333e9), 1, None);
        let ranks = vec![Rank::new(cfg, 8, 1 << 15)];
        let geom = MemoryGeometry::new(8 << 30, 1, 8, 4096, 1).unwrap();
        (ranks, AddressMapper::new(geom))
    }

    fn req(mapper: &AddressMapper, page: u64, arrival: u64) -> MemRequest {
        let addr = PhysAddr::new(page * 4096);
        MemRequest {
            line: addr.line(),
            location: mapper.decode(addr),
            kind: RequestKind::Read,
            core: CoreId::new(0),
            arrival: Cycle::new(arrival),
            token: arrival,
        }
    }

    #[test]
    fn frfcfs_prefers_open_row() {
        let (mut ranks, mapper) = setup();
        // Open the row of page 8 (same bank geometry: page p -> bank p%8).
        let loc = mapper.decode(PhysAddr::new(8 * 4096));
        ranks[0].read(loc.bank, loc.row, Cycle::ZERO);
        let free = ranks[0].bank_free_at(loc.bank);
        let banks = BankTickState::new(&ranks);

        // Queue: older request to a *different* bank's row (closed), newer
        // request that hits the open row.
        let q = vec![req(&mapper, 1, 0), req(&mapper, 8, 5)];
        let pick = SchedulerPolicy::FrFcfs.pick(&q, &banks, free).unwrap();
        assert_eq!(pick, 1, "row hit should be scheduled first");

        // FIFO picks strictly in order.
        let pick = SchedulerPolicy::Fifo.pick(&q, &banks, free).unwrap();
        assert_eq!(pick, 0);
    }

    #[test]
    fn busy_banks_block_requests() {
        let (mut ranks, mapper) = setup();
        let loc = mapper.decode(PhysAddr::new(3 * 4096));
        ranks[0].read(loc.bank, loc.row, Cycle::ZERO); // bank 3 busy for a while
        let banks = BankTickState::new(&ranks);
        let q = vec![req(&mapper, 3, 0)];
        assert_eq!(
            SchedulerPolicy::FrFcfs.pick(&q, &banks, Cycle::new(1)),
            None
        );
        assert_eq!(SchedulerPolicy::Fifo.pick(&q, &banks, Cycle::new(1)), None);
        let free = ranks[0].bank_free_at(BankId::new(3));
        assert_eq!(SchedulerPolicy::FrFcfs.pick(&q, &banks, free), Some(0));
    }

    #[test]
    fn frfcfs_falls_back_to_oldest_ready() {
        let (ranks, mapper) = setup();
        let banks = BankTickState::new(&ranks);
        // No rows open anywhere: oldest ready request wins.
        let q = vec![req(&mapper, 2, 0), req(&mapper, 3, 1)];
        assert_eq!(
            SchedulerPolicy::FrFcfs.pick(&q, &banks, Cycle::ZERO),
            Some(0)
        );
    }

    #[test]
    fn empty_queue_picks_nothing() {
        let (ranks, _) = setup();
        let banks = BankTickState::new(&ranks);
        assert_eq!(SchedulerPolicy::FrFcfs.pick(&[], &banks, Cycle::ZERO), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(SchedulerPolicy::Fifo.to_string(), "fifo");
        assert_eq!(SchedulerPolicy::FrFcfs.to_string(), "fr-fcfs");
    }
}
