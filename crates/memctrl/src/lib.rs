//! Memory controllers for the `stacksim` simulator.
//!
//! A [`MemoryController`] owns a bounded memory request queue (MRQ), a
//! scheduler ([`SchedulerPolicy`]), a data bus, and the DRAM ranks of its
//! channel. The paper's §4.1 design space — one monolithic controller versus
//! two or four *banked* controllers, each owning a disjoint set of ranks —
//! is expressed by simply instantiating several controllers over partitioned
//! rank sets; the constant *aggregate* MRQ capacity rule (32 requests across
//! all MCs) is enforced by the system-level configuration.
//!
//! Scheduling follows Rixner et al.'s memory access scheduling: the default
//! [`SchedulerPolicy::FrFcfs`] policy issues row-buffer hits first, then the
//! oldest ready request ("a memory controller implementation that attempts
//! to schedule accesses to the same row together to increase row buffer hit
//! rates", §2.4). [`SchedulerPolicy::Fifo`] is retained for the ablation.
//!
//! # Examples
//!
//! ```
//! use stacksim_memctrl::{McConfig, MemoryController, MemRequest, RequestKind, SchedulerPolicy};
//! use stacksim_types::*;
//!
//! let timing = DramTiming::TRUE_3D.to_cycles(3.333e9);
//! let cfg = McConfig {
//!     queue_capacity: 8,
//!     ranks: 4,
//!     banks_per_rank: 8,
//!     rows_per_bank: 1 << 15,
//!     row_buffer_entries: 1,
//!     timing,
//!     refresh_interval: None,
//!     smart_refresh: false,
//!     page_policy: stacksim_dram::PagePolicy::Open,
//!     bus: BusConfig::on_stack(64),
//!     critical_word_first: true,
//!     policy: SchedulerPolicy::FrFcfs,
//! };
//! let mut mc = MemoryController::new(McId::new(0), cfg);
//! assert!(mc.can_accept());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod request;
mod scheduler;

pub use controller::{Completion, McConfig, MemoryController};
pub use request::{MemRequest, RequestKind};
pub use scheduler::SchedulerPolicy;
