//! The memory controller proper: queue, scheduler, bus and channel ranks.

use std::collections::VecDeque;

use stacksim_dram::{
    AccessResult, BankConfig, BankTickState, DramCmd, DramCmdKind, PagePolicy, Rank,
};
use stacksim_stats::{Histogram, RunningStats, StatRecord};
use stacksim_types::{BusConfig, ConfigError, Cycle, Cycles, DramTimingCycles, McId, LINE_BYTES};

use crate::request::{MemRequest, RequestKind};
use crate::scheduler::SchedulerPolicy;

/// Static configuration of one memory controller and its channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct McConfig {
    /// Memory request queue capacity. The paper holds the *aggregate*
    /// capacity across all MCs at 32 (e.g. four MCs × 8 entries).
    pub queue_capacity: usize,
    /// Ranks owned by this controller.
    pub ranks: usize,
    /// Banks per rank (8 in the paper).
    pub banks_per_rank: usize,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Row-buffer cache entries per bank (1 conventional, up to 4 in §4.2).
    pub row_buffer_entries: usize,
    /// DRAM timing in CPU cycles.
    pub timing: DramTimingCycles,
    /// Per-row refresh interval, `None` to disable.
    pub refresh_interval: Option<Cycles>,
    /// Smart Refresh: skip refreshing recently-activated rows.
    pub smart_refresh: bool,
    /// Row management policy (open-page in the paper).
    pub page_policy: PagePolicy,
    /// The data bus between this controller and its ranks.
    pub bus: BusConfig,
    /// Critical-word-first delivery: a read completes (wakes its waiters)
    /// when the first bus beat lands, while the bus stays occupied for the
    /// whole line. Liu et al. found wide buses unhelpful precisely because
    /// of CWF; this paper's multi-core contention argument (§3) holds with
    /// it enabled.
    pub critical_word_first: bool,
    /// Arbitration policy.
    pub policy: SchedulerPolicy,
}

/// A finished memory request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The original request.
    pub request: MemRequest,
    /// Cycle the request fully completed (data delivered over the bus for
    /// reads; data written for writebacks).
    pub finished: Cycle,
    /// Whether the DRAM access hit in the row-buffer cache.
    pub row_hit: bool,
}

/// One banked memory controller: a bounded MRQ, a scheduler, a data bus and
/// the DRAM ranks of its channel.
///
/// Drive it with [`tick`](MemoryController::tick) once per CPU cycle (it
/// issues at most one command per cycle), and collect finished requests
/// with [`drain_completions`](MemoryController::drain_completions).
#[derive(Clone, Debug)]
pub struct MemoryController {
    id: McId,
    config: McConfig,
    ranks: Vec<Rank>,
    /// Flat mirror of the per-bank fields the scheduler scans every tick
    /// (see [`BankTickState`]); resynced after every mutating DRAM access.
    banks: BankTickState,
    /// Bus occupancy of one cache line, hoisted out of the tick path
    /// (derived from `config.bus`, validated at construction).
    line_transfer: Cycles,
    /// Scan-skip memo: when a tick's pick came up empty, the earliest cycle
    /// the scheduler could possibly issue (no bank frees before it, and
    /// bank state only changes when this controller issues). Ticks before
    /// it return without rescanning the queue; any enqueue or issue resets
    /// it to zero.
    issue_blocked_until: Cycle,
    queue: VecDeque<MemRequest>,
    in_flight: Vec<Completion>,
    bus_free: Cycle,
    cmd_trace: Option<Vec<DramCmd>>,
    // Statistics.
    issued: u64,
    rejected: u64,
    row_hits: u64,
    bus_busy: u64,
    queue_wait: RunningStats,
    service_time: RunningStats,
    queue_depth: Histogram,
}

impl MemoryController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if any capacity or count in the configuration is zero.
    pub fn new(id: McId, config: McConfig) -> Self {
        Self::try_new(id, config).unwrap_or_else(|e| panic!("{e}")) // simlint::allow(P003, reason = "documented panicking convenience constructor; try_new is the fallible path")
    }

    /// Creates a controller, returning a typed error on a degenerate
    /// configuration instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any capacity or count in the
    /// configuration is zero.
    pub fn try_new(id: McId, config: McConfig) -> Result<Self, ConfigError> {
        if config.queue_capacity == 0 {
            return Err(ConfigError::new("queue capacity must be non-zero"));
        }
        if config.ranks == 0 {
            return Err(ConfigError::new("controller needs at least one rank"));
        }
        let bank_cfg = BankConfig::try_new(
            config.timing,
            config.row_buffer_entries,
            config.refresh_interval,
        )?
        .with_smart_refresh(config.smart_refresh)
        .with_page_policy(config.page_policy);
        let ranks: Vec<Rank> = (0..config.ranks)
            .map(|_| Rank::try_new(bank_cfg, config.banks_per_rank, config.rows_per_bank))
            .collect::<Result<_, _>>()?;
        let banks = BankTickState::new(&ranks);
        let line_transfer = config.bus.transfer_cycles(LINE_BYTES as u32)?;
        Ok(MemoryController {
            id,
            config,
            ranks,
            banks,
            line_transfer,
            issue_blocked_until: Cycle::ZERO,
            queue: VecDeque::with_capacity(config.queue_capacity),
            in_flight: Vec::new(),
            bus_free: Cycle::ZERO,
            cmd_trace: None,
            issued: 0,
            rejected: 0,
            row_hits: 0,
            bus_busy: 0,
            queue_wait: RunningStats::new(),
            service_time: RunningStats::new(),
            queue_depth: Histogram::new(64),
        })
    }

    /// This controller's identifier.
    pub const fn id(&self) -> McId {
        self.id
    }

    /// The configuration in force.
    pub const fn config(&self) -> &McConfig {
        &self.config
    }

    /// Whether the MRQ has room for another request.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.config.queue_capacity
    }

    /// Requests currently queued (not yet issued to DRAM).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no work is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_empty()
    }

    /// Queues a request.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the request's decoded location does not
    /// belong to this controller (a routing bug in the caller), or an MRQ
    /// overflow if the queue is full — the caller must apply backpressure
    /// and retry.
    pub fn enqueue(&mut self, request: MemRequest) -> Result<(), ConfigError> {
        if request.location.mc != self.id {
            // simlint::allow(H001, reason = "cold error path: a misrouted request is a caller bug, never taken in steady state")
            return Err(ConfigError::new(format!(
                "request for {} routed to {}",
                request.location.mc, self.id
            )));
        }
        if !self.can_accept() {
            self.rejected += 1;
            return Err(ConfigError::new("memory request queue full"));
        }
        self.queue.push_back(request);
        // A new request may be issuable immediately: drop the scan-skip memo.
        self.issue_blocked_until = Cycle::ZERO;
        Ok(())
    }

    /// Advances the controller by one CPU cycle: issues at most one request
    /// whose bank is ready, per the configured policy.
    pub fn tick(&mut self, now: Cycle) {
        self.queue_depth.record(self.queue.len() as u64);
        if self.queue.is_empty() {
            return; // nothing to schedule; skip the pick machinery entirely
        }
        if now < self.issue_blocked_until {
            // A previous tick proved no queued request's bank frees before
            // this cycle, and nothing has changed since: the pick below
            // would scan the queue just to return `None` again.
            return;
        }
        let pick = {
            // VecDeque -> slice; the scheduler sees arrival order. Only
            // straighten the deque when it has actually wrapped.
            if !self.queue.as_slices().1.is_empty() {
                self.queue.make_contiguous();
            }
            let (slice, _) = self.queue.as_slices();
            self.config.policy.pick(slice, &self.banks, now)
        };
        let Some(idx) = pick else {
            // All queued banks are busy; remember until when, so the ticks
            // in between skip the scan. `pick == None` with a non-empty
            // queue implies every queued bank's free time is beyond `now`,
            // so `earliest_ready` is `Some` and in the future.
            self.issue_blocked_until = self.next_issue_ready().unwrap_or(Cycle::ZERO);
            return;
        };
        let request = self
            .queue
            .remove(idx)
            .expect("scheduler picked a valid index"); // simlint::allow(P002, reason = "the scheduler just selected idx from this queue")
        let rank = &mut self.ranks[request.location.rank_in_mc as usize];
        let transfer = self.line_transfer;
        let (finished, access) = match request.kind {
            RequestKind::Read => {
                let access = rank.read(request.location.bank, request.location.row, now);
                // Data returns over the channel bus once the array delivers.
                let bus_start = access.data_ready.max(self.bus_free);
                let done = bus_start + transfer;
                self.bus_free = done;
                self.bus_busy += transfer.raw();
                if self.config.critical_word_first {
                    // The demanded word leads the burst: waiters wake after
                    // the first beat; the bus stays busy through `done`.
                    let first_beat = bus_start + self.config.bus.clock.ticks(1);
                    (first_beat.max(access.data_ready), access)
                } else {
                    (done, access)
                }
            }
            RequestKind::Writeback => {
                // Write data crosses the bus to the bank, then the bank
                // absorbs it; completion when the array write finishes.
                let bus_start = now.max(self.bus_free);
                let bus_done = bus_start + transfer;
                self.bus_free = bus_done;
                self.bus_busy += transfer.raw();
                let access = rank.write(request.location.bank, request.location.row, bus_done);
                (access.bank_free, access)
            }
        };
        // Issuing changed bank state and the queue: drop the scan-skip memo.
        self.issue_blocked_until = Cycle::ZERO;
        // The access (and any lazy refresh catch-up inside it) changed this
        // bank's busy window and open rows: refresh its mirror entry.
        let rank_idx = request.location.rank_in_mc as usize;
        self.banks.sync_bank(
            rank_idx,
            request.location.bank,
            self.ranks[rank_idx].bank(request.location.bank),
        );
        let row_hit = access.row_hit;
        self.issued += 1;
        if row_hit {
            self.row_hits += 1;
        }
        if self.cmd_trace.is_some() {
            self.trace_issue(&request, &access);
        }
        self.queue_wait
            .record(now.saturating_since(request.arrival).raw() as f64);
        self.service_time.record((finished - now).raw() as f64);
        self.in_flight.push(Completion {
            request,
            finished,
            row_hit,
        });
    }

    /// Removes and returns every request that has finished by `now`.
    pub fn drain_completions(&mut self, now: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        self.drain_completions_into(now, &mut done);
        done
    }

    /// [`drain_completions`](Self::drain_completions) into a caller-owned
    /// buffer, so per-cycle drain loops reuse one allocation. Appends the
    /// finished requests (ordered by finish cycle) to `out`.
    pub fn drain_completions_into(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        if self.in_flight.is_empty() {
            return;
        }
        let start = out.len();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].finished <= now {
                out.push(self.in_flight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        out[start..].sort_by_key(|c| c.finished);
    }

    /// The earliest cycle at which any in-flight request finishes, if any —
    /// used by drain loops to fast-forward through idle stretches.
    pub fn next_completion_at(&self) -> Option<Cycle> {
        self.in_flight.iter().map(|c| c.finished).min()
    }

    /// The earliest cycle at which a [`tick`](Self::tick) could issue a
    /// queued request per the configured policy, *before* rounding up to
    /// the controller's clock edge (the caller owns the clock divisor).
    /// `None` when the queue is empty. A value `<= now` means the
    /// controller is issue-ready right now.
    pub fn next_issue_ready(&self) -> Option<Cycle> {
        self.config
            .policy
            .earliest_ready(self.queue.iter(), &self.banks)
    }

    /// Replays `ticks` controller clock edges during which the owner
    /// proved (via [`next_issue_ready`](Self::next_issue_ready) and
    /// [`next_completion_at`](Self::next_completion_at)) that a `tick`
    /// would do nothing: the only side effect of such a tick is the
    /// queue-depth sample, recorded here in bulk so fast-forwarded runs
    /// keep bit-identical statistics.
    pub fn note_skipped_ticks(&mut self, ticks: u64) {
        self.queue_depth.record_n(self.queue.len() as u64, ticks);
    }

    /// Shared view of this controller's ranks.
    pub fn ranks(&self) -> &[Rank] {
        &self.ranks
    }

    /// Turns DRAM command tracing on or off. While enabled, every issued
    /// request appends its row-level command sequence to an internal buffer
    /// retrievable with [`take_cmd_trace`](Self::take_cmd_trace), and the
    /// banks log their refresh operations so REF commands appear in the
    /// stream too. Disabled by default; turning tracing off discards any
    /// buffered commands.
    pub fn set_cmd_tracing(&mut self, enabled: bool) {
        self.cmd_trace = if enabled { Some(Vec::new()) } else { None };
        for rank in &mut self.ranks {
            rank.set_refresh_logging(enabled);
        }
    }

    /// The commands buffered so far, if tracing is enabled.
    pub fn cmd_trace(&self) -> Option<&[DramCmd]> {
        self.cmd_trace.as_deref()
    }

    /// Removes and returns the buffered command trace (empty if tracing is
    /// disabled). Tracing stays enabled if it was.
    pub fn take_cmd_trace(&mut self) -> Vec<DramCmd> {
        match self.cmd_trace.as_mut() {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    /// Appends the row-level command sequence for one issued request.
    ///
    /// The sequence is synthesized from the bank's access result: an
    /// open-page row hit is a bare column command; an open-page miss is
    /// PRE + ACT + column; closed-page accesses are ACT + column + PRE.
    /// Each command carries the cycle it started occupying the bank (see
    /// [`stacksim_dram::CmdTimes`]), so JEDEC-style spacing invariants can
    /// be checked against the trace. Any refreshes the bank performed while
    /// catching up to this access are drained first as REF commands. The
    /// per-controller stream is ordered per (rank, bank); commands to
    /// different banks interleave.
    fn trace_issue(&mut self, request: &MemRequest, access: &AccessResult) {
        let rank_idx = request.location.rank_in_mc as usize;
        let bank_idx = request.location.bank.index();
        let refreshes = self.ranks[rank_idx].take_refresh_log(request.location.bank);
        let trace = self.cmd_trace.as_mut().expect("checked by caller"); // simlint::allow(P002, reason = "trace_issue is only called when command tracing is enabled")
        for (row, at) in refreshes {
            trace.push(DramCmd {
                at,
                rank: rank_idx,
                bank: bank_idx,
                row,
                kind: DramCmdKind::Refresh,
            });
        }
        let column = match request.kind {
            RequestKind::Read => DramCmdKind::Read,
            RequestKind::Writeback => DramCmdKind::Write,
        };
        let cmd = |kind, at| DramCmd {
            at,
            rank: rank_idx,
            bank: bank_idx,
            row: request.location.row,
            kind,
        };
        let times = access.cmds;
        match self.config.page_policy {
            PagePolicy::Open => {
                if let Some(at) = times.precharge_at {
                    trace.push(cmd(DramCmdKind::Precharge, at));
                }
                if let Some(at) = times.activate_at {
                    trace.push(cmd(DramCmdKind::Activate, at));
                }
                trace.push(cmd(column, times.column_at));
            }
            PagePolicy::Closed => {
                let act = times.activate_at.expect("closed page always activates"); // simlint::allow(P002, reason = "closed-page accesses always activate, so the time is present")
                let pre = times.precharge_at.expect("closed page always precharges"); // simlint::allow(P002, reason = "closed-page accesses always precharge, so the time is present")
                trace.push(cmd(DramCmdKind::Activate, act));
                trace.push(cmd(column, times.column_at));
                trace.push(cmd(DramCmdKind::Precharge, pre));
            }
        }
    }

    /// Exports final statistics (including aggregated rank counters).
    pub fn stats(&self) -> StatRecord {
        let mut r = StatRecord::new(format!("mc{}", self.id.index()));
        r.set("issued", self.issued as f64);
        r.set("rejected", self.rejected as f64);
        r.set("row_hits", self.row_hits as f64);
        if self.issued > 0 {
            r.set("row_hit_rate", self.row_hits as f64 / self.issued as f64);
        }
        r.set("bus_busy_cycles", self.bus_busy as f64);
        if let Some(w) = self.queue_wait.mean() {
            r.set("avg_queue_wait", w);
        }
        if let Some(s) = self.service_time.mean() {
            r.set("avg_service_time", s);
        }
        if let Some(d) = self.queue_depth.mean() {
            r.set("avg_queue_depth", d);
        }
        for rank in &self.ranks {
            let rs = rank.stats();
            for (name, value) in rs.iter() {
                let key = format!("ranks.{name}");
                let prev = r.get(&key).unwrap_or(0.0);
                r.set(key, prev + value);
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_types::{AddressMapper, CoreId, DramTiming, MemoryGeometry, PhysAddr};

    const HZ: f64 = 3.333e9;

    fn mc(policy: SchedulerPolicy, bus: BusConfig) -> (MemoryController, AddressMapper) {
        let cfg = McConfig {
            queue_capacity: 8,
            ranks: 4,
            banks_per_rank: 8,
            rows_per_bank: 1 << 15,
            row_buffer_entries: 1,
            timing: DramTiming::COMMODITY_2D.to_cycles(HZ),
            refresh_interval: None,
            smart_refresh: false,
            page_policy: PagePolicy::Open,
            bus,
            critical_word_first: false,
            policy,
        };
        let geom = MemoryGeometry::new(8 << 30, 4, 8, 4096, 1).unwrap();
        (
            MemoryController::new(McId::new(0), cfg),
            AddressMapper::new(geom),
        )
    }

    fn read_req(mapper: &AddressMapper, page: u64, now: u64) -> MemRequest {
        let addr = PhysAddr::new(page * 4096);
        MemRequest {
            line: addr.line(),
            location: mapper.decode(addr),
            kind: RequestKind::Read,
            core: CoreId::new(0),
            arrival: Cycle::new(now),
            token: page,
        }
    }

    fn run_until_complete(mc: &mut MemoryController, mut now: Cycle) -> (Vec<Completion>, Cycle) {
        let mut done = Vec::new();
        for _ in 0..1_000_000 {
            mc.tick(now);
            done.extend(mc.drain_completions(now));
            if mc.is_idle() {
                return (done, now);
            }
            now += Cycles::new(1);
        }
        panic!("controller did not drain");
    }

    #[test]
    fn single_read_completes_with_miss_latency_plus_bus() {
        let (mut mc, mapper) = mc(SchedulerPolicy::FrFcfs, BusConfig::on_stack(64));
        mc.enqueue(read_req(&mapper, 0, 0)).unwrap();
        let (done, _) = run_until_complete(&mut mc, Cycle::ZERO);
        assert_eq!(done.len(), 1);
        let t = DramTiming::COMMODITY_2D.to_cycles(HZ);
        // tRP + tRCD + tCAS + 1 bus cycle for the 64-byte line.
        let expect = Cycle::ZERO + t.t_rp + t.t_rcd + t.t_cas + Cycles::new(1);
        assert_eq!(done[0].finished, expect);
        assert!(!done[0].row_hit);
    }

    #[test]
    fn narrow_bus_serializes_returns() {
        // Two reads to different banks: array access overlaps, but an
        // 8-byte FSB-width bus makes the second line wait for the first.
        let (mut mc_wide, mapper) = mc(SchedulerPolicy::FrFcfs, BusConfig::on_stack(64));
        let (mut mc_narrow, _) = mc(SchedulerPolicy::FrFcfs, BusConfig::on_stack(8));
        for m in [&mut mc_wide, &mut mc_narrow] {
            m.enqueue(read_req(&mapper, 1, 0)).unwrap();
            m.enqueue(read_req(&mapper, 2, 0)).unwrap();
        }
        let (wide, _) = run_until_complete(&mut mc_wide, Cycle::ZERO);
        let (narrow, _) = run_until_complete(&mut mc_narrow, Cycle::ZERO);
        let last = |v: &[Completion]| v.iter().map(|c| c.finished).max().unwrap();
        assert!(last(&narrow) > last(&wide), "narrow bus must finish later");
    }

    #[test]
    fn queue_full_applies_backpressure() {
        let (mut mc, mapper) = mc(SchedulerPolicy::FrFcfs, BusConfig::on_stack(64));
        for p in 0..8 {
            mc.enqueue(read_req(&mapper, p, 0)).unwrap();
        }
        assert!(!mc.can_accept());
        assert!(mc.enqueue(read_req(&mapper, 99, 0)).is_err());
        assert_eq!(mc.queue_len(), 8);
    }

    #[test]
    fn misrouted_request_rejected() {
        let (mut mc, _) = mc(SchedulerPolicy::FrFcfs, BusConfig::on_stack(64));
        // Decode against a 2-MC geometry so page 1 belongs to MC 1.
        let geom2 = MemoryGeometry::new(8 << 30, 4, 8, 4096, 2).unwrap();
        let m2 = AddressMapper::new(geom2);
        let req = read_req(&m2, 1, 0);
        assert_eq!(req.location.mc, McId::new(1));
        assert!(mc.enqueue(req).is_err());
    }

    #[test]
    fn row_hits_recorded_in_stats() {
        let (mut mc, mapper) = mc(SchedulerPolicy::FrFcfs, BusConfig::on_stack(64));
        // Two lines in the same page: second is a row hit.
        let addr_a = PhysAddr::new(0);
        let addr_b = PhysAddr::new(64);
        for (i, addr) in [addr_a, addr_b].into_iter().enumerate() {
            mc.enqueue(MemRequest {
                line: addr.line(),
                location: mapper.decode(addr),
                kind: RequestKind::Read,
                core: CoreId::new(0),
                arrival: Cycle::ZERO,
                token: i as u64,
            })
            .unwrap();
        }
        let (done, _) = run_until_complete(&mut mc, Cycle::ZERO);
        assert_eq!(done.len(), 2);
        assert!(done.iter().any(|c| c.row_hit));
        let s = mc.stats();
        assert_eq!(s.get("issued"), Some(2.0));
        assert_eq!(s.get("row_hits"), Some(1.0));
        assert_eq!(s.get("ranks.reads"), Some(2.0));
    }

    #[test]
    fn critical_word_first_wakes_early_but_keeps_bus_busy() {
        let (mut plain, mapper) = mc(SchedulerPolicy::FrFcfs, BusConfig::on_stack(8));
        let mut cfg = *plain.config();
        cfg.critical_word_first = true;
        let mut cwf = MemoryController::new(McId::new(0), cfg);
        for m in [&mut plain, &mut cwf] {
            m.enqueue(read_req(&mapper, 0, 0)).unwrap();
            m.enqueue(read_req(&mapper, 1, 0)).unwrap();
        }
        let (p, _) = run_until_complete(&mut plain, Cycle::ZERO);
        let (c, _) = run_until_complete(&mut cwf, Cycle::ZERO);
        let first = |v: &[Completion]| v.iter().map(|x| x.finished).min().unwrap();
        // The first waiter wakes 7 beats earlier under CWF (8-byte bus,
        // 8 beats per line, first beat only).
        assert!(
            first(&c) < first(&p),
            "cwf {:?} vs plain {:?}",
            first(&c),
            first(&p)
        );
        // But the bus occupancy — and therefore the second request's
        // serialization — is identical.
        assert_eq!(
            plain.stats().get("bus_busy_cycles"),
            cwf.stats().get("bus_busy_cycles")
        );
    }

    #[test]
    fn writeback_completes_without_reply() {
        let (mut mc, mapper) = mc(SchedulerPolicy::FrFcfs, BusConfig::on_stack(64));
        let mut req = read_req(&mapper, 3, 0);
        req.kind = RequestKind::Writeback;
        mc.enqueue(req).unwrap();
        let (done, _) = run_until_complete(&mut mc, Cycle::ZERO);
        assert_eq!(done.len(), 1);
        assert!(!done[0].request.needs_reply());
    }

    #[test]
    fn cmd_trace_records_issue_sequences() {
        let (mut mc, mapper) = mc(SchedulerPolicy::FrFcfs, BusConfig::on_stack(64));
        mc.set_cmd_tracing(true);
        // Two lines in the same page: a miss (PRE+ACT+RD) then a hit (RD).
        for (i, addr) in [PhysAddr::new(0), PhysAddr::new(64)]
            .into_iter()
            .enumerate()
        {
            mc.enqueue(MemRequest {
                line: addr.line(),
                location: mapper.decode(addr),
                kind: RequestKind::Read,
                core: CoreId::new(0),
                arrival: Cycle::ZERO,
                token: i as u64,
            })
            .unwrap();
        }
        run_until_complete(&mut mc, Cycle::ZERO);
        let cmds: Vec<_> = mc.cmd_trace().unwrap().to_vec();
        let kinds: Vec<_> = cmds.iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            [
                stacksim_dram::DramCmdKind::Precharge,
                stacksim_dram::DramCmdKind::Activate,
                stacksim_dram::DramCmdKind::Read,
                stacksim_dram::DramCmdKind::Read,
            ]
        );
        // Commands carry their real issue times, not the request's issue
        // cycle: ACT begins when the precharge completes, the column burst
        // when the activate completes.
        let t = DramTiming::COMMODITY_2D.to_cycles(HZ);
        assert_eq!(cmds[0].at, Cycle::ZERO);
        assert_eq!(cmds[1].at, cmds[0].at + t.t_rp);
        assert_eq!(cmds[2].at, cmds[1].at + t.t_rcd);
        assert!(cmds[3].at >= cmds[2].at + t.t_ccd, "bursts spaced by tCCD");
        let taken = mc.take_cmd_trace();
        assert_eq!(taken.len(), 4);
        assert!(
            mc.cmd_trace().unwrap().is_empty(),
            "buffer drained, tracing still on"
        );
    }

    #[test]
    fn cmd_trace_includes_refreshes() {
        let (proto, mapper) = mc(SchedulerPolicy::FrFcfs, BusConfig::on_stack(64));
        let mut cfg = *proto.config();
        cfg.refresh_interval = Some(Cycles::new(1000));
        let mut mc = MemoryController::new(McId::new(0), cfg);
        mc.set_cmd_tracing(true);
        // Arrive long after several per-row refreshes came due: the bank
        // catches up first and the REF commands land in the trace before
        // the access's own commands.
        mc.enqueue(read_req(&mapper, 0, 3500)).unwrap();
        run_until_complete(&mut mc, Cycle::new(3500));
        let cmds = mc.take_cmd_trace();
        let refs: Vec<_> = cmds
            .iter()
            .filter(|c| c.kind == DramCmdKind::Refresh)
            .collect();
        assert_eq!(refs.len(), 3, "refreshes due at 1000/2000/3000");
        let t = DramTiming::COMMODITY_2D.to_cycles(HZ);
        let refresh_busy = t.t_ras + t.t_rp;
        assert!(refs.windows(2).all(|w| w[1].at >= w[0].at + refresh_busy));
        // All commands here target one bank, so the stream is time-ordered.
        assert!(cmds.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(cmds.last().unwrap().kind, DramCmdKind::Read);
    }

    #[test]
    fn cmd_trace_disabled_buffers_nothing() {
        let (mut mc, mapper) = mc(SchedulerPolicy::FrFcfs, BusConfig::on_stack(64));
        mc.enqueue(read_req(&mapper, 0, 0)).unwrap();
        run_until_complete(&mut mc, Cycle::ZERO);
        assert_eq!(mc.cmd_trace(), None);
        assert!(mc.take_cmd_trace().is_empty());
    }

    #[test]
    fn next_completion_at_reports_earliest() {
        let (mut mc, mapper) = mc(SchedulerPolicy::FrFcfs, BusConfig::on_stack(64));
        assert_eq!(mc.next_completion_at(), None);
        mc.enqueue(read_req(&mapper, 0, 0)).unwrap();
        mc.tick(Cycle::ZERO);
        assert!(mc.next_completion_at().is_some());
    }
}
