//! Virtual-memory substrate for the `stacksim` simulator.
//!
//! The paper's methodology (§2.4) performs "a virtual-to-physical memory
//! translation/allocation based on a first-come-first-serve basis", and its
//! Table 1 machine carries a 64-entry 4-way DTLB per core. This crate
//! supplies both pieces:
//!
//! * [`PageAllocator`] — the shared FCFS physical frame allocator: the
//!   first page any program touches gets physical frame 0, the next new
//!   page (from *any* program) gets frame 1, and so on. Co-running
//!   programs therefore interleave finely through physical memory — which
//!   is precisely what spreads their traffic across ranks, banks and
//!   memory controllers;
//! * [`Tlb`] — a set-associative, LRU translation cache whose misses cost
//!   a configurable page-walk latency in the core model.
//!
//! # Examples
//!
//! ```
//! use stacksim_vm::{PageAllocator, VirtAddr};
//! use stacksim_types::PhysAddr;
//!
//! let mut alloc = PageAllocator::new(1 << 30); // 1 GB of physical memory
//! let a = alloc.translate(0, VirtAddr::new(0x1234)).unwrap();
//! let b = alloc.translate(1, VirtAddr::new(0x9_0000)).unwrap();
//! assert_eq!(a.page().index(), 0); // first touch -> first frame
//! assert_eq!(b.page().index(), 1); // next touch (other program) -> next
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocator;
mod tlb;

pub use allocator::{OutOfMemory, PageAllocator, VirtAddr};
pub use tlb::{Tlb, TlbConfig, TlbOutcome};
