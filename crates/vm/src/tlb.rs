//! Set-associative TLB models (Table 1: 64-entry, 4-way DTLB).

use stacksim_stats::StatRecord;
use stacksim_types::Cycles;

/// TLB geometry and miss cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Set associativity.
    pub associativity: usize,
    /// Page-walk latency charged on a miss.
    pub walk_latency: Cycles,
}

impl TlbConfig {
    /// The paper's DTLB: 64 entries, 4-way (Table 1), with a
    /// representative 30-cycle hardware page walk.
    pub fn dtlb_penryn() -> TlbConfig {
        TlbConfig {
            entries: 64,
            associativity: 4,
            walk_latency: Cycles::new(30),
        }
    }

    /// Sets per TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a whole number of sets.
    pub fn sets(&self) -> usize {
        assert!(
            self.associativity > 0 && self.entries.is_multiple_of(self.associativity),
            "TLB entries must divide into whole sets"
        );
        self.entries / self.associativity
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig::dtlb_penryn()
    }
}

/// Result of a TLB access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Translation cached; no extra latency.
    Hit,
    /// Translation missing; the page walk costs the configured latency and
    /// the entry is now cached.
    Miss {
        /// Latency of the page walk.
        walk: Cycles,
    },
}

#[derive(Clone, Copy, Debug, Default)]
struct TlbEntry {
    vpage: u64,
    valid: bool,
    last_use: u64,
}

/// A set-associative, LRU translation lookaside buffer.
///
/// The TLB caches *which* virtual pages are translated, not the frame
/// numbers themselves — the simulator's [`PageAllocator`](crate::PageAllocator)
/// owns the actual mapping; the TLB only decides whether a page walk is
/// charged.
///
/// # Examples
///
/// ```
/// use stacksim_vm::{Tlb, TlbConfig, TlbOutcome};
///
/// let mut tlb = Tlb::new(TlbConfig::dtlb_penryn());
/// assert!(matches!(tlb.access(7), TlbOutcome::Miss { .. }));
/// assert_eq!(tlb.access(7), TlbOutcome::Hit);
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    sets: Vec<Vec<TlbEntry>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a whole number of sets.
    pub fn new(config: TlbConfig) -> Self {
        let sets = config.sets();
        Tlb {
            config,
            sets: vec![vec![TlbEntry::default(); config.associativity]; sets],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses the translation for `vpage`, filling on a miss.
    pub fn access(&mut self, vpage: u64) -> TlbOutcome {
        self.clock += 1;
        let set = (vpage % self.sets.len() as u64) as usize;
        if let Some(e) = self.sets[set]
            .iter_mut()
            .find(|e| e.valid && e.vpage == vpage)
        {
            e.last_use = self.clock;
            self.hits += 1;
            return TlbOutcome::Hit;
        }
        self.misses += 1;
        let clock = self.clock;
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|e| if e.valid { e.last_use } else { 0 })
            .expect("associativity is non-zero"); // simlint::allow(P002, reason = "the constructor rejects zero associativity, so min_by_key sees an entry")
        *victim = TlbEntry {
            vpage,
            valid: true,
            last_use: clock,
        };
        TlbOutcome::Miss {
            walk: self.config.walk_latency,
        }
    }

    /// Whether `vpage`'s translation is cached (no state change).
    pub fn contains(&self, vpage: u64) -> bool {
        let set = (vpage % self.sets.len() as u64) as usize;
        self.sets[set].iter().any(|e| e.valid && e.vpage == vpage)
    }

    /// Invalidates every entry (context switch / shootdown).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for e in set {
                e.valid = false;
            }
        }
    }

    /// Hit count.
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub const fn misses(&self) -> u64 {
        self.misses
    }

    /// Exports statistics.
    pub fn stats(&self) -> StatRecord {
        let mut r = StatRecord::new("dtlb");
        r.set("hits", self.hits as f64);
        r.set("misses", self.misses as f64);
        let total = (self.hits + self.misses) as f64;
        if total > 0.0 {
            r.set("miss_rate", self.misses as f64 / total);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 4,
            associativity: 2,
            walk_latency: Cycles::new(30),
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tiny();
        assert_eq!(
            t.access(10),
            TlbOutcome::Miss {
                walk: Cycles::new(30)
            }
        );
        assert_eq!(t.access(10), TlbOutcome::Hit);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_within_set() {
        let mut t = tiny(); // 2 sets x 2 ways; even pages -> set 0
        t.access(0);
        t.access(2);
        t.access(0); // 2 becomes LRU
        t.access(4); // evicts 2
        assert!(t.contains(0));
        assert!(!t.contains(2));
        assert!(t.contains(4));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut t = tiny();
        for vpage in 0..4 {
            t.access(vpage);
        }
        for vpage in 0..4 {
            assert!(t.contains(vpage), "page {vpage} evicted early");
        }
    }

    #[test]
    fn flush_invalidates() {
        let mut t = tiny();
        t.access(1);
        t.flush();
        assert!(!t.contains(1));
        assert!(matches!(t.access(1), TlbOutcome::Miss { .. }));
    }

    #[test]
    fn stats_miss_rate() {
        let mut t = tiny();
        t.access(1);
        t.access(1);
        assert_eq!(t.stats().get("miss_rate"), Some(0.5));
    }

    #[test]
    fn penryn_geometry() {
        let c = TlbConfig::dtlb_penryn();
        assert_eq!(c.sets(), 16);
        let t = Tlb::new(c);
        assert!(!t.contains(0));
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn ragged_geometry_panics() {
        let _ = Tlb::new(TlbConfig {
            entries: 5,
            associativity: 2,
            walk_latency: Cycles::ZERO,
        });
    }
}
