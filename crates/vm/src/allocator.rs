//! First-come-first-serve physical page allocation (paper §2.4).

use core::fmt;
use std::collections::HashMap;

use stacksim_types::{FastBuildHasher, PhysAddr, PAGE_BYTES};

/// A byte-granular virtual address within one program's address space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// The raw address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The virtual page number.
    #[inline]
    pub const fn vpage(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

/// Error returned when physical memory is exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Total frames the allocator manages.
    pub total_frames: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "physical memory exhausted ({} frames)",
            self.total_frames
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// The shared FCFS physical frame allocator and page tables.
///
/// One allocator serves every program of a mix; each program is identified
/// by an address-space id (`asid`, the core index in this simulator). On
/// the first touch of a `(asid, virtual page)` pair the next free physical
/// frame is assigned, so allocation order — not program identity —
/// determines physical placement, exactly as in the paper's methodology.
#[derive(Clone, Debug, Default)]
pub struct PageAllocator {
    // Deterministic multiplicative hasher: `translate` runs on every
    // memory access, and SipHash is most of the lookup cost for a
    // two-word key. Nothing iterates the map, so the hash function is
    // unobservable in results.
    tables: HashMap<(u16, u64), u64, FastBuildHasher>,
    next_frame: u64,
    total_frames: u64,
}

impl PageAllocator {
    /// Creates an allocator over `total_bytes` of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is smaller than one page.
    pub fn new(total_bytes: u64) -> Self {
        let total_frames = total_bytes / PAGE_BYTES;
        assert!(total_frames > 0, "need at least one physical frame");
        PageAllocator {
            tables: HashMap::default(),
            next_frame: 0,
            total_frames,
        }
    }

    /// Translates a virtual address for address space `asid`, allocating a
    /// frame on first touch.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when all frames are assigned.
    pub fn translate(&mut self, asid: u16, addr: VirtAddr) -> Result<PhysAddr, OutOfMemory> {
        let key = (asid, addr.vpage());
        let frame = match self.tables.get(&key) {
            Some(&f) => f,
            None => {
                if self.next_frame >= self.total_frames {
                    return Err(OutOfMemory {
                        total_frames: self.total_frames,
                    });
                }
                let f = self.next_frame;
                self.next_frame += 1;
                self.tables.insert(key, f);
                f
            }
        };
        Ok(PhysAddr::new(frame * PAGE_BYTES + addr.page_offset()))
    }

    /// Looks up an existing mapping without allocating.
    pub fn lookup(&self, asid: u16, vpage: u64) -> Option<u64> {
        self.tables.get(&(asid, vpage)).copied()
    }

    /// Frames allocated so far.
    pub fn allocated_frames(&self) -> u64 {
        self.next_frame
    }

    /// Total frames managed.
    pub const fn total_frames(&self) -> u64 {
        self.total_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_assigns_frames_in_touch_order() {
        let mut a = PageAllocator::new(1 << 20);
        // Touch order decides frames, not virtual addresses or asids.
        let p1 = a.translate(3, VirtAddr::new(0xFFFF_0000)).unwrap();
        let p2 = a.translate(0, VirtAddr::new(0x0000_0000)).unwrap();
        let p3 = a.translate(3, VirtAddr::new(0xFFFF_0000 + 4096)).unwrap();
        assert_eq!(p1.page().index(), 0);
        assert_eq!(p2.page().index(), 1);
        assert_eq!(p3.page().index(), 2);
    }

    #[test]
    fn repeated_touches_are_stable() {
        let mut a = PageAllocator::new(1 << 20);
        let first = a.translate(0, VirtAddr::new(0x1000)).unwrap();
        let again = a.translate(0, VirtAddr::new(0x1A00)).unwrap();
        assert_eq!(first.page(), again.page());
        assert_eq!(again.page_offset(), 0xA00);
        assert_eq!(a.allocated_frames(), 1);
    }

    #[test]
    fn asids_are_isolated() {
        let mut a = PageAllocator::new(1 << 20);
        let x = a.translate(0, VirtAddr::new(0x1000)).unwrap();
        let y = a.translate(1, VirtAddr::new(0x1000)).unwrap();
        assert_ne!(x.page(), y.page(), "same vpage in different spaces");
    }

    #[test]
    fn exhaustion_reports_out_of_memory() {
        let mut a = PageAllocator::new(2 * 4096);
        a.translate(0, VirtAddr::new(0)).unwrap();
        a.translate(0, VirtAddr::new(4096)).unwrap();
        let err = a.translate(0, VirtAddr::new(8192)).unwrap_err();
        assert_eq!(err.total_frames, 2);
        assert!(err.to_string().contains("exhausted"));
        // Existing mappings keep translating.
        assert!(a.translate(0, VirtAddr::new(0)).is_ok());
    }

    #[test]
    fn lookup_does_not_allocate() {
        let mut a = PageAllocator::new(1 << 20);
        assert_eq!(a.lookup(0, 5), None);
        a.translate(0, VirtAddr::new(5 * 4096)).unwrap();
        assert_eq!(a.lookup(0, 5), Some(0));
        assert_eq!(a.allocated_frames(), 1);
    }

    #[test]
    fn offsets_preserved_through_translation() {
        let mut a = PageAllocator::new(1 << 20);
        let p = a.translate(0, VirtAddr::new(0x3_2FC0)).unwrap();
        assert_eq!(p.page_offset(), 0xFC0);
    }
}
