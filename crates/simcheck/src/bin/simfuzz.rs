//! `simfuzz` — seeded config-space fuzzer for the stacksim simulator.
//!
//! ```text
//! simfuzz [--seeds A..B] [--jobs N] [--out FILE]   fuzz a seed range
//! simfuzz --replay FILE                            re-run a repro artifact
//! ```
//!
//! Each seed deterministically generates a configuration × mix × window
//! point and subjects it to the MSHR differential oracle, the
//! fast-forward/tick-by-tick bit-identity check and the DRAM protocol
//! checker (see `stacksim-simcheck`). The first failure is shrunk to a
//! minimal configuration and written as a replayable JSON artifact.
//!
//! Exit status: 0 when every seed passes (or a replayed bug is fixed),
//! 1 on failures, 2 on usage errors.

use std::process::ExitCode;

use stacksim::runner::parallel_map;
use stacksim_simcheck::fuzz::{self, Repro};
use stacksim_stats::Json;

struct Options {
    seeds: std::ops::Range<u64>,
    jobs: usize,
    out: Option<String>,
    replay: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: simfuzz [--seeds A..B] [--jobs N] [--out FILE]\n       simfuzz --replay FILE\n\n  --seeds A..B  fuzz seeds A (inclusive) to B (exclusive); default 0..16\n  --jobs N      worker threads for the seed sweep; default 1\n  --out FILE    where to write the first failure's repro artifact\n                (default simfuzz-repro.json)\n  --replay FILE re-run a previously written artifact"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        seeds: 0..16,
        jobs: 1,
        out: None,
        replay: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let Some((a, b)) = spec.split_once("..") else {
                    usage()
                };
                match (a.parse(), b.parse()) {
                    (Ok(a), Ok(b)) if a < b => opts.seeds = a..b,
                    _ => usage(),
                }
            }
            "--jobs" => match args.next().and_then(|j| j.parse().ok()) {
                Some(j) if j >= 1 => opts.jobs = j,
                _ => usage(),
            },
            "--out" => opts.out = Some(args.next().unwrap_or_else(|| usage())),
            "--replay" => opts.replay = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("simfuzz: unknown argument {other:?}");
                usage();
            }
        }
    }
    opts
}

fn replay_artifact(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("simfuzz: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let repro = match Json::parse(&text)
        .map_err(|e| e.to_string())
        .and_then(|v| Repro::from_json(&v))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simfuzz: {path} is not a repro artifact: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying seed {:#x} with {} shrink op(s): {}",
        repro.seed,
        repro.shrink_ops.len(),
        if repro.shrink_ops.is_empty() {
            "(none)".to_string()
        } else {
            repro.shrink_ops.join(", ")
        }
    );
    match fuzz::replay(&repro) {
        Ok(()) => {
            println!("case passes: the recorded failure no longer reproduces");
            ExitCode::SUCCESS
        }
        Err(f) => {
            println!("case still fails: {f}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    if let Some(path) = &opts.replay {
        return replay_artifact(path);
    }

    let seeds: Vec<u64> = opts.seeds.clone().collect();
    println!(
        "fuzzing {} seed(s) [{}..{}] across {} job(s)",
        seeds.len(),
        opts.seeds.start,
        opts.seeds.end,
        opts.jobs
    );
    let failures: Vec<Repro> = parallel_map(opts.jobs, &seeds, |seed| fuzz::fuzz_one(*seed))
        .into_iter()
        .flatten()
        .collect();

    if failures.is_empty() {
        println!("all {} seed(s) passed", seeds.len());
        return ExitCode::SUCCESS;
    }
    for repro in &failures {
        println!("seed {:#x} FAILED: {}", repro.seed, repro.failure);
    }
    let out = opts.out.as_deref().unwrap_or("simfuzz-repro.json");
    match std::fs::write(out, failures[0].to_json().pretty()) {
        Ok(()) => println!(
            "wrote repro artifact for seed {:#x} to {out} (replay with: simfuzz --replay {out})",
            failures[0].seed
        ),
        Err(e) => eprintln!("simfuzz: cannot write {out}: {e}"),
    }
    println!("{} of {} seed(s) failed", failures.len(), seeds.len());
    ExitCode::FAILURE
}
