//! Differential testing of MSHR organizations against a reference model.
//!
//! Every organization in `stacksim-mshr` must agree with a fully-associative
//! CAM about *observable* miss-handling behaviour: which lines have
//! outstanding entries, when a miss merges, when the structure refuses an
//! allocation, and how many targets an entry carries when it completes.
//! They legitimately differ in probe counts (that difference is the point
//! of the paper's §5 comparison), so probes are never compared here.
//!
//! [`MshrOracle`] models entry *content* with a hash map and admission with
//! an organization-specific rule mirroring the construction used by
//! `stacksim::System`. [`drive_stream`] feeds a seeded operation stream to
//! a real handler and the oracle in lockstep and reports the first
//! divergence.

use std::collections::HashMap;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stacksim_mshr::{
    AllocOutcome, CamMshr, DirectMappedMshr, DynamicTuner, HierarchicalMshr, MissHandler, MissKind,
    MissTarget, MshrKind, ProbeScheme, TunerConfig, VbfMshr,
};
use stacksim_types::{CoreId, Cycle, LineAddr};

/// Outcome of an oracle allocation. Probe counts are intentionally absent:
/// they are organization-specific and not part of the contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleOutcome {
    /// A fresh entry was admitted.
    Primary,
    /// The miss merged into an existing entry.
    Merged {
        /// Targets on the entry after the merge, including this one.
        targets: usize,
    },
    /// The organization must refuse the miss and stall the requester.
    Full,
}

/// Where a hierarchical entry physically lives (placement is sticky: a
/// spilled entry stays in the shared level until it completes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Placement {
    Bank(usize),
    Shared,
}

/// Organization-specific admission rule.
#[derive(Clone, Debug)]
enum Admission {
    /// One shared pool: a fresh miss is admitted iff occupancy is below the
    /// capacity limit (CAM, direct-mapped, VBF).
    Shared,
    /// Tuck-style banked first level with a shared overflow, mirroring the
    /// geometry `stacksim::System` builds for [`MshrKind::Hierarchical`].
    TwoLevel {
        banks: usize,
        per_bank: usize,
        shared: usize,
        bank_occ: Vec<usize>,
        shared_occ: usize,
        placement: HashMap<LineAddr, Placement>,
    },
}

/// Fully-associative reference model for MSHR behaviour.
///
/// # Examples
///
/// ```
/// use stacksim_mshr::MshrKind;
/// use stacksim_simcheck::oracle::{MshrOracle, OracleOutcome};
/// use stacksim_types::LineAddr;
///
/// let mut oracle = MshrOracle::for_kind(MshrKind::Cam, 2);
/// assert_eq!(oracle.allocate(LineAddr::new(1)), OracleOutcome::Primary);
/// assert_eq!(
///     oracle.allocate(LineAddr::new(1)),
///     OracleOutcome::Merged { targets: 2 }
/// );
/// assert_eq!(oracle.deallocate(LineAddr::new(1)), Some(2));
/// ```
#[derive(Clone, Debug)]
pub struct MshrOracle {
    capacity: usize,
    limit: usize,
    targets: HashMap<LineAddr, usize>,
    admission: Admission,
}

impl MshrOracle {
    /// Builds the oracle for `kind` with the same geometry `stacksim`'s
    /// system model gives an MSHR bank of `entries` aggregate entries.
    pub fn for_kind(kind: MshrKind, entries: usize) -> MshrOracle {
        assert!(entries > 0, "oracle needs at least one entry");
        let (capacity, admission) = match kind {
            MshrKind::Cam | MshrKind::DirectLinear | MshrKind::DirectQuadratic | MshrKind::Vbf => {
                (entries, Admission::Shared)
            }
            MshrKind::Hierarchical => {
                let banks = 2usize;
                let per_bank = (entries / 4).max(1);
                let shared = (entries - banks * per_bank).max(1);
                (
                    banks * per_bank + shared,
                    Admission::TwoLevel {
                        banks,
                        per_bank,
                        shared,
                        bank_occ: vec![0; banks],
                        shared_occ: 0,
                        placement: HashMap::new(),
                    },
                )
            }
        };
        MshrOracle {
            capacity,
            limit: capacity,
            targets: HashMap::new(),
            admission,
        }
    }

    /// Whether `line` has an outstanding entry.
    pub fn lookup(&self, line: LineAddr) -> bool {
        self.targets.contains_key(&line)
    }

    /// Records a miss for `line`: merge, admit, or refuse.
    pub fn allocate(&mut self, line: LineAddr) -> OracleOutcome {
        if let Some(t) = self.targets.get_mut(&line) {
            // Merges never consume a new entry, so they succeed even at the
            // capacity limit — every organization shares this property.
            *t += 1;
            return OracleOutcome::Merged { targets: *t };
        }
        if self.targets.len() >= self.limit {
            return OracleOutcome::Full;
        }
        if let Admission::TwoLevel {
            banks,
            per_bank,
            shared,
            bank_occ,
            shared_occ,
            placement,
        } = &mut self.admission
        {
            let b = (line.index() % *banks as u64) as usize;
            if bank_occ[b] < *per_bank {
                bank_occ[b] += 1;
                placement.insert(line, Placement::Bank(b));
            } else if *shared_occ < *shared {
                *shared_occ += 1;
                placement.insert(line, Placement::Shared);
            } else {
                return OracleOutcome::Full;
            }
        }
        self.targets.insert(line, 1);
        OracleOutcome::Primary
    }

    /// Completes the miss for `line`, returning its target count.
    pub fn deallocate(&mut self, line: LineAddr) -> Option<usize> {
        let t = self.targets.remove(&line)?;
        if let Admission::TwoLevel {
            bank_occ,
            shared_occ,
            placement,
            ..
        } = &mut self.admission
        {
            match placement
                .remove(&line)
                .expect("placement tracked per entry")
            {
                Placement::Bank(b) => bank_occ[b] -= 1,
                Placement::Shared => *shared_occ -= 1,
            }
        }
        Some(t)
    }

    /// Currently outstanding entries.
    pub fn occupancy(&self) -> usize {
        self.targets.len()
    }

    /// Physical entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The capacity limit currently in force.
    pub fn capacity_limit(&self) -> usize {
        self.limit
    }

    /// Mirrors [`MissHandler::set_capacity_limit`]: clamps to capacity.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero, like the real implementations.
    pub fn set_capacity_limit(&mut self, limit: usize) {
        assert!(limit > 0, "capacity limit must be non-zero");
        self.limit = limit.min(self.capacity);
    }

    /// Whether a fresh allocation would currently be refused for capacity
    /// (two-level structures can also refuse structurally).
    pub fn is_full(&self) -> bool {
        self.occupancy() >= self.limit
    }
}

/// Builds the real handler for `kind`, using the same geometry as
/// `stacksim::System` does for an MSHR bank of `entries` entries.
pub fn make_handler(kind: MshrKind, entries: usize) -> Box<dyn MissHandler> {
    match kind {
        MshrKind::Cam => Box::new(CamMshr::new(entries)),
        MshrKind::DirectLinear => Box::new(DirectMappedMshr::new(entries, ProbeScheme::Linear)),
        MshrKind::DirectQuadratic => {
            Box::new(DirectMappedMshr::new(entries, ProbeScheme::Quadratic))
        }
        MshrKind::Vbf => Box::new(VbfMshr::new(entries)),
        MshrKind::Hierarchical => {
            let banks = 2usize;
            let per_bank = (entries / 4).max(1);
            let shared = (entries - banks * per_bank).max(1);
            Box::new(HierarchicalMshr::new(banks, per_bank, shared))
        }
    }
}

/// All organizations under differential test.
pub const ALL_KINDS: [MshrKind; 5] = [
    MshrKind::Cam,
    MshrKind::DirectLinear,
    MshrKind::DirectQuadratic,
    MshrKind::Vbf,
    MshrKind::Hierarchical,
];

/// One operation in a generated stimulus stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOp {
    /// Probe for an outstanding miss.
    Lookup(LineAddr),
    /// Record a miss (allocates or merges).
    Allocate(LineAddr),
    /// Complete the miss for a line (which may not be outstanding).
    Deallocate(LineAddr),
    /// Apply `capacity / divisor` as the dynamic capacity limit.
    SetLimit(usize),
}

/// Shape of a generated stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamParams {
    /// Aggregate entries handed to the organization. Keep this a power of
    /// two so quadratic probing's capacity assertion holds.
    pub entries: usize,
    /// Operations per stream.
    pub ops: usize,
    /// Line addresses are drawn from `0..line_space`; a small space forces
    /// collisions, merges and displacement chains.
    pub line_space: u64,
    /// Mix in random capacity-limit switches (the §5.1 dynamic-MSHR lever).
    pub limit_switches: bool,
    /// Also step a real [`DynamicTuner`] and apply its decisions to both
    /// sides, exercising the dynamic organization end to end.
    pub tuner: bool,
}

impl Default for StreamParams {
    fn default() -> Self {
        StreamParams {
            entries: 16,
            ops: 400,
            line_space: 48,
            limit_switches: true,
            tuner: false,
        }
    }
}

/// Deterministically generates the operation stream for `seed`.
pub fn gen_stream(seed: u64, p: &StreamParams) -> Vec<MshrOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..p.ops)
        .map(|_| {
            let line = LineAddr::new(rng.gen_range(0..p.line_space));
            match rng.gen_range(0u32..100) {
                0..=44 => MshrOp::Allocate(line),
                45..=69 => MshrOp::Deallocate(line),
                70..=89 => MshrOp::Lookup(line),
                _ if p.limit_switches => MshrOp::SetLimit([1usize, 2, 4][rng.gen_range(0..3usize)]),
                _ => MshrOp::Lookup(line),
            }
        })
        .collect()
}

/// A step at which an implementation and the oracle disagreed.
#[derive(Clone, Debug)]
pub struct OracleDivergence {
    /// Organization under test.
    pub kind: MshrKind,
    /// Stream seed.
    pub seed: u64,
    /// Zero-based operation index.
    pub step: usize,
    /// The operation that exposed the divergence.
    pub op: String,
    /// What disagreed.
    pub detail: String,
}

impl fmt::Display for OracleDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} diverged from oracle at step {} of stream {:#x} ({}): {}",
            self.kind, self.step, self.seed, self.op, self.detail
        )
    }
}

impl std::error::Error for OracleDivergence {}

/// Tally of outcome classes a stream exercised, so tests can assert the
/// stream actually reached merge and full pressure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Fresh entries admitted.
    pub primaries: usize,
    /// Secondary misses merged.
    pub merges: usize,
    /// Allocations refused.
    pub fulls: usize,
    /// Deallocations that found an entry.
    pub releases: usize,
}

/// Drives `kind` and the oracle through the stream for `seed`, comparing
/// outcomes, occupancy, fullness and limits after every operation.
///
/// # Errors
///
/// Returns the first [`OracleDivergence`] if the implementation and the
/// reference model ever disagree.
#[must_use = "the drive report or the first divergence"]
pub fn drive_stream(
    kind: MshrKind,
    seed: u64,
    p: &StreamParams,
) -> Result<DriveReport, OracleDivergence> {
    let mut handler = make_handler(kind, p.entries);
    let mut oracle = MshrOracle::for_kind(kind, p.entries);
    let mut tuner = p.tuner.then(|| {
        DynamicTuner::new(
            handler.capacity(),
            TunerConfig {
                sample_cycles: 40,
                apply_cycles: 160,
                divisors: vec![1, 2, 4],
            },
        )
    });
    let mut commit_rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut committed = 0u64;
    let mut report = DriveReport::default();

    let fail = |step: usize, op: MshrOp, detail: String| OracleDivergence {
        kind,
        seed,
        step,
        op: format!("{op:?}"),
        detail,
    };

    for (step, op) in gen_stream(seed, p).into_iter().enumerate() {
        match op {
            MshrOp::Lookup(line) => {
                let got = handler.lookup(line).found;
                let want = oracle.lookup(line);
                if got != want {
                    return Err(fail(step, op, format!("lookup found {got}, oracle {want}")));
                }
            }
            MshrOp::Allocate(line) => {
                let target = MissTarget::demand(CoreId::new((step % 4) as u16), step as u64);
                let got = handler.allocate(line, target, MissKind::Read, Cycle::new(step as u64));
                let want = oracle.allocate(line);
                match (&got, want) {
                    (Ok(AllocOutcome::Primary { .. }), OracleOutcome::Primary) => {
                        report.primaries += 1;
                    }
                    (
                        Ok(AllocOutcome::Merged { targets, .. }),
                        OracleOutcome::Merged { targets: t },
                    ) if *targets == t => {
                        report.merges += 1;
                    }
                    (Err(_), OracleOutcome::Full) => report.fulls += 1,
                    _ => {
                        return Err(fail(step, op, format!("allocate {got:?}, oracle {want:?}")));
                    }
                }
            }
            MshrOp::Deallocate(line) => {
                let got = handler.deallocate(line);
                let want = oracle.deallocate(line);
                match (&got, want) {
                    (None, None) => {}
                    (Some((entry, _)), Some(t))
                        if entry.target_count() == t && entry.line() == line =>
                    {
                        report.releases += 1;
                    }
                    _ => {
                        let got = got.as_ref().map(|(e, _)| e.target_count());
                        return Err(fail(
                            step,
                            op,
                            format!("deallocate targets {got:?}, oracle {want:?}"),
                        ));
                    }
                }
            }
            MshrOp::SetLimit(div) => {
                let limit = (handler.capacity() / div).max(1);
                handler.set_capacity_limit(limit);
                oracle.set_capacity_limit(limit);
            }
        }
        if let Some(t) = tuner.as_mut() {
            committed += commit_rng.gen_range(0u64..50);
            if let Some(limit) = t.tick(Cycle::new(step as u64 * 10), committed) {
                handler.set_capacity_limit(limit);
                oracle.set_capacity_limit(limit);
            }
        }
        if handler.occupancy() != oracle.occupancy() {
            return Err(fail(
                step,
                op,
                format!(
                    "occupancy {} vs oracle {}",
                    handler.occupancy(),
                    oracle.occupancy()
                ),
            ));
        }
        if handler.capacity_limit() != oracle.capacity_limit() {
            return Err(fail(
                step,
                op,
                format!(
                    "capacity limit {} vs oracle {}",
                    handler.capacity_limit(),
                    oracle.capacity_limit()
                ),
            ));
        }
        if handler.is_full() != oracle.is_full() {
            return Err(fail(
                step,
                op,
                format!(
                    "is_full {} vs oracle {}",
                    handler.is_full(),
                    oracle.is_full()
                ),
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_merges_bypass_the_limit() {
        let mut o = MshrOracle::for_kind(MshrKind::Cam, 2);
        assert_eq!(o.allocate(LineAddr::new(1)), OracleOutcome::Primary);
        assert_eq!(o.allocate(LineAddr::new(2)), OracleOutcome::Primary);
        assert!(o.is_full());
        assert_eq!(o.allocate(LineAddr::new(3)), OracleOutcome::Full);
        assert_eq!(
            o.allocate(LineAddr::new(1)),
            OracleOutcome::Merged { targets: 2 }
        );
        assert_eq!(o.deallocate(LineAddr::new(1)), Some(2));
        assert_eq!(o.deallocate(LineAddr::new(1)), None);
        assert_eq!(o.occupancy(), 1);
    }

    #[test]
    fn two_level_admission_spills_then_refuses() {
        // entries = 8 -> banks = 2 x 2, shared = 4 (capacity 8).
        let mut o = MshrOracle::for_kind(MshrKind::Hierarchical, 8);
        assert_eq!(o.capacity(), 8);
        // Even lines all hash to bank 0: two fill the bank, the next four
        // spill to the shared level, the seventh is refused structurally
        // even though aggregate occupancy (6) is below the limit (8).
        for i in 0..6u64 {
            assert_eq!(o.allocate(LineAddr::new(2 * i)), OracleOutcome::Primary);
        }
        assert!(!o.is_full());
        assert_eq!(o.allocate(LineAddr::new(12)), OracleOutcome::Full);
        // An odd line still fits in bank 1.
        assert_eq!(o.allocate(LineAddr::new(1)), OracleOutcome::Primary);
        // Releasing a spilled even line frees shared space again.
        assert_eq!(o.deallocate(LineAddr::new(4)), Some(1));
        assert_eq!(o.allocate(LineAddr::new(12)), OracleOutcome::Primary);
    }

    #[test]
    fn streams_are_deterministic() {
        let p = StreamParams::default();
        assert_eq!(gen_stream(7, &p), gen_stream(7, &p));
        assert_ne!(gen_stream(7, &p), gen_stream(8, &p));
    }

    #[test]
    fn every_kind_survives_a_default_stream() {
        for kind in ALL_KINDS {
            let report =
                drive_stream(kind, 1, &StreamParams::default()).unwrap_or_else(|d| panic!("{d}"));
            assert!(report.primaries > 0, "{kind}: no primaries exercised");
        }
    }

    #[test]
    fn tuner_driven_streams_agree() {
        let p = StreamParams {
            tuner: true,
            limit_switches: false,
            ..StreamParams::default()
        };
        for kind in ALL_KINDS {
            drive_stream(kind, 99, &p).unwrap_or_else(|d| panic!("{d}"));
        }
    }

    #[test]
    fn divergence_displays_context() {
        let d = OracleDivergence {
            kind: MshrKind::Vbf,
            seed: 0x2a,
            step: 17,
            op: "Allocate(LineAddr(3))".into(),
            detail: "occupancy 3 vs oracle 4".into(),
        };
        let s = d.to_string();
        assert!(s.contains("vbf"), "{s}");
        assert!(s.contains("step 17"), "{s}");
        assert!(s.contains("0x2a"), "{s}");
    }
}
