//! Correctness harness for the `stacksim` workspace.
//!
//! The simulator's experiment code answers "how fast is this machine?";
//! this crate answers "is the machine model telling the truth?". It layers
//! three independent checks on top of the existing crates:
//!
//! * [`oracle`] — a **differential MSHR oracle**: a fully-associative
//!   reference model of *what entries exist* combined with each
//!   organization's admission rule, driven through seeded
//!   allocate/probe/release streams in lockstep with the real
//!   direct-mapped, VBF, hierarchical and dynamically-limited structures.
//!   Outcomes (hit/miss/merge/full) and occupancy must agree at every step;
//!   probe counts are organization-specific by design and are not compared.
//! * [`protocol`] — a **DRAM protocol checker** that consumes the per-MC
//!   command streams recorded by [`stacksim::trace`] and validates
//!   JEDEC-style ordering and spacing invariants (tRP, tRCD, tRAS, tCCD,
//!   write recovery, refresh cadence, row-open discipline) against the
//!   configuration's timing parameters.
//! * [`fuzz`] — a **seeded config-space fuzzer** that samples
//!   configuration × mix × window points, runs short simulations under
//!   both oracles plus a fast-forward-versus-tick-by-tick bit-identity
//!   check, shrinks any failure to a minimal configuration, and emits a
//!   replayable JSON repro artifact (see the `simfuzz` binary).
//!
//! # Examples
//!
//! ```
//! use stacksim_mshr::MshrKind;
//! use stacksim_simcheck::oracle::{drive_stream, StreamParams};
//!
//! let report = drive_stream(MshrKind::Vbf, 42, &StreamParams::default())
//!     .expect("vbf agrees with the reference model");
//! assert!(report.primaries > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod oracle;
pub mod protocol;
