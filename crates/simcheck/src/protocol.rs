//! DRAM command-protocol checker.
//!
//! Consumes the per-controller command streams recorded by
//! [`stacksim::trace`] and validates, per (rank, bank), the JEDEC-style
//! ordering and spacing invariants the device model is supposed to honour:
//!
//! * non-decreasing command times, and no command to a busy bank
//!   (column burst time, write recovery, refresh occupancy);
//! * ACT only after the preceding PRE's tRP has elapsed;
//! * column commands only to an open row, and only once that row's
//!   activation (tRCD) has completed;
//! * PRE no earlier than the row's minimum open time (tRAS) allows;
//! * consecutive column bursts at least tCCD apart;
//! * refreshes only when configured, and never faster than the per-row
//!   cadence derived from the refresh period.
//!
//! Tracing starts mid-simulation (after warmup), so the checker treats the
//! initial row-buffer contents of each bank as *unknown wildcards*: a
//! column command may claim an unknown slot, but once all wildcards are
//! spent — or a refresh has flushed the bank — every open row must be
//! accounted for by a traced ACT. This keeps the checker sound (a legal
//! trace is never flagged) while still catching real discipline bugs.

use std::collections::HashMap;
use std::fmt;

use stacksim::config::SystemConfig;
use stacksim::runner::RunResult;
use stacksim::trace::Trace;
use stacksim_dram::{DramCmd, DramCmdKind, PagePolicy};
use stacksim_types::{ConfigError, Cycle, Cycles, DramTimingCycles};

/// Timing contract a command stream is checked against, expressed in core
/// cycles exactly as the system model derives it from a [`SystemConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolParams {
    /// DRAM array timing in core cycles.
    pub timing: DramTimingCycles,
    /// Row-buffer cache entries per bank.
    pub row_buffer_entries: usize,
    /// Row management policy.
    pub page_policy: PagePolicy,
    /// Per-row refresh cadence, `None` when refresh is disabled.
    pub refresh_interval: Option<Cycles>,
}

impl ProtocolParams {
    /// Derives the contract for `cfg`, mirroring `stacksim::System`'s own
    /// construction (same timing conversion, same refresh cadence).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `cfg` does not validate.
    #[must_use = "the derived protocol parameters or the configuration problem"]
    pub fn for_config(cfg: &SystemConfig) -> Result<ProtocolParams, ConfigError> {
        cfg.validate()?;
        let geometry = cfg.geometry()?;
        Ok(ProtocolParams {
            timing: cfg.memory.timing.to_cycles(cfg.core_hz),
            row_buffer_entries: cfg.memory.row_buffer_entries,
            page_policy: cfg.memory.page_policy,
            refresh_interval: cfg
                .memory
                .refresh
                .row_interval(geometry.rows_per_bank(), cfg.core_hz),
        })
    }
}

/// Which protocol rule a command broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolRule {
    /// Commands to one bank must carry non-decreasing timestamps.
    TimeReversed,
    /// Command issued while the bank was still busy (burst, write
    /// recovery, or refresh occupancy).
    BankBusy,
    /// ACT before the preceding PRE's tRP elapsed.
    TrpViolated,
    /// Column command before its row's activation (tRCD) completed.
    TrcdViolated,
    /// PRE that would cut the row's minimum open time (tRAS) short.
    TrasViolated,
    /// Consecutive column bursts to one bank closer than tCCD.
    TccdViolated,
    /// Open-page ACT with no preceding PRE on the bank.
    ActWithoutPrecharge,
    /// Column command to a row not present in the row-buffer cache.
    RowNotOpen,
    /// REF although the configuration disables refresh.
    UnexpectedRefresh,
    /// Refreshes arriving faster than the configured per-row cadence.
    RefreshTooFast,
}

impl fmt::Display for ProtocolRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolRule::TimeReversed => "time reversed",
            ProtocolRule::BankBusy => "bank busy",
            ProtocolRule::TrpViolated => "tRP violated",
            ProtocolRule::TrcdViolated => "tRCD violated",
            ProtocolRule::TrasViolated => "tRAS violated",
            ProtocolRule::TccdViolated => "tCCD violated",
            ProtocolRule::ActWithoutPrecharge => "ACT without precharge",
            ProtocolRule::RowNotOpen => "row not open",
            ProtocolRule::UnexpectedRefresh => "unexpected refresh",
            ProtocolRule::RefreshTooFast => "refresh too fast",
        };
        f.write_str(s)
    }
}

/// One detected protocol violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Memory controller whose stream contains the command.
    pub mc: usize,
    /// Zero-based position within that controller's stream.
    pub index: usize,
    /// The offending command.
    pub cmd: DramCmd,
    /// The rule broken.
    pub rule: ProtocolRule,
    /// Human-readable specifics (expected vs observed times).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mc{}[{}]: {}: `{}` ({})",
            self.mc, self.index, self.rule, self.cmd, self.detail
        )
    }
}

/// One row-buffer slot: `None` rows are warmup wildcards whose identity was
/// never observed; `ready` is when the row's activation completes.
#[derive(Clone, Copy, Debug)]
struct RowSlot {
    row: Option<u64>,
    ready: Cycle,
}

/// Per-(rank, bank) checker state.
struct BankState {
    last_at: Option<Cycle>,
    busy_until: Cycle,
    /// Set by PRE to `at + tRP`, consumed by the next ACT (open page).
    pre_ready: Option<Cycle>,
    last_act: Option<Cycle>,
    last_col: Option<Cycle>,
    last_col_write: bool,
    /// LRU row-buffer cache mirror, most recent last.
    open: Vec<RowSlot>,
    refs_seen: u64,
}

impl BankState {
    fn new(row_buffer_entries: usize) -> BankState {
        BankState {
            last_at: None,
            busy_until: Cycle::ZERO,
            pre_ready: None,
            last_act: None,
            last_col: None,
            last_col_write: false,
            // Warmup may have left any rows open: start with a full
            // complement of wildcards.
            open: vec![
                RowSlot {
                    row: None,
                    ready: Cycle::ZERO,
                };
                row_buffer_entries
            ],
            refs_seen: 0,
        }
    }

    /// Finds `row` in the cache mirror, claiming a wildcard if needed.
    /// Returns the slot's activation-ready time, or `None` if the row
    /// cannot be open.
    fn probe_row(&mut self, row: u64) -> Option<Cycle> {
        if let Some(i) = self.open.iter().position(|s| s.row == Some(row)) {
            let slot = self.open.remove(i);
            self.open.push(slot); // touch MRU
            return Some(slot.ready);
        }
        if let Some(i) = self.open.iter().position(|s| s.row.is_none()) {
            // Attribute the hit to a row opened before tracing began.
            self.open.remove(i);
            self.open.push(RowSlot {
                row: Some(row),
                ready: Cycle::ZERO,
            });
            return Some(Cycle::ZERO);
        }
        None
    }

    /// Inserts `row` as most-recent, evicting the LRU slot when over
    /// capacity.
    fn open_row(&mut self, row: u64, ready: Cycle, capacity: usize) {
        self.open.retain(|s| s.row != Some(row));
        self.open.push(RowSlot {
            row: Some(row),
            ready,
        });
        while self.open.len() > capacity {
            self.open.remove(0);
        }
    }
}

/// Checks one memory controller's command stream against `params`.
pub fn check_stream(params: &ProtocolParams, mc: usize, cmds: &[DramCmd]) -> Vec<Violation> {
    let t = &params.timing;
    let mut banks: HashMap<(usize, usize), BankState> = HashMap::new();
    let mut violations = Vec::new();

    for (index, cmd) in cmds.iter().enumerate() {
        let state = banks
            .entry((cmd.rank, cmd.bank))
            .or_insert_with(|| BankState::new(params.row_buffer_entries));
        let mut flag = |rule: ProtocolRule, detail: String| {
            violations.push(Violation {
                mc,
                index,
                cmd: *cmd,
                rule,
                detail,
            });
        };

        if let Some(prev) = state.last_at {
            if cmd.at < prev {
                flag(
                    ProtocolRule::TimeReversed,
                    format!("previous command on this bank at {}", prev.raw()),
                );
            }
        }
        state.last_at = Some(cmd.at);
        if cmd.at < state.busy_until {
            flag(
                ProtocolRule::BankBusy,
                format!("bank busy until {}", state.busy_until.raw()),
            );
        }

        match cmd.kind {
            DramCmdKind::Precharge => {
                if let Some(act) = state.last_act {
                    let ras_ready = act + t.t_rcd + t.t_ras;
                    if cmd.at + t.t_rp < ras_ready {
                        flag(
                            ProtocolRule::TrasViolated,
                            format!("row must stay open until {}", ras_ready.raw()),
                        );
                    }
                }
                state.pre_ready = Some(cmd.at + t.t_rp);
                if params.page_policy == PagePolicy::Closed {
                    // Auto-precharge ends the access: the bank is idle once
                    // tRP (and any pending write recovery) completes.
                    let mut free = cmd.at + t.t_rp;
                    if state.last_col_write {
                        if let Some(col) = state.last_col {
                            free = free.max(col + t.t_ccd + t.t_wr);
                        }
                    }
                    state.busy_until = free;
                    state.open.clear();
                }
            }
            DramCmdKind::Activate => {
                if params.page_policy == PagePolicy::Open {
                    match state.pre_ready.take() {
                        None => flag(
                            ProtocolRule::ActWithoutPrecharge,
                            "open-page activates must follow a precharge".into(),
                        ),
                        Some(ready) if cmd.at < ready => flag(
                            ProtocolRule::TrpViolated,
                            format!("precharge completes at {}", ready.raw()),
                        ),
                        Some(_) => {}
                    }
                } else {
                    // Closed page auto-precharges, so each access starts
                    // directly with ACT on an idle bank.
                    state.open.clear();
                }
                state.last_act = Some(cmd.at);
                state.open_row(cmd.row, cmd.at + t.t_rcd, params.row_buffer_entries.max(1));
            }
            DramCmdKind::Read | DramCmdKind::Write => {
                match state.probe_row(cmd.row) {
                    None => flag(
                        ProtocolRule::RowNotOpen,
                        format!("row {:#x} is not in the row-buffer cache", cmd.row),
                    ),
                    Some(ready) if cmd.at < ready => flag(
                        ProtocolRule::TrcdViolated,
                        format!("activation completes at {}", ready.raw()),
                    ),
                    Some(_) => {}
                }
                if let Some(col) = state.last_col {
                    if cmd.at < col + t.t_ccd {
                        flag(
                            ProtocolRule::TccdViolated,
                            format!("previous column burst at {}", col.raw()),
                        );
                    }
                }
                let write = cmd.kind == DramCmdKind::Write;
                if params.page_policy == PagePolicy::Open {
                    state.busy_until = if write {
                        cmd.at + t.t_ccd + t.t_wr
                    } else {
                        cmd.at + t.t_ccd
                    };
                }
                state.last_col = Some(cmd.at);
                state.last_col_write = write;
            }
            DramCmdKind::Refresh => {
                match params.refresh_interval {
                    None => flag(
                        ProtocolRule::UnexpectedRefresh,
                        "refresh is disabled in this configuration".into(),
                    ),
                    Some(interval) => {
                        state.refs_seen += 1;
                        // The m-th refresh a bank performs cannot be due
                        // before m whole per-row intervals have elapsed
                        // (skipped rows only push it later).
                        let earliest = state.refs_seen.saturating_mul(interval.raw());
                        if cmd.at.raw() < earliest {
                            flag(
                                ProtocolRule::RefreshTooFast,
                                format!(
                                    "refresh #{} on this bank cannot be due before {earliest}",
                                    state.refs_seen
                                ),
                            );
                        }
                    }
                }
                state.busy_until = cmd.at + t.t_ras + t.t_rp;
                // Refresh closes every row buffer; from here on all open
                // rows must come from traced activates.
                state.open.clear();
            }
        }
    }
    violations
}

/// Checks every controller stream in `trace`.
pub fn check_trace(params: &ProtocolParams, trace: &Trace) -> Vec<Violation> {
    trace
        .dram_cmds
        .iter()
        .enumerate()
        .flat_map(|(mc, cmds)| check_stream(params, mc, cmds))
        .collect()
}

/// Derives the contract from `cfg` and checks a traced run end to end.
///
/// # Errors
///
/// Returns [`ConfigError`] if `cfg` does not validate or `result` carries
/// no DRAM command trace to check.
#[must_use = "the violation list; dropping it defeats the check"]
pub fn check_run(cfg: &SystemConfig, result: &RunResult) -> Result<Vec<Violation>, ConfigError> {
    let params = ProtocolParams::for_config(cfg)?;
    let trace = result.trace.as_ref().ok_or_else(|| {
        ConfigError::new("protocol check needs a run traced with dram_cmds enabled")
    })?;
    Ok(check_trace(&params, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_types::DramTiming;

    const CORE_HZ: f64 = 3.333e9;

    fn params() -> ProtocolParams {
        ProtocolParams {
            timing: DramTiming::COMMODITY_2D.to_cycles(CORE_HZ),
            row_buffer_entries: 1,
            page_policy: PagePolicy::Open,
            refresh_interval: None,
        }
    }

    fn cmd(at: u64, kind: DramCmdKind, row: u64) -> DramCmd {
        DramCmd {
            at: Cycle::new(at),
            rank: 0,
            bank: 0,
            row,
            kind,
        }
    }

    /// A minimal legal open-page miss + hit sequence under `p.timing`.
    fn legal_miss_then_hit(p: &ProtocolParams) -> Vec<DramCmd> {
        let t = &p.timing;
        let pre = 0;
        let act = pre + t.t_rp.raw();
        let col = act + t.t_rcd.raw();
        let hit = col + t.t_ccd.raw();
        vec![
            cmd(pre, DramCmdKind::Precharge, 7),
            cmd(act, DramCmdKind::Activate, 7),
            cmd(col, DramCmdKind::Read, 7),
            cmd(hit, DramCmdKind::Read, 7),
        ]
    }

    #[test]
    fn legal_stream_passes() {
        let p = params();
        let v = check_stream(&p, 0, &legal_miss_then_hit(&p));
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn trp_off_by_one_is_caught() {
        let p = params();
        let mut cmds = legal_miss_then_hit(&p);
        // Pull the ACT one cycle into the precharge window.
        cmds[1].at = Cycle::new(cmds[1].at.raw() - 1);
        let v = check_stream(&p, 0, &cmds);
        assert!(
            v.iter().any(|v| v.rule == ProtocolRule::TrpViolated),
            "expected a tRP violation, got {v:?}"
        );
    }

    #[test]
    fn early_column_is_caught() {
        let p = params();
        let mut cmds = legal_miss_then_hit(&p);
        cmds[2].at = Cycle::new(cmds[2].at.raw() - 1);
        let v = check_stream(&p, 0, &cmds);
        assert!(
            v.iter().any(|v| v.rule == ProtocolRule::TrcdViolated),
            "expected a tRCD violation, got {v:?}"
        );
    }

    #[test]
    fn early_precharge_violates_tras() {
        let p = params();
        let t = &p.timing;
        let cmds = vec![
            cmd(0, DramCmdKind::Precharge, 7),
            cmd(t.t_rp.raw(), DramCmdKind::Activate, 7),
            cmd(t.t_rp.raw() + t.t_rcd.raw(), DramCmdKind::Read, 7),
            // Next access arrives immediately and precharges way too early.
            cmd(
                t.t_rp.raw() + t.t_rcd.raw() + t.t_ccd.raw(),
                DramCmdKind::Precharge,
                9,
            ),
        ];
        let v = check_stream(&p, 0, &cmds);
        assert!(
            v.iter().any(|v| v.rule == ProtocolRule::TrasViolated),
            "expected a tRAS violation, got {v:?}"
        );
    }

    #[test]
    fn column_to_unopened_row_is_caught_after_wildcards_spent() {
        let p = params();
        // The first column may claim the single warmup wildcard...
        let v = check_stream(&p, 0, &[cmd(0, DramCmdKind::Read, 3)]);
        assert!(v.is_empty(), "wildcard hit should pass: {v:?}");
        // ...but a second row cannot also have been open (capacity 1).
        let t = &p.timing;
        let v = check_stream(
            &p,
            0,
            &[
                cmd(0, DramCmdKind::Read, 3),
                cmd(t.t_ccd.raw(), DramCmdKind::Read, 4),
            ],
        );
        assert!(
            v.iter().any(|v| v.rule == ProtocolRule::RowNotOpen),
            "expected row-not-open, got {v:?}"
        );
    }

    #[test]
    fn refresh_rules() {
        // Refresh disabled: any REF is a violation.
        let p = params();
        let v = check_stream(&p, 0, &[cmd(5_000, DramCmdKind::Refresh, 0)]);
        assert!(v.iter().any(|v| v.rule == ProtocolRule::UnexpectedRefresh));

        // Refresh enabled at a 1000-cycle cadence: the second REF at 1500
        // is 500 cycles too early.
        let mut p = params();
        p.refresh_interval = Some(Cycles::new(1_000));
        let v = check_stream(
            &p,
            0,
            &[
                cmd(1_000, DramCmdKind::Refresh, 0),
                cmd(1_500, DramCmdKind::Refresh, 0),
            ],
        );
        assert!(
            v.iter().any(|v| v.rule == ProtocolRule::RefreshTooFast),
            "expected refresh-too-fast, got {v:?}"
        );

        // A catch-up burst after a long idle period is legal as long as
        // each refresh had come due.
        let t = p.timing;
        let busy = t.t_ras.raw() + t.t_rp.raw();
        let v = check_stream(
            &p,
            0,
            &[
                cmd(10_000, DramCmdKind::Refresh, 0),
                cmd(10_000 + busy, DramCmdKind::Refresh, 0),
                cmd(10_000 + 2 * busy, DramCmdKind::Refresh, 0),
            ],
        );
        assert!(v.is_empty(), "catch-up burst should pass: {v:?}");
    }

    #[test]
    fn busy_bank_is_caught() {
        let mut p = params();
        p.refresh_interval = Some(Cycles::new(100));
        // A refresh occupies the bank for tRAS + tRP; a command one cycle
        // into that window is illegal.
        let v = check_stream(
            &p,
            0,
            &[
                cmd(1_000, DramCmdKind::Refresh, 0),
                cmd(1_001, DramCmdKind::Precharge, 3),
            ],
        );
        assert!(
            v.iter().any(|v| v.rule == ProtocolRule::BankBusy),
            "expected bank-busy, got {v:?}"
        );
    }

    #[test]
    fn closed_page_sequence_passes() {
        let mut p = params();
        p.page_policy = PagePolicy::Closed;
        let t = &p.timing;
        let act = 10;
        let col = act + t.t_rcd.raw();
        let pre = col + t.t_ras.raw();
        let next_act = pre + t.t_rp.raw();
        let cmds = vec![
            cmd(act, DramCmdKind::Activate, 3),
            cmd(col, DramCmdKind::Read, 3),
            cmd(pre, DramCmdKind::Precharge, 3),
            cmd(next_act, DramCmdKind::Activate, 9),
            cmd(next_act + t.t_rcd.raw(), DramCmdKind::Read, 9),
            cmd(
                next_act + t.t_rcd.raw() + t.t_ras.raw(),
                DramCmdKind::Precharge,
                9,
            ),
        ];
        let v = check_stream(&p, 0, &cmds);
        assert!(v.is_empty(), "closed-page stream should pass: {v:?}");
        // Re-using the first row after auto-precharge must require an ACT.
        let v = check_stream(
            &p,
            0,
            &[
                cmd(act, DramCmdKind::Activate, 3),
                cmd(col, DramCmdKind::Read, 3),
                cmd(pre, DramCmdKind::Precharge, 3),
                cmd(next_act, DramCmdKind::Read, 3),
            ],
        );
        assert!(
            v.iter().any(|v| v.rule == ProtocolRule::RowNotOpen),
            "expected row-not-open after auto-precharge, got {v:?}"
        );
    }

    #[test]
    fn violation_display_is_one_line() {
        let p = params();
        let mut cmds = legal_miss_then_hit(&p);
        cmds[1].at = Cycle::new(cmds[1].at.raw() - 1);
        let v = check_stream(&p, 0, &cmds);
        let line = v[0].to_string();
        assert!(line.contains("tRP"), "{line}");
        assert!(line.contains("ACT"), "{line}");
        assert!(!line.contains('\n'), "{line}");
    }
}
