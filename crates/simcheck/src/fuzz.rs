//! Seeded config-space fuzzer.
//!
//! A fuzz *case* is a deterministic function of one `u64` seed: a machine
//! configuration sampled around the paper's named design points, a workload
//! mix, and a short simulation window. [`run_case`] subjects the case to
//! every oracle this crate offers:
//!
//! 1. the differential MSHR oracle ([`crate::oracle`]) for the sampled
//!    organization and per-bank entry count;
//! 2. a fast-forward run and a tick-by-tick run of the same point, which
//!    must agree bit-for-bit on every committed count, IPC, metric and
//!    trace event (the quiescence skip's contract);
//! 3. the DRAM protocol checker ([`crate::protocol`]) over the traced
//!    command streams.
//!
//! On failure, [`shrink`] walks a fixed list of named simplifying
//! transformations, keeping each one that preserves the failure class, and
//! [`Repro`] captures `(seed, kept transformations, failure)` as a JSON
//! artifact that [`replay`] can re-run bit-identically later — on CI or on
//! a developer machine.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stacksim::config::SystemConfig;
use stacksim::runner::{run_mix, RunConfig, RunResult};
use stacksim::scenario::Scenario;
use stacksim::trace::TraceConfig;
use stacksim_dram::PagePolicy;
use stacksim_mshr::MshrKind;
use stacksim_stats::Json;
use stacksim_types::RefreshConfig;
use stacksim_workload::Mix;

use crate::oracle::{self, StreamParams};
use crate::protocol;

/// One generated point in configuration space.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzCase {
    /// Generator seed that produced (and reproduces) the case.
    pub seed: u64,
    /// The sampled machine configuration.
    pub cfg: SystemConfig,
    /// Workload mix name (resolved through [`Mix::by_name`]).
    pub mix: &'static str,
    /// Simulation window (trace settings are added by [`run_case`]).
    pub run: RunConfig,
}

/// Why a fuzz case failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FuzzFailure {
    /// The generated configuration was rejected by the simulator even
    /// though the generator only samples valid points.
    Config(String),
    /// An MSHR organization diverged from the CAM oracle.
    Oracle(String),
    /// Fast-forward and tick-by-tick runs disagreed.
    FastForward(String),
    /// The DRAM command stream broke a protocol rule.
    Protocol {
        /// Total violations found.
        count: usize,
        /// The first few violations, rendered.
        first: Vec<String>,
    },
}

impl FuzzFailure {
    /// Stable class name used to decide whether a shrunk case "still
    /// fails the same way".
    pub fn class(&self) -> &'static str {
        match self {
            FuzzFailure::Config(_) => "config",
            FuzzFailure::Oracle(_) => "oracle",
            FuzzFailure::FastForward(_) => "fast-forward",
            FuzzFailure::Protocol { .. } => "protocol",
        }
    }
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzFailure::Config(e) => write!(f, "config rejected: {e}"),
            FuzzFailure::Oracle(e) => write!(f, "mshr oracle: {e}"),
            FuzzFailure::FastForward(e) => write!(f, "fast-forward mismatch: {e}"),
            FuzzFailure::Protocol { count, first } => {
                write!(f, "{count} protocol violations: {}", first.join("; "))
            }
        }
    }
}

/// The shipped scenario files the generator samples base machines from,
/// embedded at compile time. Sampling through the scenario frontend (rather
/// than the `configs` constructors) puts the render → parse → validate →
/// build path itself under the fuzzer, and folds the beyond-quad-core
/// topologies (multiple stacks, heterogeneous cores, interconnect hops)
/// into the oracle/bit-identity/protocol sweep.
const BASE_SCENARIOS: &[&str] = &[
    include_str!("../../../scenarios/2d.json"),
    include_str!("../../../scenarios/3d.json"),
    include_str!("../../../scenarios/3d-wide.json"),
    include_str!("../../../scenarios/3d-fast.json"),
    include_str!("../../../scenarios/dual-mc.json"),
    include_str!("../../../scenarios/quad-mc.json"),
    include_str!("../../../scenarios/8core-dual-stack.json"),
    include_str!("../../../scenarios/16core-dual-stack.json"),
];

/// Inserts or replaces the member at `path` inside nested JSON objects,
/// creating intermediate objects as needed. Replacements keep the original
/// member position so rendered documents stay stable.
fn set_key(v: &mut Json, path: &[&str], value: Json) {
    let Some((head, rest)) = path.split_first() else {
        return;
    };
    let Json::Obj(members) = v else { return };
    if rest.is_empty() {
        match members.iter_mut().find(|(k, _)| k == head) {
            Some(slot) => slot.1 = value,
            None => members.push(((*head).to_string(), value)),
        }
        return;
    }
    if !members.iter().any(|(k, _)| k == head) {
        members.push(((*head).to_string(), Json::Obj(Vec::new())));
    }
    if let Some(slot) = members.iter_mut().find(|(k, _)| k == head) {
        set_key(&mut slot.1, rest, value);
    }
}

/// Deterministically generates the case for `seed`.
///
/// # Panics
///
/// Panics if a shipped scenario file is broken or a mutation produces a
/// document the scenario parser rejects — both are build bugs, not fuzz
/// findings, and must fail loudly.
pub fn generate(seed: u64) -> FuzzCase {
    let mut rng = SmallRng::seed_from_u64(seed);
    let text = BASE_SCENARIOS[rng.gen_range(0..BASE_SCENARIOS.len())];
    let base = Scenario::from_str(text).expect("shipped scenario must load");
    let mut doc = Json::parse(text).expect("shipped scenario is valid JSON");

    let kind = oracle::ALL_KINDS[rng.gen_range(0..oracle::ALL_KINDS.len())];
    set_key(
        &mut doc,
        &["machine", "mshr", "kind"],
        Json::Str(kind.to_string()),
    );
    // Keep per-bank entries a power of two for quadratic probing.
    let per_bank = [4usize, 8, 16, 32][rng.gen_range(0..4usize)];
    set_key(
        &mut doc,
        &["machine", "mshr", "total_entries"],
        Json::Num((per_bank * base.config.memory.mcs as usize) as f64),
    );
    if rng.gen_range(0u32..4) == 0 {
        set_key(
            &mut doc,
            &["machine", "mshr", "dynamic"],
            Json::Obj(vec![
                ("sample_cycles".into(), Json::Num(500.0)),
                ("apply_cycles".into(), Json::Num(4_000.0)),
                (
                    "divisors".into(),
                    Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Num(4.0)]),
                ),
            ]),
        );
    }
    set_key(
        &mut doc,
        &["machine", "memory", "row_buffer_entries"],
        Json::Num(rng.gen_range(1u32..5) as f64),
    );
    set_key(
        &mut doc,
        &["machine", "memory", "page_policy"],
        Json::Str(if rng.gen::<bool>() { "open" } else { "closed" }.into()),
    );
    set_key(
        &mut doc,
        &["machine", "memory", "smart_refresh"],
        Json::Bool(rng.gen::<bool>()),
    );
    set_key(
        &mut doc,
        &["machine", "memory", "refresh_ms"],
        match rng.gen_range(0u32..3) {
            0 => Json::Num(64.0),
            1 => Json::Num(32.0),
            _ => Json::Null,
        },
    );
    set_key(
        &mut doc,
        &["machine", "l2", "prefetch"],
        Json::Bool(rng.gen::<bool>()),
    );

    let cfg = Scenario::from_str(&doc.pretty())
        .expect("scenario mutated within schema bounds must reparse")
        .config;

    let mixes = Mix::all();
    let mix = &mixes[rng.gen_range(0..mixes.len())];

    let mut run = RunConfig::quick();
    run.warmup_cycles = rng.gen_range(1_000u64..4_000);
    run.measure_cycles = rng.gen_range(6_000u64..20_000);
    run.seed = rng.gen::<u64>();

    FuzzCase {
        seed,
        cfg,
        mix: mix.name,
        run,
    }
}

/// Flattened metric tree minus the skip meta-counters, which describe how
/// the run was executed rather than what the machine did.
fn machine_metrics(result: &RunResult) -> Vec<(String, f64)> {
    result
        .stats
        .flatten()
        .into_iter()
        .filter(|(name, _)| name != "ticked_cycles" && name != "skipped_cycles")
        .collect()
}

/// Runs every check against `case`.
///
/// # Errors
///
/// Returns the first [`FuzzFailure`] detected.
#[must_use = "Ok means the case passed; dropping the result hides failures"]
pub fn run_case(case: &FuzzCase) -> Result<(), FuzzFailure> {
    // 1. Differential MSHR oracle on the sampled organization.
    let params = StreamParams {
        entries: case.cfg.mshr_entries_per_bank().max(1),
        ops: 300,
        tuner: case.cfg.mshr.dynamic.is_some(),
        ..StreamParams::default()
    };
    oracle::drive_stream(case.cfg.mshr.kind, case.seed, &params)
        .map_err(|d| FuzzFailure::Oracle(d.to_string()))?;

    let mix = Mix::by_name(case.mix)
        .ok_or_else(|| FuzzFailure::Config(format!("unknown mix {}", case.mix)))?;
    let traced = case.run.with_trace(TraceConfig {
        dram_cmds: true,
        ..TraceConfig::off()
    });

    // 2. Fast-forward versus tick-by-tick bit identity.
    let fast = run_mix(&case.cfg, mix, &traced).map_err(|e| FuzzFailure::Config(e.to_string()))?;
    let slow = run_mix(&case.cfg, mix, &traced.tick_by_tick())
        .map_err(|e| FuzzFailure::Config(e.to_string()))?;
    if fast.committed != slow.committed {
        return Err(FuzzFailure::FastForward(format!(
            "committed {:?} vs {:?}",
            fast.committed, slow.committed
        )));
    }
    if fast.per_core_ipc != slow.per_core_ipc || fast.hmipc != slow.hmipc {
        return Err(FuzzFailure::FastForward("IPC differs".into()));
    }
    if fast.trace != slow.trace {
        return Err(FuzzFailure::FastForward("trace streams differ".into()));
    }
    let fast_metrics = machine_metrics(&fast);
    let slow_metrics = machine_metrics(&slow);
    if fast_metrics != slow_metrics {
        let diff = fast_metrics
            .iter()
            .zip(&slow_metrics)
            .find(|(a, b)| a != b)
            .map(|(a, b)| format!("{} = {} vs {}", a.0, a.1, b.1))
            .unwrap_or_else(|| "metric sets differ in size".into());
        return Err(FuzzFailure::FastForward(diff));
    }

    // 3. DRAM protocol over the traced command streams.
    let violations =
        protocol::check_run(&case.cfg, &fast).map_err(|e| FuzzFailure::Config(e.to_string()))?;
    if !violations.is_empty() {
        return Err(FuzzFailure::Protocol {
            count: violations.len(),
            first: violations.iter().take(5).map(|v| v.to_string()).collect(),
        });
    }
    Ok(())
}

/// A named simplifying transformation used by the shrinker.
type ShrinkOp = (&'static str, fn(&mut FuzzCase));

/// The fixed, ordered shrink vocabulary. Names are part of the repro
/// artifact format, so keep them stable.
const SHRINK_OPS: &[ShrinkOp] = &[
    ("short-window", |c| {
        c.run.warmup_cycles = 1_000;
        c.run.measure_cycles = 6_000;
    }),
    ("no-dynamic-mshr", |c| c.cfg.mshr.dynamic = None),
    ("cam-mshr", |c| c.cfg.mshr.kind = MshrKind::Cam),
    ("small-mshr", |c| {
        c.cfg.mshr.total_entries = 4 * c.cfg.memory.mcs as usize;
    }),
    ("single-row-buffer", |c| c.cfg.memory.row_buffer_entries = 1),
    ("no-smart-refresh", |c| c.cfg.memory.smart_refresh = false),
    ("no-refresh", |c| {
        c.cfg.memory.refresh = RefreshConfig::DISABLED
    }),
    ("open-page", |c| c.cfg.memory.page_policy = PagePolicy::Open),
    ("no-prefetch", |c| c.cfg.l2_prefetch = false),
    ("mix-m1", |c| c.mix = "M1"),
];

/// Shrinks a failing case: applies each transformation in order, keeping
/// it iff the case still fails with the same [`FuzzFailure::class`].
/// Returns the minimal case and the names of the transformations kept.
pub fn shrink(case: &FuzzCase, failure: &FuzzFailure) -> (FuzzCase, Vec<&'static str>) {
    let class = failure.class();
    shrink_with(case, |c| {
        run_case(c).err().is_some_and(|f| f.class() == class)
    })
}

/// Shrinking engine with an arbitrary failure predicate (separated for
/// testability: tests can shrink against synthetic predicates without a
/// real failure in the simulator).
pub fn shrink_with(
    case: &FuzzCase,
    still_fails: impl Fn(&FuzzCase) -> bool,
) -> (FuzzCase, Vec<&'static str>) {
    let mut current = case.clone();
    let mut applied = Vec::new();
    for (name, op) in SHRINK_OPS {
        let mut candidate = current.clone();
        op(&mut candidate);
        if candidate == current {
            continue; // already minimal in this dimension
        }
        if still_fails(&candidate) {
            current = candidate;
            applied.push(*name);
        }
    }
    (current, applied)
}

/// Schema tag of the repro artifact format.
pub const REPRO_SCHEMA: &str = "stacksim-simcheck-repro/v1";

/// A replayable failure artifact: everything needed to regenerate the
/// exact failing case is the seed plus the kept shrink transformations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Repro {
    /// Generator seed.
    pub seed: u64,
    /// Shrink transformations to re-apply, in order.
    pub shrink_ops: Vec<String>,
    /// Rendered failure, for humans reading the artifact.
    pub failure: String,
}

impl Repro {
    /// Renders the artifact as JSON. The seed is carried as a string so
    /// the full `u64` range survives the f64 number representation.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(REPRO_SCHEMA.into())),
            ("seed".into(), Json::Str(self.seed.to_string())),
            (
                "shrink_ops".into(),
                Json::Arr(
                    self.shrink_ops
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            ("failure".into(), Json::Str(self.failure.clone())),
        ])
    }

    /// Parses an artifact produced by [`Repro::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    #[must_use = "the parsed repro or the parse error"]
    pub fn from_json(v: &Json) -> Result<Repro, String> {
        let schema = v
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema")?;
        if schema != REPRO_SCHEMA {
            return Err(format!("unsupported schema {schema:?}"));
        }
        let seed = v
            .get("seed")
            .and_then(Json::as_str)
            .ok_or("missing seed")?
            .parse::<u64>()
            .map_err(|e| format!("bad seed: {e}"))?;
        let shrink_ops = v
            .get("shrink_ops")
            .and_then(Json::as_arr)
            .ok_or("missing shrink_ops")?
            .iter()
            .map(|s| s.as_str().map(String::from).ok_or("non-string shrink op"))
            .collect::<Result<Vec<_>, _>>()?;
        let failure = v
            .get("failure")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        Ok(Repro {
            seed,
            shrink_ops,
            failure,
        })
    }
}

/// Regenerates the concrete failing case an artifact describes.
///
/// # Errors
///
/// Returns the name of any shrink transformation this build no longer
/// knows (artifact written by an incompatible version).
#[must_use = "the rebuilt case or the reason the repro is stale"]
pub fn materialize(repro: &Repro) -> Result<FuzzCase, String> {
    let mut case = generate(repro.seed);
    for name in &repro.shrink_ops {
        let (_, op) = SHRINK_OPS
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| format!("unknown shrink op {name:?}"))?;
        op(&mut case);
    }
    Ok(case)
}

/// Re-runs an artifact's case.
///
/// # Errors
///
/// Returns the [`FuzzFailure`] if the case still fails (i.e. the bug it
/// recorded is still present), or a [`FuzzFailure::Config`] wrapping the
/// materialization error for incompatible artifacts.
#[must_use = "Ok means the repro passed; dropping the result hides failures"]
pub fn replay(repro: &Repro) -> Result<(), FuzzFailure> {
    let case = materialize(repro).map_err(FuzzFailure::Config)?;
    run_case(&case)
}

/// Fuzzes one seed end to end: generate, check, shrink, package.
/// Returns `None` when the seed passes (the healthy outcome).
pub fn fuzz_one(seed: u64) -> Option<Repro> {
    let case = generate(seed);
    let failure = run_case(&case).err()?;
    let (shrunk, ops) = shrink(&case, &failure);
    // Report the failure of the *shrunk* case (same class, usually a
    // shorter message); fall back to the original if shrinking somehow
    // repaired it.
    let failure = run_case(&shrunk).err().unwrap_or(failure);
    Some(Repro {
        seed,
        shrink_ops: ops.iter().map(|s| s.to_string()).collect(),
        failure: failure.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..32 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            a.cfg
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed} generated invalid config: {e}"));
            assert!(Mix::by_name(a.mix).is_some(), "seed {seed}: bad mix");
        }
    }

    #[test]
    fn generation_covers_the_space() {
        let cases: Vec<FuzzCase> = (0..64).map(generate).collect();
        let kinds: std::collections::HashSet<_> = cases.iter().map(|c| c.cfg.mshr.kind).collect();
        assert!(kinds.len() >= 4, "only {kinds:?} sampled");
        assert!(cases
            .iter()
            .any(|c| c.cfg.memory.page_policy == PagePolicy::Closed));
        assert!(cases
            .iter()
            .any(|c| c.cfg.memory.refresh.period_ms.is_none()));
        assert!(cases
            .iter()
            .any(|c| c.cfg.memory.refresh.period_ms.is_some()));
        assert!(cases.iter().any(|c| c.cfg.mshr.dynamic.is_some()));
        assert!(cases.iter().any(|c| c.cfg.memory.mcs > 1));
    }

    #[test]
    fn shrink_with_applies_every_failure_preserving_op() {
        let case = generate(11);
        let (minimal, applied) = shrink_with(&case, |_| true);
        // Everything that can simplify did.
        assert_eq!(minimal.cfg.mshr.kind, MshrKind::Cam);
        assert_eq!(minimal.cfg.memory.page_policy, PagePolicy::Open);
        assert_eq!(minimal.cfg.memory.refresh.period_ms, None);
        assert_eq!(minimal.mix, "M1");
        assert_eq!(minimal.run.measure_cycles, 6_000);
        assert!(!applied.is_empty(), "{applied:?}");
        // And a predicate that never holds keeps the case untouched.
        let (same, none) = shrink_with(&case, |_| false);
        assert_eq!(same, case);
        assert!(none.is_empty());
    }

    #[test]
    fn repro_json_round_trips() {
        let r = Repro {
            seed: u64::MAX,
            shrink_ops: vec!["cam-mshr".into(), "short-window".into()],
            failure: "42 protocol violations: …".into(),
        };
        let text = r.to_json().pretty();
        let parsed =
            Repro::from_json(&Json::parse(&text).expect("valid json")).expect("round trip");
        assert_eq!(parsed, r);
    }

    #[test]
    fn repro_rejects_foreign_artifacts() {
        let v = Json::parse(r#"{"schema":"other/v9","seed":"1"}"#).unwrap();
        assert!(Repro::from_json(&v).is_err());
        let v = Json::parse(
            r#"{"schema":"stacksim-simcheck-repro/v1","seed":"not-a-number","shrink_ops":[]}"#,
        )
        .unwrap();
        assert!(Repro::from_json(&v).is_err());
    }

    #[test]
    fn materialize_applies_recorded_ops() {
        let repro = Repro {
            seed: 5,
            shrink_ops: vec!["cam-mshr".into(), "no-refresh".into()],
            failure: String::new(),
        };
        let case = materialize(&repro).expect("known ops");
        assert_eq!(case.cfg.mshr.kind, MshrKind::Cam);
        assert_eq!(case.cfg.memory.refresh.period_ms, None);
        let bad = Repro {
            shrink_ops: vec!["warp-drive".into()],
            ..repro
        };
        assert!(materialize(&bad).is_err());
    }
}
