//! The workspace must lint clean: every determinism, panic-surface,
//! narrowing and metric-drift finding is either fixed or carries a
//! reasoned `simlint::allow` pragma. This is the same gate CI runs via
//! the `simlint` binary.

use std::path::Path;

use stacksim_simlint::{engine, Options};

#[test]
fn workspace_has_no_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/simlint sits two levels under the workspace root")
        .to_path_buf();
    let report = engine::scan(&root, &Options::default()).expect("workspace scan succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace must be simlint-clean (fix or pragma with a reason):\n{}",
        report.to_text()
    );
    // Sanity: the scan actually visited the workspace, and the pragma
    // budget only moves deliberately.
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}
