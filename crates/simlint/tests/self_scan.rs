//! The workspace must lint clean: every determinism, panic-surface,
//! narrowing, metric-drift, lock-discipline, hot-path-purity,
//! panic-inventory and pragma-hygiene finding is either fixed or
//! carries a reasoned `simlint::allow` pragma. This is the same gate CI
//! runs via the `simlint` binary.

use std::path::{Path, PathBuf};

use stacksim_simlint::{engine, Options};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/simlint sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_no_unsuppressed_findings() {
    let report =
        engine::scan(&workspace_root(), &Options::default()).expect("workspace scan succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace must be simlint-clean (fix or pragma with a reason):\n{}",
        report.to_text()
    );
    // Sanity: the scan actually visited the workspace, and the pragma
    // budget only moves deliberately.
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}

#[test]
fn workspace_call_graph_covers_every_source_file() {
    let report =
        engine::scan(&workspace_root(), &Options::default()).expect("workspace scan succeeds");
    let graph = &report.graph;
    assert!(graph.nodes > 500, "suspiciously small symbol index");
    assert!(graph.edges > graph.nodes, "call graph lost its edges");
    // A handful of scanned files are type/const-only modules with no
    // functions; everything else must contribute symbols. A big drop
    // here means the indexer has gone blind to whole files.
    assert!(
        graph.files_with_symbols <= report.files_scanned
            && graph.files_with_symbols * 10 >= report.files_scanned * 8,
        "call-graph file coverage collapsed: {} of {} files contributed symbols",
        graph.files_with_symbols,
        report.files_scanned
    );
}

#[test]
fn workspace_hot_roots_are_present() {
    let report =
        engine::scan(&workspace_root(), &Options::default()).expect("workspace scan succeeds");
    // The tick-loop entry points the H rules hang off. If one is
    // renamed, update wsrules::HOT_ROOTS in the same change — silently
    // losing a root would disable hot-path enforcement for its subtree.
    for root in [
        "core::System::tick",
        "core::System::mc_slice",
        "core::System::fast_forward_to",
        "cpu::Core::cycle",
        "memctrl::MemoryController::tick",
    ] {
        assert!(
            report.graph.roots.iter().any(|r| r == root),
            "hot root {root} not found; got {:?}",
            report.graph.roots
        );
    }
}
