//! Integration tests against the fixture workspace in
//! `tests/fixtures/ws/`: every rule fires exactly once on its injected
//! violation, every pragma'd twin is suppressed, the baseline file
//! suppresses its one entry, and the JSON report matches the checked-in
//! snapshot byte for byte.

use std::path::{Path, PathBuf};

use stacksim_simlint::{engine, Options};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn scan(opts: &Options) -> engine::Report {
    engine::scan(&fixture_root(), opts).expect("fixture scan succeeds")
}

#[test]
fn every_rule_fires_on_its_injected_violation() {
    let report = scan(&Options::default());
    let mut rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    rules.sort_unstable();
    assert_eq!(
        rules,
        [
            "D001", "D002", "D003", "M001", "M001", "M002", "N001", "P001", "P001", "P002", "P003",
            "P004", "X001"
        ],
        "unexpected finding set:\n{}",
        report.to_text()
    );
    // Each D/P/N violation has a pragma'd twin on the next line that
    // must be suppressed, and rule M001's pragma support is covered by
    // the workspace's own pragmas.
    assert_eq!(report.suppressed_by_pragma, 8);
    assert_eq!(report.suppressed_by_baseline, 0);
    assert_eq!(report.files_scanned, 2);
}

#[test]
fn kernel_rules_do_not_apply_outside_kernel_crates() {
    let report = scan(&Options::default());
    // util/src/lib.rs has an unwrap() but is not a kernel crate: its
    // only findings are metric-drift ones.
    assert!(report
        .findings
        .iter()
        .filter(|f| f.file == "crates/util/src/lib.rs")
        .all(|f| f.rule == "M001"));
}

#[test]
fn test_code_is_exempt_from_kernel_rules() {
    let report = scan(&Options::default());
    // The #[cfg(test)] module in the fixture repeats an unwrap and an
    // Instant::now(); neither may be flagged (lines 48-53).
    assert!(report
        .findings
        .iter()
        .filter(|f| f.file == "crates/dram/src/lib.rs")
        .all(|f| f.line < 47));
}

#[test]
fn malformed_pragma_is_flagged_and_does_not_suppress() {
    let report = scan(&Options::default());
    let on_line = |rule: &str| {
        report
            .findings
            .iter()
            .find(|f| f.rule == rule && f.file == "crates/dram/src/lib.rs" && f.line == 44)
    };
    assert!(
        on_line("X001").is_some(),
        "missing X001:\n{}",
        report.to_text()
    );
    assert!(
        on_line("P001").is_some(),
        "a reason-less pragma must not suppress:\n{}",
        report.to_text()
    );
}

#[test]
fn baseline_suppresses_exactly_its_entry() {
    let opts = Options {
        baseline: Some(fixture_root().join("baseline.txt")),
    };
    let report = scan(&opts);
    assert_eq!(report.suppressed_by_baseline, 1);
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.snippet.contains("baselined_metric")),
        "baselined finding still reported:\n{}",
        report.to_text()
    );
    // The other M001 finding is untouched.
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "M001" && f.snippet.contains("undocumented_metric")));
}

#[test]
fn json_report_matches_snapshot() {
    let report = scan(&Options::default());
    let expected = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/expected.json"),
    )
    .expect("snapshot file present");
    assert_eq!(
        report.to_json(),
        expected,
        "JSON report drifted from tests/fixtures/expected.json; \
         if the change is intentional, update the snapshot"
    );
}
