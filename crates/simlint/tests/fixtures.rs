//! Integration tests against the fixture workspace in
//! `tests/fixtures/ws/`: every rule fires exactly once on its injected
//! violation, every pragma'd twin is suppressed, the baseline file
//! suppresses its one entry, and the JSON report matches the checked-in
//! snapshot byte for byte.

use std::path::{Path, PathBuf};

use stacksim_simlint::{engine, Options};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn scan(opts: &Options) -> engine::Report {
    engine::scan(&fixture_root(), opts).expect("fixture scan succeeds")
}

#[test]
fn every_rule_fires_on_its_injected_violation() {
    let report = scan(&Options::default());
    let mut rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
    rules.sort_unstable();
    assert_eq!(
        rules,
        [
            "D001", "D002", "D003", "H001", "H002", "L001", "L001", "L002", "L003", "M001", "M001",
            "M002", "N001", "P001", "P001", "P002", "P003", "P004", "R001", "R002", "X001", "X002"
        ],
        "unexpected finding set:\n{}",
        report.to_text()
    );
    // Each violation has a pragma'd twin that must be suppressed (L001's
    // twin is a second lock pair, X002's an acknowledged stale pragma);
    // rule M001's pragma support is covered by the workspace's own
    // pragmas, and R002 has no twin — pragmas only live in Rust source.
    assert_eq!(report.suppressed_by_pragma, 16);
    assert_eq!(report.suppressed_by_baseline, 0);
    assert_eq!(report.files_scanned, 4);
}

#[test]
fn graph_summary_covers_the_fixture_workspace() {
    let report = scan(&Options::default());
    let graph = &report.graph;
    assert!(graph.nodes > 0 && graph.edges > 0);
    // lib.rs + hot.rs + locksvc contribute symbols; util does too.
    assert_eq!(graph.files_with_symbols, 4);
    assert!(
        graph.roots.iter().any(|r| r == "dram::System::tick"),
        "fixture tick root not found: {:?}",
        graph.roots
    );
}

#[test]
fn only_filter_restricts_the_report() {
    let report = scan(&Options::default());
    let locks: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule.starts_with('L'))
        .collect();
    assert_eq!(
        locks.len(),
        4,
        "L001 x2 + L002 + L003:\n{}",
        report.to_text()
    );
    assert!(locks.iter().all(|f| f.file == "crates/locksvc/src/lib.rs"));
}

#[test]
fn kernel_rules_do_not_apply_outside_kernel_crates() {
    let report = scan(&Options::default());
    // util/src/lib.rs has unwrap()s but is not a kernel crate: no D/P/N
    // findings there — only metric drift and the workspace-wide rule
    // families (panic inventory, pragma hygiene).
    assert!(report
        .findings
        .iter()
        .filter(|f| f.file == "crates/util/src/lib.rs")
        .all(|f| matches!(f.rule.as_str(), "M001" | "R001" | "X002")));
}

#[test]
fn test_code_is_exempt_from_kernel_rules() {
    let report = scan(&Options::default());
    // The #[cfg(test)] module in the fixture repeats an unwrap and an
    // Instant::now(); neither may be flagged (lines 48-53).
    assert!(report
        .findings
        .iter()
        .filter(|f| f.file == "crates/dram/src/lib.rs")
        .all(|f| f.line < 47));
}

#[test]
fn malformed_pragma_is_flagged_and_does_not_suppress() {
    let report = scan(&Options::default());
    let on_line = |rule: &str| {
        report
            .findings
            .iter()
            .find(|f| f.rule == rule && f.file == "crates/dram/src/lib.rs" && f.line == 44)
    };
    assert!(
        on_line("X001").is_some(),
        "missing X001:\n{}",
        report.to_text()
    );
    assert!(
        on_line("P001").is_some(),
        "a reason-less pragma must not suppress:\n{}",
        report.to_text()
    );
}

#[test]
fn baseline_suppresses_exactly_its_entry() {
    let opts = Options {
        baseline: Some(fixture_root().join("baseline.txt")),
    };
    let report = scan(&opts);
    assert_eq!(report.suppressed_by_baseline, 1);
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.snippet.contains("baselined_metric")),
        "baselined finding still reported:\n{}",
        report.to_text()
    );
    // The other M001 finding is untouched.
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "M001" && f.snippet.contains("undocumented_metric")));
}

#[test]
fn json_report_matches_snapshot() {
    let report = scan(&Options::default());
    let expected = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/expected.json"),
    )
    .expect("snapshot file present");
    assert_eq!(
        report.to_json(),
        expected,
        "JSON report drifted from tests/fixtures/expected.json; \
         if the change is intentional, update the snapshot"
    );
}
