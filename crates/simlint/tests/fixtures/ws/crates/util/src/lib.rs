//! Fixture non-kernel crate: D/P/N rules must not apply here, but
//! metric registrations still feed rule M. Never compiled.

pub fn report(sink: &mut MetricsSink) {
    let x: Option<u32> = None;
    let _ = x.unwrap();
    sink.counter("good_metric", 1);
    sink.counter("undocumented_metric", 1);
    sink.counter("baselined_metric", 1);
}
