//! Fixture non-kernel crate: D/P/N rules must not apply here, but
//! metric registrations still feed rule M, the panic inventory (rule R)
//! is workspace-wide, and pragma hygiene (X002) is checked everywhere.
//! Never compiled.

pub fn report(sink: &mut MetricsSink) {
    let x: Option<u32> = None;
    let _ = x.unwrap();
    sink.counter("good_metric", 1);
    sink.counter("undocumented_metric", 1);
    sink.counter("baselined_metric", 1);
}

pub fn undocumented_panic(x: Option<u32>) -> u32 {
    x.unwrap()
}

// simlint::allow(R001, reason = "fixture twin")
pub fn undocumented_panic_twin(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn stale_pragma(x: Option<u32>) -> u32 {
    x.map_or(0, |v| v) // simlint::allow(P001, reason = "stale: the unwrap this excused is gone")
}

pub fn stale_pragma_acknowledged(x: Option<u32>) -> u32 {
    // simlint::allow(P001, reason = "stale but kept") simlint::allow(X002, reason = "fixture twin")
    x.map_or(0, |v| v)
}
