//! Fixture lock-discipline crate: L001/L002/L003 violations, each with
//! a pragma-suppressed twin. Only lexed by simlint's integration tests;
//! never compiled.
use std::sync::Mutex;

static ALPHA: Mutex<u64> = Mutex::new(0);
static BETA: Mutex<u64> = Mutex::new(0);
static DELTA: Mutex<u64> = Mutex::new(0);
static EPSILON: Mutex<u64> = Mutex::new(0);
static LOG: Mutex<u64> = Mutex::new(0);
static QUIET: Mutex<u64> = Mutex::new(0);
static GAMMA: Mutex<u64> = Mutex::new(0);
static THETA: Mutex<u64> = Mutex::new(0);

pub fn ab_order() {
    let _a = ALPHA.lock();
    let _b = BETA.lock();
}

pub fn ba_order() {
    let _b = BETA.lock();
    let _a = ALPHA.lock();
}

pub fn cd_order() {
    let _c = DELTA.lock(); // simlint::allow(L001, reason = "fixture twin")
    let _d = EPSILON.lock();
}

pub fn dc_order() {
    let _d = EPSILON.lock(); // simlint::allow(L001, reason = "fixture twin")
    let _c = DELTA.lock();
}

pub fn log_under_lock(path: &str) {
    let _g = LOG.lock();
    let _text = fs::read_to_string(path);
}

pub fn quiet_under_lock(path: &str) {
    let _g = QUIET.lock(); // simlint::allow(L002, reason = "fixture twin")
    let _text = fs::read_to_string(path);
}

pub fn reacquires() {
    let _g = GAMMA.lock();
    gamma_helper();
}

fn gamma_helper() {
    let _g = GAMMA.lock();
}

pub fn reacquires_quietly() {
    let _g = THETA.lock(); // simlint::allow(L003, reason = "fixture twin")
    theta_helper();
}

fn theta_helper() {
    let _g = THETA.lock();
}

pub fn scoped_is_fine() {
    let guard = ALPHA.lock();
    drop(guard);
    let _b = BETA.lock();
}
