//! Fixture kernel crate: one injected violation per rule, each followed
//! by a pragma-suppressed twin. This file is only lexed by simlint's
//! integration tests; it is never compiled.
use std::collections::HashMap;

pub fn wall_clock() {
    let _t = Instant::now();
    let _u = Instant::now(); // simlint::allow(D001, reason = "fixture twin")
}

pub fn randomness() {
    let _r = rand::random();
    let _s = rand::random(); // simlint::allow(D002, reason = "fixture twin")
}

pub struct Table {
    pending: HashMap<u64, u64>,
}

impl Table {
    pub fn drain(&self) {
        let _a = self.pending.iter().count();
        let _b = self.pending.iter().count(); // simlint::allow(D003, reason = "fixture twin")
    }
}

pub fn panics(x: Option<u32>, xs: &[u32], i: usize) {
    let _a = x.unwrap();
    let _b = x.unwrap(); // simlint::allow(P001, reason = "fixture twin")
    let _c = x.expect("boom");
    let _d = x.expect("boom"); // simlint::allow(P002, reason = "fixture twin")
    panic!("boom");
    panic!("boom"); // simlint::allow(P003, reason = "fixture twin")
    let _e = xs[i + 1];
    let _f = xs[i + 1]; // simlint::allow(P004, reason = "fixture twin")
}

pub fn narrowing(cycle: u64) {
    let _lo = cycle as u32;
    let _hi = cycle as u32; // simlint::allow(N001, reason = "fixture twin")
}

pub fn malformed(x: Option<u32>) {
    let _g = x.unwrap(); // simlint::allow(P001)
}

#[cfg(test)]
mod tests {
    pub fn test_code_is_exempt(x: Option<u32>) {
        let _ = x.unwrap();
        let _t = Instant::now();
    }
}
