//! Fixture hot-path file: a `System::tick` root whose callee allocates
//! (H001) and clones (H002), each with a pragma-suppressed twin. Only
//! lexed by simlint's integration tests; never compiled.

pub struct System {
    buf: Vec<u64>,
}

impl System {
    pub fn tick(&mut self) {
        self.step();
    }

    fn step(&mut self) {
        let _v: Vec<u64> = Vec::new();
        let _w: Vec<u64> = Vec::new(); // simlint::allow(H001, reason = "fixture twin")
        let _c = self.buf.clone();
        let _d = self.buf.clone(); // simlint::allow(H002, reason = "fixture twin")
    }

    pub fn with_capacity(n: usize) -> System {
        System {
            buf: Vec::with_capacity(n),
        }
    }
}
