//! Workspace symbol index and conservative call graph.
//!
//! The per-file rules (D/P/N) see one token stream at a time; the L/H/R
//! rule families need to know what a *call* can reach anywhere in the
//! workspace: "does this guard-held region reach file I/O?", "is this
//! allocation reachable from `System::tick`?", "can this public API
//! transitively panic?". This module builds that view from the same
//! lexer token streams the rest of simlint uses — no external parser,
//! no type information, just names and braces.
//!
//! # Conservatism
//!
//! The graph is a deliberate *over*-approximation of the real call
//! graph (documented in `docs/LINTS.md`):
//!
//! * A method call `x.m(…)` edges to **every** method named `m` in the
//!   workspace, because the receiver's type is not known. Trait calls
//!   therefore edge to every implementation (the right answer) and
//!   unrelated same-named methods (the price).
//! * `self.m(…)` inside `impl T` edges only to `T::m` when `T` defines
//!   one — the common hot-path shape, resolved precisely.
//! * `Type::m(…)` edges to `Type`'s own `m`; an unmatched qualifier
//!   (module paths, std types) falls back to free functions named `m`.
//! * A bare call `m(…)` edges to every free function named `m`.
//! * Calls through function-typed values (closures, callbacks) produce
//!   no edges: the analysis cannot see through `dyn Fn`. Rules that
//!   depend on the graph treat such calls as silent, which is the one
//!   *under*-approximation — noted in the docs.
//! * Panic propagation ([`CallGraph::can_panic`]) follows only the
//!   *precisely*-resolved subset of edges (self calls on the own type,
//!   `Type::m`, free calls). Method-name fan-out is excluded there:
//!   with it, every `.push(…)` on a plain `Vec` would mark its caller
//!   as panicking "via `EventWheel::push`", and the generated
//!   `docs/PANICS.md` would claim every public API panics. The lock
//!   and hot-path rules keep the full over-approximate edge set.
//! * A lock guard is assumed held from its acquisition to the end of
//!   the enclosing **function** (not block), unless `drop(binding)`
//!   releases it earlier. Narrow scopes are expressed by hoisting the
//!   lock into a small helper function, which is better code anyway.
//!
//! # Examples
//!
//! ```
//! use stacksim_simlint::callgraph::CallGraph;
//! use stacksim_simlint::source::SourceFile;
//!
//! let file = SourceFile::parse(
//!     "crates/core/src/x.rs",
//!     "pub fn a() { b(); }\nfn b() { x.unwrap(); }\n",
//! );
//! let graph = CallGraph::build(&[("core".to_string(), &file)]);
//! let a = graph.find(None, "a")[0];
//! assert!(graph.can_panic()[a], "a reaches b's unwrap");
//! ```

use std::collections::HashMap;

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Recv {
    /// Bare call `m(…)` — resolves to free functions named `m`.
    Free,
    /// `self.m(…)` — resolves to the enclosing impl type's own `m`.
    SelfRecv,
    /// `Q::m(…)` — resolves to `Q`'s method `m`, else free `m`.
    Qualified(String),
    /// `expr.m(…)` — resolves to every method named `m`.
    Method,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// How the callee is addressed.
    pub recv: Recv,
    /// 1-based source line.
    pub line: u32,
}

/// The kind of a direct panic site (mirrors rules P001–P004).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` / `.unwrap_err()` / `.unwrap_unchecked()` (P001).
    Unwrap,
    /// `.expect()` / `.expect_err()` (P002).
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` (P003).
    Macro,
    /// Slice index with unguarded arithmetic (P004).
    Index,
}

impl PanicKind {
    /// Human-readable label for inventory rows and messages.
    pub const fn label(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "unwrap",
            PanicKind::Expect => "expect",
            PanicKind::Macro => "panic macro",
            PanicKind::Index => "computed index",
        }
    }
}

/// One lock acquisition (`recv.lock()`, or `.read()`/`.write()` on a
/// declared lock name).
#[derive(Clone, Debug)]
pub struct LockSite {
    /// Canonical lock identity: the receiver name as written
    /// (`memo`, `slots`, `PROGRESS`, …).
    pub lock: String,
    /// 1-based source line of the acquisition.
    pub line: u32,
}

/// A guard-held region: the lock, where it was taken, and what happens
/// while it is (assumed) held.
#[derive(Clone, Debug)]
pub struct LockHold {
    /// The held lock's identity.
    pub lock: String,
    /// Acquisition line.
    pub line: u32,
    /// Indices into the owning function's `calls` made inside the region.
    pub calls: Vec<usize>,
    /// Indices into `io` sites inside the region.
    pub io: Vec<usize>,
    /// Indices into `locks` acquired inside the region (the *other*
    /// acquisitions; the hold's own site is excluded).
    pub locks: Vec<usize>,
}

/// Everything a function body tells the workspace rules.
#[derive(Clone, Debug, Default)]
pub struct FnFacts {
    /// Every call site, in source order.
    pub calls: Vec<CallSite>,
    /// Heap-allocation sites: `(what, line)` — `Vec::new`, `vec!`,
    /// `format!`, `.to_string()`, `.collect()`, `Box::new`, ….
    pub allocs: Vec<(String, u32)>,
    /// `.clone()` call sites.
    pub clones: Vec<u32>,
    /// Direct panic sites (P001–P004 shapes).
    pub panics: Vec<(PanicKind, u32)>,
    /// File / network I/O sites: `(what, line)` — `fs::*`, `TcpStream`,
    /// `flush`, `read_exact`, `write!`, ….
    pub io: Vec<(String, u32)>,
    /// Lock acquisitions.
    pub locks: Vec<LockSite>,
    /// Guard-held regions.
    pub holds: Vec<LockHold>,
}

/// One indexed function or method definition.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Crate directory name (`core`, `dram`, …).
    pub crate_name: String,
    /// The `impl`/`trait` type the definition sits in, if any.
    pub owner: Option<String>,
    /// Function name.
    pub name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the definition is `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// Body-derived facts.
    pub facts: FnFacts,
}

impl FnDef {
    /// `crate::Owner::name` or `crate::name` — the identity used in the
    /// panic inventory and diagnostics.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{}::{}::{}", self.crate_name, owner, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// The workspace call graph: indexed definitions plus resolved edges.
pub struct CallGraph {
    /// All indexed functions, in deterministic (file, line) order.
    pub fns: Vec<FnDef>,
    /// `edges[i]` = indices of the functions `fns[i]` may call.
    pub edges: Vec<Vec<usize>>,
    /// The precisely-resolved subset of `edges` (no method-name fan-out,
    /// no trait fallback) — what panic propagation follows.
    pub precise_edges: Vec<Vec<usize>>,
    /// Files that contributed at least one definition.
    pub files_with_symbols: usize,
    by_name: HashMap<String, Vec<usize>>,
}

/// Identifiers that look like calls but are control flow.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "move", "unsafe", "else",
    "impl", "where", "as", "ref", "mut", "use", "pub", "mod", "struct", "enum", "trait", "const",
    "static", "type", "dyn", "box", "Some", "Ok", "Err", "None",
];

/// Method names that allocate on the heap.
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "collect"];

/// `Type::method` pairs that allocate.
const ALLOC_QUALIFIED: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Method names that perform stream I/O wherever they appear — unless
/// the workspace defines a method of the same name (a domain `flush`
/// on a row buffer is not a disk write; the call edge covers it).
const IO_METHODS: &[&str] = &[
    "flush",
    "read_exact",
    "read_line",
    "read_to_end",
    "write_all",
    "sync_all",
    "sync_data",
];

/// Std panic-method names: these never create `expr.m(…)` call edges
/// (they would wire every `.lock().expect(…)` into any user type that
/// happens to define an `expect`). User-defined methods with these
/// names are still resolved through `self.`/`Type::` calls.
const PANIC_METHODS: &[&str] = &[
    "unwrap",
    "unwrap_err",
    "unwrap_unchecked",
    "expect",
    "expect_err",
];

/// Qualifier path heads whose associated calls are file/network I/O.
const IO_QUALIFIERS: &[&str] = &["fs", "File", "TcpStream", "TcpListener", "OpenOptions"];

/// Macros that write to a stream (also reach `fmt` impls — a documented
/// over-approximation).
const IO_MACROS: &[&str] = &["write", "writeln"];

impl CallGraph {
    /// Indexes every `(crate_name, file)` pair and resolves call edges.
    pub fn build(files: &[(String, &SourceFile)]) -> CallGraph {
        // Pass 0: workspace-wide set of declared lock names — statics,
        // fields and lets typed `Mutex`/`RwLock`, plus functions whose
        // return type mentions one (the `memo()`-style accessors).
        let mut lock_names: Vec<String> = Vec::new();
        let mut user_fn_names: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (_, file) in files {
            collect_lock_names(file, &mut lock_names);
            collect_fn_names(file, &mut user_fn_names);
        }

        let mut fns: Vec<FnDef> = Vec::new();
        let mut files_with_symbols = 0usize;
        for (crate_name, file) in files {
            let before = fns.len();
            index_file(crate_name, file, &lock_names, &user_fn_names, &mut fns);
            if fns.len() > before {
                files_with_symbols += 1;
            }
        }

        // Name → definition indices, split by free/method at resolution
        // time via `owner`.
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }

        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(fns.len());
        let mut precise_edges: Vec<Vec<usize>> = Vec::with_capacity(fns.len());
        for f in &fns {
            let mut out: Vec<usize> = Vec::new();
            let mut precise: Vec<usize> = Vec::new();
            for call in &f.facts.calls {
                resolve(&fns, &by_name, f, call, &mut out);
                resolve_precise(&fns, &by_name, f, call, &mut precise);
            }
            out.sort_unstable();
            out.dedup();
            edges.push(out);
            precise.sort_unstable();
            precise.dedup();
            precise_edges.push(precise);
        }

        CallGraph {
            fns,
            edges,
            precise_edges,
            files_with_symbols,
            by_name,
        }
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Definition indices matching `(owner, name)`; `None` owner matches
    /// free functions only.
    pub fn find(&self, owner: Option<&str>, name: &str) -> Vec<usize> {
        match self.by_name.get(name) {
            None => Vec::new(),
            Some(ids) => ids
                .iter()
                .copied()
                .filter(|&i| self.fns[i].owner.as_deref() == owner)
                .collect(),
        }
    }

    /// The indices reachable from `roots` (roots included), cycle-safe.
    pub fn reachable(&self, roots: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.fns.len()];
        let mut stack: Vec<usize> = roots.to_vec();
        for &r in roots {
            seen[r] = true;
        }
        while let Some(i) = stack.pop() {
            for &j in &self.edges[i] {
                if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        seen
    }

    /// The callees reachable from one call site of `caller` (used by the
    /// lock rules to chase a single held-region call).
    pub fn resolve_call(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let mut out = Vec::new();
        resolve(&self.fns, &self.by_name, &self.fns[caller], call, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `can_panic[i]`: whether `fns[i]` has a direct panic site or can
    /// reach one through the *precisely*-resolved edges (see the module
    /// docs for why method fan-out is excluded here). Fixpoint,
    /// cycle-safe.
    pub fn can_panic(&self) -> Vec<bool> {
        let mut can: Vec<bool> = self
            .fns
            .iter()
            .map(|f| !f.facts.panics.is_empty())
            .collect();
        loop {
            let mut grew = false;
            for i in 0..self.fns.len() {
                if !can[i] && self.precise_edges[i].iter().any(|&j| can[j]) {
                    can[i] = true;
                    grew = true;
                }
            }
            if !grew {
                return can;
            }
        }
    }

    /// Why `fns[i]` can panic: its first direct site's kind, or the
    /// lexicographically smallest panicking callee — deterministic, so
    /// the generated inventory is stable.
    pub fn panic_via(&self, i: usize, can: &[bool]) -> String {
        if let Some((kind, _)) = self.fns[i].facts.panics.first() {
            return kind.label().to_string();
        }
        let mut best: Option<String> = None;
        for &j in &self.precise_edges[i] {
            if can[j] {
                let q = self.fns[j].qualified();
                if best.as_ref().is_none_or(|b| q < *b) {
                    best = Some(q);
                }
            }
        }
        match best {
            Some(q) => format!("via `{q}`"),
            None => "direct".to_string(),
        }
    }
}

/// Resolves one call site to definition indices, per the conservatism
/// contract in the module docs.
fn resolve(
    fns: &[FnDef],
    by_name: &HashMap<String, Vec<usize>>,
    caller: &FnDef,
    call: &CallSite,
    out: &mut Vec<usize>,
) {
    let Some(ids) = by_name.get(&call.name) else {
        return;
    };
    match &call.recv {
        Recv::SelfRecv => {
            let owner = caller.owner.as_deref();
            let own: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&i| owner.is_some() && fns[i].owner.as_deref() == owner)
                .collect();
            if own.is_empty() {
                // `self.m()` with no `m` on the enclosing type: a trait
                // method from elsewhere — fall back to every method.
                out.extend(ids.iter().copied().filter(|&i| fns[i].owner.is_some()));
            } else {
                out.extend(own);
            }
        }
        Recv::Qualified(q) => {
            // `Self::m(…)` names the enclosing impl type.
            let q = if q == "Self" {
                caller.owner.clone().unwrap_or_else(|| q.clone())
            } else {
                q.clone()
            };
            let owned: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&i| fns[i].owner.as_deref() == Some(q.as_str()))
                .collect();
            if owned.is_empty() {
                // Module-qualified call (`runner::run_mix`): free fns.
                out.extend(ids.iter().copied().filter(|&i| fns[i].owner.is_none()));
            } else {
                out.extend(owned);
            }
        }
        Recv::Method => {
            if !PANIC_METHODS.contains(&call.name.as_str()) {
                out.extend(ids.iter().copied().filter(|&i| fns[i].owner.is_some()));
            }
        }
        Recv::Free => out.extend(ids.iter().copied().filter(|&i| fns[i].owner.is_none())),
    }
}

/// Like [`resolve`], but keeps only structurally-certain resolutions:
/// `self.m()` on the own type, `Type::m` with a matching owner,
/// module-qualified and bare free calls. `x.m(…)` fan-out and the
/// `self.m()` trait fallback resolve to nothing — the subset panic
/// propagation follows.
fn resolve_precise(
    fns: &[FnDef],
    by_name: &HashMap<String, Vec<usize>>,
    caller: &FnDef,
    call: &CallSite,
    out: &mut Vec<usize>,
) {
    let Some(ids) = by_name.get(&call.name) else {
        return;
    };
    match &call.recv {
        Recv::SelfRecv => {
            let owner = caller.owner.as_deref();
            out.extend(
                ids.iter()
                    .copied()
                    .filter(|&i| owner.is_some() && fns[i].owner.as_deref() == owner),
            );
        }
        Recv::Qualified(q) => {
            let q = if q == "Self" {
                caller.owner.clone().unwrap_or_else(|| q.clone())
            } else {
                q.clone()
            };
            let owned: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&i| fns[i].owner.as_deref() == Some(q.as_str()))
                .collect();
            if owned.is_empty() {
                out.extend(ids.iter().copied().filter(|&i| fns[i].owner.is_none()));
            } else {
                out.extend(owned);
            }
        }
        Recv::Method => {}
        Recv::Free => out.extend(ids.iter().copied().filter(|&i| fns[i].owner.is_none())),
    }
}

/// Collects declared lock names from one file: `name : … Mutex/RwLock …`
/// declarations and `fn name(…) -> … Mutex/RwLock …` accessors.
fn collect_lock_names(file: &SourceFile, out: &mut Vec<String>) {
    let toks: Vec<&Tok> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name : … Mutex …` up to a declaration boundary.
        if toks.get(i + 1).is_some_and(|n| n.text == ":")
            && toks.get(i + 2).is_none_or(|n| n.text != ":")
        {
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < toks.len() && j < i + 40 {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "," | ";" | ")" | "{" | "=" if angle <= 0 => break,
                    "Mutex" | "RwLock" => {
                        push_unique(out, &t.text);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // `fn name(…) -> … Mutex …` — the accessor-fn shape.
        if t.text == "fn" {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    let mut k = i + 2;
                    while k < toks.len() && k < i + 60 {
                        match toks[k].text.as_str() {
                            "{" | ";" => break,
                            "Mutex" | "RwLock" => {
                                push_unique(out, &name_tok.text);
                                break;
                            }
                            _ => k += 1,
                        }
                    }
                }
            }
        }
    }
}

fn push_unique(names: &mut Vec<String>, name: &str) {
    if !names.iter().any(|n| n == name) {
        names.push(name.to_string());
    }
}

/// Collects every defined function name (used to damp the I/O method
/// heuristics: a name the workspace defines is a call, not stream I/O).
fn collect_fn_names(file: &SourceFile, out: &mut std::collections::HashSet<String>) {
    let toks: Vec<&Tok> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "fn" {
            if let Some(name) = toks.get(i + 1) {
                if name.kind == TokKind::Ident {
                    out.insert(name.text.clone());
                }
            }
        }
    }
}

/// Indexes one file: finds `impl`/`trait` context, `fn` definitions and
/// their body ranges, then extracts facts from each body.
fn index_file(
    crate_name: &str,
    file: &SourceFile,
    lock_names: &[String],
    user_fn_names: &std::collections::HashSet<String>,
    out: &mut Vec<FnDef>,
) {
    let toks: Vec<&Tok> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    // Owner context per token index: the innermost `impl Type` / `trait
    // Type` block. A simple stack over brace depth.
    let mut owners: Vec<Option<String>> = vec![None; toks.len()];
    {
        let mut stack: Vec<(usize, Option<String>)> = Vec::new(); // (depth at open, owner)
        let mut depth = 0usize;
        let mut i = 0usize;
        while i < toks.len() {
            match toks[i].text.as_str() {
                "impl" | "trait" if toks[i].kind == TokKind::Ident && item_position(&toks, i) => {
                    if let Some((owner, open)) = impl_owner(&toks, i) {
                        stack.push((depth, Some(owner)));
                        depth += 1;
                        i = open + 1;
                        continue;
                    }
                }
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if let Some((d, _)) = stack.last() {
                        if *d == depth {
                            stack.pop();
                        }
                    }
                }
                _ => {}
            }
            owners[i] = stack.last().and_then(|(_, o)| o.clone());
            i += 1;
        }
    }

    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" {
            let Some(name_tok) = toks.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokKind::Ident || file.is_test_line(toks[i].line) {
                i += 1;
                continue;
            }
            let is_pub = is_pub_before(&toks, i);
            // Find the body: the first `{` before a `;` at signature level.
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut body: Option<(usize, usize)> = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ";" if angle <= 0 => break, // trait method declaration
                    "{" if angle <= 0 => {
                        body = Some((j, matching_close(&toks, j)));
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let owner = owners[i].clone();
            let facts = match body {
                Some((open, close)) => {
                    extract_facts(file, &toks, open + 1, close, lock_names, user_fn_names)
                }
                None => FnFacts::default(),
            };
            out.push(FnDef {
                crate_name: crate_name.to_string(),
                owner,
                name: name_tok.text.clone(),
                file: file.path.clone(),
                line: toks[i].line,
                is_pub,
                facts,
            });
            // Continue *inside* the body so nested fns are indexed too
            // (their facts are also attributed to the outer fn — a
            // conservative double count).
            i += 2;
        } else {
            i += 1;
        }
    }
}

/// Whether the `impl`/`trait` keyword at `kw` sits at item position
/// (start of file, or after `}` / `;` / `{` / `]` / `unsafe`) rather
/// than in a type position such as `-> impl Iterator`.
fn item_position(toks: &[&Tok], kw: usize) -> bool {
    match kw.checked_sub(1).map(|p| toks[p].text.as_str()) {
        None => true,
        Some("}" | ";" | "{" | "]" | "unsafe" | "pub") => true,
        Some(_) => false,
    }
}

/// Parses the owner type of an `impl`/`trait` header starting at `kw`;
/// returns `(owner, index_of_open_brace)`.
fn impl_owner(toks: &[&Tok], kw: usize) -> Option<(String, usize)> {
    let mut j = kw + 1;
    let mut idents: Vec<(usize, String)> = Vec::new();
    let mut angle = 0i32;
    let mut for_at: Option<usize> = None;
    while j < toks.len() {
        let t = toks[j];
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "{" if angle <= 0 => {
                // `impl Trait for Type` → Type; `impl Type` → last path
                // segment before `{` (skipping generic params).
                let owner = match for_at {
                    Some(at) => idents.iter().find(|(k, _)| *k > at).map(|(_, s)| s.clone()),
                    None => idents.last().map(|(_, s)| s.clone()),
                };
                return owner.map(|o| (o, j));
            }
            ";" if angle <= 0 => return None,
            "for" if angle <= 0 => for_at = Some(j),
            "where" if angle <= 0 => {
                // Generic bounds may mention types; owner is already
                // determined by what came before.
                let owner = match for_at {
                    Some(at) => idents.iter().find(|(k, _)| *k > at).map(|(_, s)| s.clone()),
                    None => idents.last().map(|(_, s)| s.clone()),
                };
                // Skip ahead to the opening brace.
                let mut k = j;
                while k < toks.len() && toks[k].text != "{" {
                    k += 1;
                }
                return owner.map(|o| (o, k));
            }
            _ if t.kind == TokKind::Ident && angle <= 0 && t.text != "dyn" => {
                idents.push((j, t.text.clone()));
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Whether the tokens immediately before a `fn` mark it `pub` (and not
/// `pub(crate)` / `pub(super)` / `pub(in …)`).
fn is_pub_before(toks: &[&Tok], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    let mut steps = 0;
    while j > 0 && steps < 8 {
        j -= 1;
        steps += 1;
        match toks[j].text.as_str() {
            "const" | "unsafe" | "async" | "extern" => continue,
            ")" => {
                // Possibly the close of `pub(crate)`: walk to its open.
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match toks[j].text.as_str() {
                        ")" => depth += 1,
                        "(" => depth -= 1,
                        _ => {}
                    }
                }
                if j > 0 && toks[j - 1].text == "pub" {
                    return false; // pub(crate)-style restricted visibility
                }
                return false;
            }
            "pub" => return true,
            _ => {
                if toks[j].kind == TokKind::Str {
                    continue; // extern "C"
                }
                return false;
            }
        }
    }
    false
}

/// Index of the `}` matching the `{` at `open`.
fn matching_close(toks: &[&Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len() - 1
}

/// Scans a body token range `[start, end)` into [`FnFacts`].
fn extract_facts(
    file: &SourceFile,
    toks: &[&Tok],
    start: usize,
    end: usize,
    lock_names: &[String],
    user_fn_names: &std::collections::HashSet<String>,
) -> FnFacts {
    let mut facts = FnFacts::default();
    // (lock, acq_token_idx, binding, open) — open holds awaiting region end.
    let mut open_holds: Vec<(String, usize, Option<String>, LockHold)> = Vec::new();

    let mut i = start;
    while i < end {
        let t = toks[i];
        if t.kind != TokKind::Ident {
            // P004-shaped computed index.
            if t.text == "[" && !file.is_test_line(t.line) {
                if let Some(kind) = computed_index(toks, i, end) {
                    facts.panics.push((kind, t.line));
                }
            }
            i += 1;
            continue;
        }
        let name = t.text.as_str();
        let next_open = toks.get(i + 1).is_some_and(|n| n.text == "(");
        let next_bang = toks.get(i + 1).is_some_and(|n| n.text == "!");
        let after_dot = i > 0 && toks[i - 1].text == ".";
        let qualified = i >= 2 && toks[i - 1].text == ":" && toks[i - 2].text == ":";

        // Macros.
        if next_bang {
            if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented") {
                facts.panics.push((PanicKind::Macro, t.line));
            }
            if ALLOC_MACROS.contains(&name) {
                facts.allocs.push((format!("{name}!"), t.line));
            }
            if IO_MACROS.contains(&name) {
                push_io(&mut facts, &mut open_holds, format!("{name}!"), t.line);
            }
            i += 2;
            continue;
        }

        if !next_open || NOT_CALLS.contains(&name) {
            i += 1;
            continue;
        }

        // Panic methods.
        match name {
            "unwrap" | "unwrap_err" | "unwrap_unchecked" if after_dot => {
                facts.panics.push((PanicKind::Unwrap, t.line));
            }
            "expect" | "expect_err" if after_dot => {
                facts.panics.push((PanicKind::Expect, t.line));
            }
            _ => {}
        }

        // Allocation shapes.
        if after_dot && ALLOC_METHODS.contains(&name) {
            facts.allocs.push((format!(".{name}()"), t.line));
        }
        if after_dot && name == "clone" {
            facts.clones.push(t.line);
        }
        let mut qual_head: Option<String> = None;
        if qualified {
            // Walk the `::`-path back to its head segment.
            let mut k = i;
            let mut head: Option<&str> = None;
            while k >= 2 && toks[k - 1].text == ":" && toks[k - 2].text == ":" {
                // Skip turbofish closes between segments.
                let mut p = k - 2;
                if p > 0 && toks[p - 1].text == ">" {
                    let mut angle = 1i32;
                    while p > 0 && angle > 0 {
                        p -= 1;
                        match toks[p].text.as_str() {
                            ">" => angle += 1,
                            "<" => angle -= 1,
                            _ => {}
                        }
                    }
                }
                if p == 0 || toks[p - 1].kind != TokKind::Ident {
                    break;
                }
                head = Some(&toks[p - 1].text);
                k = p - 1;
                if k < 2 {
                    break;
                }
            }
            qual_head = head.map(str::to_string);
        }
        if let Some(q) = &qual_head {
            if ALLOC_QUALIFIED.contains(&(q.as_str(), name)) {
                facts.allocs.push((format!("{q}::{name}"), t.line));
            }
            if IO_QUALIFIERS.contains(&q.as_str()) {
                push_io(&mut facts, &mut open_holds, format!("{q}::{name}"), t.line);
            }
        }
        if after_dot && IO_METHODS.contains(&name) && !user_fn_names.contains(name) {
            push_io(&mut facts, &mut open_holds, format!(".{name}()"), t.line);
        }

        // Lock acquisition: `.lock()` always; `.read()`/`.write()` only
        // on declared lock names.
        if after_dot && matches!(name, "lock" | "read" | "write") {
            if let Some(recv) = receiver_name(toks, i - 1) {
                // `stdout().lock()`-style stream locks are not mutexes.
                let is_lock = !matches!(recv.as_str(), "stdout" | "stderr" | "stdin" | "io")
                    && (name == "lock" || lock_names.iter().any(|l| l == &recv));
                if is_lock {
                    let site = LockSite {
                        lock: recv.clone(),
                        line: t.line,
                    };
                    let site_idx = facts.locks.len();
                    // Record inside every already-open hold.
                    for (_, _, _, hold) in open_holds.iter_mut() {
                        hold.locks.push(site_idx);
                    }
                    facts.locks.push(site);
                    let binding = statement_binding(toks, start, i);
                    open_holds.push((
                        recv.clone(),
                        i,
                        binding,
                        LockHold {
                            lock: recv,
                            line: t.line,
                            calls: Vec::new(),
                            io: Vec::new(),
                            locks: Vec::new(),
                        },
                    ));
                    i += 1;
                    continue;
                }
            }
        }

        // `drop(binding)` closes a hold early.
        if name == "drop" && !after_dot {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Ident && toks.get(i + 3).is_some_and(|n| n.text == ")") {
                    if let Some(pos) = open_holds
                        .iter()
                        .position(|(_, _, b, _)| b.as_deref() == Some(arg.text.as_str()))
                    {
                        let (_, _, _, hold) = open_holds.remove(pos);
                        facts.holds.push(hold);
                    }
                }
            }
        }

        // A call site.
        let recv = if after_dot {
            // `self.m(` — only when the receiver really is bare `self`.
            let self_recv = i >= 2
                && toks[i - 2].text == "self"
                && (i < 3 || toks[i - 3].text != ".")
                && (i < 3 || toks[i - 3].text != ":");
            if self_recv {
                Recv::SelfRecv
            } else {
                Recv::Method
            }
        } else if let Some(q) = qual_head {
            Recv::Qualified(q)
        } else {
            Recv::Free
        };
        let call_idx = facts.calls.len();
        facts.calls.push(CallSite {
            name: name.to_string(),
            recv,
            line: t.line,
        });
        for (_, _, _, hold) in open_holds.iter_mut() {
            hold.calls.push(call_idx);
        }
        i += 1;
    }

    // Holds not closed by drop() extend to the end of the function.
    for (_, _, _, hold) in open_holds {
        facts.holds.push(hold);
    }
    facts
        .holds
        .sort_by_key(|h| (h.line, h.lock.clone(), h.calls.len()));
    facts
}

/// Records an I/O site and attributes it to every open hold.
fn push_io(
    facts: &mut FnFacts,
    open_holds: &mut [(String, usize, Option<String>, LockHold)],
    what: String,
    line: u32,
) {
    let idx = facts.io.len();
    for (_, _, _, hold) in open_holds.iter_mut() {
        hold.io.push(idx);
    }
    facts.io.push((what, line));
}

/// The receiver identity of a method call whose `.` sits at `dot`: the
/// root of the postfix chain, skipping a leading `self` —
/// `memo().lock()` → `memo`, `self.slots[i].lock()` → `slots`,
/// `MEMO.get_or_init(init).lock()` → `MEMO`. `None` when the receiver
/// is not nameable (a literal, a parenthesized expression, …).
fn receiver_name(toks: &[&Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut j = dot as isize - 1;
    let mut segments: Vec<String> = Vec::new();
    loop {
        // One postfix segment: an optional call/index group, then a name.
        while j >= 0 && matches!(toks[j as usize].text.as_str(), ")" | "]") {
            let close = toks[j as usize].text.clone();
            let open = if close == ")" { "(" } else { "[" };
            let mut depth = 1usize;
            while j > 0 && depth > 0 {
                j -= 1;
                if toks[j as usize].text == close {
                    depth += 1;
                } else if toks[j as usize].text == open {
                    depth -= 1;
                }
            }
            j -= 1; // before the open bracket
        }
        if j < 0 || toks[j as usize].kind != TokKind::Ident {
            break;
        }
        segments.push(toks[j as usize].text.clone());
        j -= 1;
        if j < 0 || toks[j as usize].text != "." {
            break;
        }
        j -= 1; // before the `.`, on to the next segment
    }
    // `segments` is right-to-left; the root is last. Skip a bare `self`.
    segments.retain(|s| s != "self");
    segments.last().cloned()
}

/// The `let`-binding name of the statement containing token `at`, if the
/// statement is `let [mut] NAME = …`.
fn statement_binding(toks: &[&Tok], body_start: usize, at: usize) -> Option<String> {
    // Walk back to the statement start.
    let mut j = at;
    while j > body_start {
        match toks[j - 1].text.as_str() {
            ";" | "{" | "}" => break,
            _ => j -= 1,
        }
    }
    if toks.get(j).is_some_and(|t| t.text == "let") {
        let mut k = j + 1;
        if toks.get(k).is_some_and(|t| t.text == "mut") {
            k += 1;
        }
        let name = toks.get(k)?;
        if name.kind == TokKind::Ident && toks.get(k + 1).is_some_and(|t| t.text == "=") {
            return Some(name.text.clone());
        }
    }
    None
}

/// P004-shaped computed slice index starting at the `[` at `i`; mirrors
/// `rules::rule_p_index` (ranges, `%`, `& mask` recognized as guards).
fn computed_index(toks: &[&Tok], i: usize, end: usize) -> Option<PanicKind> {
    let indexing = i > 0
        && (toks[i - 1].kind == TokKind::Ident
            || toks[i - 1].text == ")"
            || toks[i - 1].text == "]");
    if !indexing {
        return None;
    }
    let mut depth = 0usize;
    let mut j = i;
    let mut idx_toks: Vec<&Tok> = Vec::new();
    while j < end {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if j > i {
            idx_toks.push(toks[j]);
        }
        j += 1;
    }
    if idx_toks.len() <= 1 {
        return None;
    }
    let has_range = idx_toks
        .windows(2)
        .any(|w| w[0].text == "." && w[1].text == ".");
    let has_modulo = idx_toks.iter().any(|t| t.text == "%");
    let has_mask = idx_toks.iter().skip(1).any(|t| t.text == "&");
    let has_arith = idx_toks
        .iter()
        .any(|t| matches!(t.text.as_str(), "+" | "-" | "*"));
    (has_arith && !has_range && !has_modulo && !has_mask).then_some(PanicKind::Index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(srcs: &[(&str, &str, &str)]) -> CallGraph {
        let files: Vec<(String, SourceFile)> = srcs
            .iter()
            .map(|(krate, path, src)| (krate.to_string(), SourceFile::parse(path, src)))
            .collect();
        let refs: Vec<(String, &SourceFile)> = files.iter().map(|(k, f)| (k.clone(), f)).collect();
        CallGraph::build(&refs)
    }

    #[test]
    fn impl_owner_and_self_calls_resolve_precisely() {
        let g = graph(&[(
            "core",
            "crates/core/src/x.rs",
            "impl System { pub fn tick(&mut self) { self.step(); } fn step(&mut self) {} }\n\
             impl Other { fn step(&mut self) { x.unwrap(); } }\n",
        )]);
        let tick = g.find(Some("System"), "tick")[0];
        let sys_step = g.find(Some("System"), "step")[0];
        let other_step = g.find(Some("Other"), "step")[0];
        assert_eq!(g.edges[tick], vec![sys_step]);
        let can = g.can_panic();
        assert!(!can[tick], "self-call must not leak to Other::step");
        assert!(can[other_step]);
    }

    #[test]
    fn method_calls_edge_to_every_same_named_method() {
        let g = graph(&[(
            "core",
            "crates/core/src/x.rs",
            "impl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\n\
             fn drive(h: &dyn H) { h.go(); }\n",
        )]);
        let drive = g.find(None, "drive")[0];
        assert_eq!(g.edges[drive].len(), 2, "conservative trait dispatch");
    }

    #[test]
    fn cycles_terminate() {
        let g = graph(&[(
            "core",
            "crates/core/src/x.rs",
            "fn a() { b(); }\nfn b() { a(); panic!(\"x\"); }\n",
        )]);
        let a = g.find(None, "a")[0];
        let reach = g.reachable(&[a]);
        assert!(reach.iter().all(|&r| r));
        assert!(g.can_panic()[a]);
    }

    #[test]
    fn lock_holds_capture_calls_and_io() {
        let g = graph(&[(
            "core",
            "crates/core/src/x.rs",
            "static MEMO: Mutex<u32> = Mutex::new(0);\n\
             fn memo() -> &'static Mutex<u32> { &MEMO }\n\
             fn f() { let g = memo().lock(); fs::write(\"p\", \"x\"); helper(); }\n\
             fn helper() {}\n",
        )]);
        let f = g.find(None, "f")[0];
        let facts = &g.fns[f].facts;
        assert_eq!(facts.holds.len(), 1);
        let hold = &facts.holds[0];
        assert_eq!(hold.lock, "memo");
        assert_eq!(hold.io.len(), 1);
        assert!(hold.calls.iter().any(|&c| facts.calls[c].name == "helper"));
    }

    #[test]
    fn drop_ends_a_hold() {
        let g = graph(&[(
            "core",
            "crates/core/src/x.rs",
            "fn f() { let g = m.lock(); drop(g); fs::write(\"p\", \"x\"); }\n",
        )]);
        let f = g.find(None, "f")[0];
        let hold = &g.fns[f].facts.holds[0];
        assert!(hold.io.is_empty(), "io after drop() is not under the guard");
    }

    #[test]
    fn pub_detection_excludes_pub_crate() {
        let g = graph(&[(
            "core",
            "crates/core/src/x.rs",
            "pub fn a() {}\npub(crate) fn b() {}\nfn c() {}\n",
        )]);
        assert!(g.fns[g.find(None, "a")[0]].is_pub);
        assert!(!g.fns[g.find(None, "b")[0]].is_pub);
        assert!(!g.fns[g.find(None, "c")[0]].is_pub);
    }

    #[test]
    fn trait_for_impl_owner_is_the_type() {
        let g = graph(&[(
            "store",
            "crates/store/src/lib.rs",
            "impl ResultStore for Store { fn load(&self) { self.load_result(); } }\n\
             impl Store { fn load_result(&self) { fs::read_to_string(\"x\"); } }\n",
        )]);
        let load = g.find(Some("Store"), "load")[0];
        let inner = g.find(Some("Store"), "load_result")[0];
        assert_eq!(g.edges[load], vec![inner]);
        assert_eq!(g.fns[inner].facts.io.len(), 1);
    }

    #[test]
    fn cross_crate_free_calls_resolve() {
        let g = graph(&[
            (
                "core",
                "crates/core/src/a.rs",
                "pub fn caller() { helper(); }\n",
            ),
            (
                "dram",
                "crates/dram/src/b.rs",
                "pub fn helper() { x.unwrap(); }\n",
            ),
        ]);
        let caller = g.find(None, "caller")[0];
        assert!(g.can_panic()[caller], "panic propagates across crates");
    }

    #[test]
    fn qualified_names_are_stable() {
        let g = graph(&[(
            "core",
            "crates/core/src/x.rs",
            "impl System { pub fn tick(&mut self) {} }\npub fn free() {}\n",
        )]);
        let names: Vec<String> = g.fns.iter().map(FnDef::qualified).collect();
        assert!(names.contains(&"core::System::tick".to_string()));
        assert!(names.contains(&"core::free".to_string()));
    }
}
