//! The baseline (allowlist) file: intentional exceptions that live outside
//! the source, each with a mandatory reason.
//!
//! Format — one entry per line, pipe-separated, `#` starts a comment:
//!
//! ```text
//! # rule | file | key | reason
//! M002 | docs/METRICS.md | cmd_act | synthesized per command kind at trace time
//! ```
//!
//! `key` is the *trimmed source text* of the offending line (for doc
//! findings, the documented name), so entries survive unrelated line-number
//! drift but go stale — and start failing — when the flagged code itself
//! changes.

use crate::rules::Finding;

/// One baseline entry.
#[derive(Clone, Debug)]
pub struct BaselineEntry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Workspace-relative file the finding is in.
    pub file: String,
    /// Trimmed source-line text (or documented name) to match.
    pub key: String,
    /// Why the exception is intentional.
    pub reason: String,
}

/// A parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses the pipe-separated baseline format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line (wrong field
    /// count or empty reason).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').map(str::trim).collect();
            let [rule, file, key, reason] = fields.as_slice() else {
                return Err(format!(
                    "baseline line {}: expected 'rule | file | key | reason'",
                    i + 1
                ));
            };
            if rule.is_empty() || file.is_empty() || key.is_empty() || reason.is_empty() {
                return Err(format!(
                    "baseline line {}: empty field (a reason is mandatory)",
                    i + 1
                ));
            }
            entries.push(BaselineEntry {
                rule: rule.to_string(),
                file: file.to_string(),
                key: key.to_string(),
                reason: reason.to_string(),
            });
        }
        Ok(Baseline { entries })
    }

    /// Whether a finding is covered by some entry.
    pub fn matches(&self, f: &Finding) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == f.rule && e.file == f.file && e.key == f.snippet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, snippet: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 10,
            rule: rule.to_string(),
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn parse_and_match() {
        let b = Baseline::parse(
            "# comment\n\nP001 | crates/core/src/x.rs | x.unwrap(); | legacy site\n",
        )
        .expect("valid baseline parses");
        assert!(b.matches(&finding("P001", "crates/core/src/x.rs", "x.unwrap();")));
        assert!(!b.matches(&finding("P001", "crates/core/src/x.rs", "y.unwrap();")));
        assert!(!b.matches(&finding("P002", "crates/core/src/x.rs", "x.unwrap();")));
    }

    #[test]
    fn reason_is_mandatory() {
        assert!(Baseline::parse("P001 | f.rs | key |  \n").is_err());
        assert!(Baseline::parse("P001 | f.rs | key\n").is_err());
    }
}
