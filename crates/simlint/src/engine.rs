//! The workspace scanner: file walking, rule dispatch, call-graph
//! construction, pragma and baseline suppression, and report assembly.
//!
//! The scan runs in phases: (1) every `crates/*/src/**/*.rs` file is
//! lexed and the per-file rules (D/P/N, M001, X001) produce *raw*
//! findings; (2) a workspace call graph is built over all files and the
//! L/H/R rules add theirs; (3) pragma suppression runs centrally over
//! the combined set, which also lets X002 flag pragmas that no longer
//! suppress anything; (4) the baseline filters what remains.

use std::fs;
use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::callgraph::CallGraph;
use crate::docs::MetricDocs;
use crate::rules::{self, Finding, Registration, KERNEL_CRATES};
use crate::scenario_docs;
use crate::source::SourceFile;
use crate::wsrules::{self, WsContext};

/// Scanner options.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// Baseline file path; `None` uses `<root>/simlint.baseline` if present.
    pub baseline: Option<PathBuf>,
}

/// Call-graph coverage numbers for the report's `graph` section.
#[derive(Clone, Debug, Default)]
pub struct GraphSummary {
    /// Indexed function definitions.
    pub nodes: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Files that contributed at least one definition.
    pub files_with_symbols: usize,
    /// Qualified names of the hot-path roots found in this workspace.
    pub roots: Vec<String>,
}

/// Result of a workspace scan.
#[derive(Clone, Debug)]
pub struct Report {
    /// Workspace root the scan ran against.
    pub root: PathBuf,
    /// Number of Rust files scanned.
    pub files_scanned: usize,
    /// Call-graph coverage.
    pub graph: GraphSummary,
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by in-source pragmas.
    pub suppressed_by_pragma: usize,
    /// Findings suppressed by baseline entries.
    pub suppressed_by_baseline: usize,
}

impl Report {
    /// Renders findings in `file:line:rule-id: message` form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "simlint: {} file(s) scanned, call graph {} node(s) / {} edge(s), {} finding(s), {} suppressed by pragma, {} by baseline\n",
            self.files_scanned,
            self.graph.nodes,
            self.graph.edges,
            self.findings.len(),
            self.suppressed_by_pragma,
            self.suppressed_by_baseline
        ));
        out
    }

    /// Renders the report as machine-readable JSON
    /// (`stacksim-simlint/2` schema).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"stacksim-simlint/2\",\n");
        out.push_str(&format!(
            "  \"files_scanned\": {},\n  \"suppressed_by_pragma\": {},\n  \"suppressed_by_baseline\": {},\n",
            self.files_scanned, self.suppressed_by_pragma, self.suppressed_by_baseline
        ));
        out.push_str(&format!(
            "  \"graph\": {{\"nodes\": {}, \"edges\": {}, \"files_with_symbols\": {}, \"roots\": [",
            self.graph.nodes, self.graph.edges, self.graph.files_with_symbols
        ));
        for (i, r) in self.graph.roots.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(r));
        }
        out.push_str("]},\n");
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"snippet\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(&f.rule),
                json_str(&f.message),
                json_str(&f.snippet)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Locates the workspace root by walking up from `start` until a
/// `Cargo.toml` containing `[workspace]` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Scans the workspace under `root` and returns the report.
///
/// Walks `crates/*/src/**/*.rs` in sorted order (so output is
/// deterministic across platforms), applies the D/P/N rules to kernel
/// crates, builds the call graph over every file and runs the L/H/R
/// workspace rules, cross-checks metric registrations against
/// `docs/METRICS.md` and the panic inventory against `docs/PANICS.md`,
/// then filters findings through in-source pragmas (flagging stale ones
/// as X002) and the baseline file.
///
/// # Errors
///
/// Returns a message when the root has no `crates/` directory or a file
/// cannot be read.
pub fn scan(root: &Path, opts: &Options) -> Result<Report, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!("no crates/ directory under {}", root.display()));
    }
    let baseline = load_baseline(root, opts)?;
    let docs_path = root.join("docs/METRICS.md");
    let docs = match fs::read_to_string(&docs_path) {
        Ok(text) => Some(MetricDocs::parse(&text)),
        Err(_) => None,
    };

    // Phase 1: parse every file and run the per-file rules, keeping the
    // findings raw (unsuppressed) and the parsed files for the graph.
    let mut raw: Vec<Finding> = Vec::new();
    let mut files: Vec<(String, SourceFile)> = Vec::new();
    let mut regs: Vec<Registration> = Vec::new();

    for crate_dir in sorted_dirs(&crates_dir)? {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        let kernel = KERNEL_CRATES.contains(&crate_name.as_str());
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        for path in rust_files(&src)? {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            let file = SourceFile::parse(&rel, &text);
            raw.extend(rules::check_file(&file, kernel, &mut regs));
            files.push((crate_name.clone(), file));
        }
    }
    let files_scanned = files.len();

    // Rule M001: registered metrics must be documented.
    if let Some(docs) = &docs {
        for r in &regs {
            if !docs.documents(&r.name) {
                let snippet = files
                    .iter()
                    .find(|(_, f)| f.path == r.file)
                    .map(|(_, f)| f.line_text(r.line).to_string())
                    .unwrap_or_default();
                raw.push(Finding {
                    file: r.file.clone(),
                    line: r.line,
                    rule: "M001".to_string(),
                    message: format!(
                        "metric `{}` is registered here but not documented in docs/METRICS.md",
                        r.name
                    ),
                    snippet,
                });
            }
        }
    }

    // Phase 2: the call graph and the workspace rules.
    let file_refs: Vec<(String, &SourceFile)> = files.iter().map(|(k, f)| (k.clone(), f)).collect();
    let graph = CallGraph::build(&file_refs);
    let panic_docs = fs::read_to_string(root.join("docs/PANICS.md")).ok();
    let ctx = WsContext {
        graph: &graph,
        files: &files,
        panic_docs: panic_docs.as_deref(),
        panic_docs_path: "docs/PANICS.md",
    };
    let roots = wsrules::check_workspace(&ctx, &mut raw);

    // Rule M002: documented inventory entries must exist in code.
    if let Some(docs) = &docs {
        let doc_rel = docs_path
            .strip_prefix(root)
            .unwrap_or(&docs_path)
            .to_string_lossy()
            .replace('\\', "/");
        for entry in &docs.inventory {
            let l = rules::leaf(&entry.name);
            if !regs.iter().any(|r| rules::leaf(&r.name) == l) {
                raw.push(Finding {
                    file: doc_rel.clone(),
                    line: entry.line,
                    rule: "M002".to_string(),
                    message: format!(
                        "metric `{}` is documented in the inventory but never registered in code",
                        entry.name
                    ),
                    snippet: entry.name.clone(),
                });
            }
        }
    }

    // Rules S001/S002: the scenario-schema reference must match the
    // parser's ACCEPTED_KEYS table in both directions.
    check_scenario_docs(root, &mut raw);

    // Phase 3: central pragma suppression, then X002 for pragmas that
    // suppressed nothing.
    let mut suppressed_by_pragma = 0usize;
    let mut findings: Vec<Finding> = Vec::new();
    for f in &raw {
        let suppressed = f.rule != "X001"
            && files
                .iter()
                .find(|(_, sf)| sf.path == f.file)
                .is_some_and(|(_, sf)| sf.pragma_for(f.line, &f.rule).is_some());
        if suppressed {
            suppressed_by_pragma += 1;
        } else {
            findings.push(f.clone());
        }
    }
    for (_, sf) in &files {
        for p in &sf.pragmas {
            // Malformed pragmas are X001's job; X002 pragmas never go
            // stale themselves (they'd recurse).
            if p.reason.is_empty() || p.rule == "X002" {
                continue;
            }
            let used = raw
                .iter()
                .any(|f| f.rule == p.rule && f.file == sf.path && f.line == p.target_line);
            if used {
                continue;
            }
            // An X002 pragma on the stale pragma's own line (trailing
            // form) or targeting the same code line (standalone form)
            // acknowledges the stale pragma deliberately.
            let acknowledged = sf.pragmas.iter().any(|q| {
                q.rule == "X002"
                    && !q.reason.is_empty()
                    && (q.line == p.line || q.target_line == p.target_line)
            });
            if acknowledged {
                suppressed_by_pragma += 1;
                continue;
            }
            findings.push(Finding {
                file: sf.path.clone(),
                line: p.line,
                rule: "X002".to_string(),
                message: format!(
                    "simlint::allow({}) pragma suppresses nothing: {} does not fire on its target line — remove the stale pragma",
                    p.rule, p.rule
                ),
                snippet: sf.line_text(p.line).to_string(),
            });
        }
    }

    // Phase 4: baseline suppression, then deterministic ordering.
    let mut suppressed_by_baseline = 0usize;
    findings.retain(|f| {
        if baseline.matches(f) {
            suppressed_by_baseline += 1;
            false
        } else {
            true
        }
    });
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });

    Ok(Report {
        root: root.to_path_buf(),
        files_scanned,
        graph: GraphSummary {
            nodes: graph.fns.len(),
            edges: graph.edge_count(),
            files_with_symbols: graph.files_with_symbols,
            roots,
        },
        findings,
        suppressed_by_pragma,
        suppressed_by_baseline,
    })
}

/// Rules S001/S002: cross-checks `docs/SCENARIOS.md` against the scenario
/// parser's `ACCEPTED_KEYS`. Skipped silently when the workspace has no
/// scenario parser (non-stacksim trees); a parser without the document is
/// one S001 finding per accepted key.
fn check_scenario_docs(root: &Path, findings: &mut Vec<Finding>) {
    let parser_rel = "crates/core/src/scenario.rs";
    let Ok(source) = fs::read_to_string(root.join(parser_rel)) else {
        return;
    };
    let accepted = scenario_docs::parser_keys(&source);
    if accepted.is_empty() {
        return;
    }
    let doc_rel = "docs/SCENARIOS.md";
    let documented = match fs::read_to_string(root.join(doc_rel)) {
        Ok(text) => scenario_docs::documented_keys(&text),
        Err(_) => Vec::new(),
    };
    for key in &accepted {
        if !documented.iter().any(|d| d.key == key.key) {
            findings.push(Finding {
                file: parser_rel.to_string(),
                line: key.line,
                rule: "S001".to_string(),
                message: format!(
                    "scenario key `{}` is accepted by the parser but has no table row in {doc_rel}",
                    key.key
                ),
                snippet: key.key.clone(),
            });
        }
    }
    for key in &documented {
        if !accepted.iter().any(|a| a.key == key.key) {
            findings.push(Finding {
                file: doc_rel.to_string(),
                line: key.line,
                rule: "S002".to_string(),
                message: format!(
                    "scenario key `{}` is documented but not in the parser's ACCEPTED_KEYS",
                    key.key
                ),
                snippet: key.key.clone(),
            });
        }
    }
}

fn load_baseline(root: &Path, opts: &Options) -> Result<Baseline, String> {
    let path = match &opts.baseline {
        Some(p) => p.clone(),
        None => {
            let default = root.join("simlint.baseline");
            if !default.is_file() {
                return Ok(Baseline::default());
            }
            default
        }
    };
    let text =
        fs::read_to_string(&path).map_err(|e| format!("read baseline {}: {e}", path.display()))?;
    Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Immediate subdirectories of `dir`, sorted by name.
fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut dirs = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        if entry.path().is_dir() {
            dirs.push(entry.path());
        }
    }
    dirs.sort();
    Ok(dirs)
}

/// All `.rs` files under `dir`, recursively, sorted.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    collect_rust_files(dir, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("plain"), "\"plain\"");
    }
}
