//! Parsing of `docs/METRICS.md` for the metric/doc drift rules (M family).
//!
//! Two views of the document are extracted:
//!
//! * **All documented names** — every backtick-quoted, metric-shaped token
//!   anywhere in the file, with `prefix.{a,b}` brace groups expanded. A
//!   metric registered in code is "documented" (rule `M001` passes) when
//!   its leaf name appears in this set, so prose mentions count.
//! * **Inventory names** — names from the first cell of metric-inventory
//!   table rows (tables whose header's first column is `metric`). Each of
//!   these must have a literal registration site in code (rule `M002`),
//!   so the inventory tables can't document metrics that no longer exist.

use crate::rules::leaf;

/// A metric name documented in an inventory table row.
#[derive(Clone, Debug)]
pub struct InventoryEntry {
    /// The name as documented (may be dotted, e.g. `ranks.refreshes`).
    pub name: String,
    /// 1-based line in the docs file.
    pub line: u32,
}

/// Parsed view of `docs/METRICS.md`.
#[derive(Clone, Debug, Default)]
pub struct MetricDocs {
    /// Leaf names of every documented metric-shaped token.
    pub documented_leaves: Vec<String>,
    /// Names listed in metric-inventory tables.
    pub inventory: Vec<InventoryEntry>,
}

impl MetricDocs {
    /// Parses the markdown text.
    pub fn parse(text: &str) -> MetricDocs {
        let mut docs = MetricDocs::default();
        let mut in_metric_table = false;
        for (i, raw_line) in text.lines().enumerate() {
            let line_no = (i + 1) as u32;
            let line = raw_line.trim();
            for name in backtick_names(line) {
                let l = leaf(&name).to_string();
                if !docs.documented_leaves.contains(&l) {
                    docs.documented_leaves.push(l);
                }
            }
            // Track metric-inventory tables: header row `| metric | … |`.
            if line.starts_with('|') {
                let first_cell = line
                    .trim_start_matches('|')
                    .split('|')
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_ascii_lowercase();
                if first_cell == "metric" {
                    in_metric_table = true;
                    continue;
                }
                if first_cell.chars().all(|c| c == '-' || c == ':') {
                    continue; // separator row keeps table state
                }
                if in_metric_table {
                    let cell = line.trim_start_matches('|').split('|').next().unwrap_or("");
                    for name in backtick_names(cell) {
                        docs.inventory.push(InventoryEntry {
                            name,
                            line: line_no,
                        });
                    }
                }
            } else {
                in_metric_table = false;
            }
        }
        docs
    }

    /// Whether a registered metric name is documented (by leaf).
    pub fn documents(&self, name: &str) -> bool {
        self.documented_leaves.iter().any(|d| d == leaf(name))
    }
}

/// Extracts metric-shaped names from the backtick spans of one line,
/// expanding `prefix.{a,b}` brace groups and splitting comma lists.
fn backtick_names(line: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        let span = &after[..close];
        for part in expand_braces(span) {
            for token in part.split(',') {
                let token = token.trim();
                if !token.is_empty()
                    && token
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                    && token.chars().any(|c| c.is_ascii_lowercase())
                {
                    names.push(token.to_string());
                }
            }
        }
        rest = &after[close + 1..];
    }
    names
}

/// Expands one level of `prefix.{a,b,c}` into `prefix.a`, `prefix.b`, …
fn expand_braces(span: &str) -> Vec<String> {
    let (Some(open), Some(close)) = (span.find('{'), span.rfind('}')) else {
        return vec![span.to_string()];
    };
    if close < open {
        return vec![span.to_string()];
    }
    let prefix = &span[..open];
    let suffix = &span[close + 1..];
    span[open + 1..close]
        .split(',')
        .map(|mid| format!("{prefix}{}{suffix}", mid.trim()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# METRICS

Prose mentions `dram_energy.{activate_nj,read_nj}` and `RunConfig::quick`.

| metric | kind |
|---|---|
| `cycles` | counter |
| `dl1.hits`, `dl1.misses` | gauge |

Not a table line.
";

    #[test]
    fn brace_expansion_and_prose_names() {
        let docs = MetricDocs::parse(SAMPLE);
        assert!(docs.documents("activate_nj"));
        assert!(docs.documents("dram_energy.read_nj"));
        assert!(!docs.documents("total_nj"));
    }

    #[test]
    fn inventory_rows_are_collected_with_lines() {
        let docs = MetricDocs::parse(SAMPLE);
        let names: Vec<&str> = docs.inventory.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["cycles", "dl1.hits", "dl1.misses"]);
        assert_eq!(docs.inventory[0].line, 7);
    }

    #[test]
    fn non_metric_backticks_are_ignored() {
        let docs = MetricDocs::parse("uses `MetricsSink::to_json` and `--tol`");
        assert!(docs.documented_leaves.is_empty());
    }
}
