//! A lightweight Rust lexer: just enough token structure for the rule
//! engine, with no external parser dependencies.
//!
//! The lexer classifies source text into identifiers, literals, punctuation
//! and comments, tracking the 1-based line of every token. It understands
//! the Rust lexical forms that would otherwise confuse a text-level scan:
//! nested block comments, raw strings (`r#"…"#`), byte strings, char
//! literals vs. lifetimes, and doc comments (which are comments here, so
//! doctest code is never mistaken for library code).
//!
//! # Examples
//!
//! ```
//! use stacksim_simlint::lexer::{lex, TokKind};
//!
//! let toks = lex("let x = m.keys(); // simlint::allow(D003, reason = \"why\")");
//! assert_eq!(toks[0].text, "let");
//! assert!(toks.iter().any(|t| t.kind == TokKind::LineComment));
//! ```

/// The lexical class of a [`Tok`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `as`, `HashMap`, …).
    Ident,
    /// A lifetime such as `'a`.
    Lifetime,
    /// Numeric literal.
    Num,
    /// String literal (plain, raw, or byte); `text` keeps the quotes.
    Str,
    /// Character literal.
    Char,
    /// A single punctuation character.
    Punct,
    /// `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment, possibly nested.
    BlockComment,
}

/// One lexed token with its source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is a comment of either form.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lexes `src` into a token stream. Unterminated literals or comments are
/// tolerated (the remainder of the file becomes one token) so the rule
/// engine degrades gracefully on mid-edit files.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, String::new()),
                'r' | 'b' if self.raw_or_byte_prefix() => self.prefixed_literal(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphanumeric() => self.ident(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    /// Plain (escaped) string body; `text` already holds any prefix.
    fn string(&mut self, line: u32, mut text: String) {
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// Whether the current `r`/`b` starts a raw/byte string or raw ident
    /// rather than a plain identifier.
    fn raw_or_byte_prefix(&self) -> bool {
        match (self.peek(0), self.peek(1)) {
            (Some('r') | Some('b'), Some('"')) => true,
            (Some('r') | Some('b'), Some('#')) => true, // r#".."# / r#ident / b#?
            (Some('b'), Some('r')) => matches!(self.peek(2), Some('"') | Some('#')),
            (Some('b'), Some('\'')) => true, // byte char b'x'
            _ => false,
        }
    }

    fn prefixed_literal(&mut self, line: u32) {
        let mut prefix = String::new();
        while matches!(self.peek(0), Some('r') | Some('b')) {
            prefix.push(self.bump().unwrap_or('r'));
        }
        if self.peek(0) == Some('\'') {
            // byte char literal b'x'
            self.bump();
            let mut text = prefix;
            text.push('\'');
            while let Some(c) = self.bump() {
                text.push(c);
                if c == '\\' {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                } else if c == '\'' {
                    break;
                }
            }
            self.push(TokKind::Char, text, line);
            return;
        }
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) == Some('"') {
            // raw string r##"..."##
            let mut text = prefix;
            for _ in 0..hashes {
                text.push('#');
                self.bump();
            }
            text.push('"');
            self.bump();
            while let Some(c) = self.bump() {
                text.push(c);
                if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                    for _ in 0..hashes {
                        text.push('#');
                        self.bump();
                    }
                    break;
                }
            }
            self.push(TokKind::Str, text, line);
        } else if hashes > 0 && prefix == "r" {
            // raw identifier r#ident
            self.bump(); // '#'
            let mut text = String::from("r#");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Ident, text, line);
        } else {
            // just an identifier starting with r/b after all
            let mut text = prefix;
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Ident, text, line);
        }
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // 'a (lifetime) vs 'a' (char). A quote two chars ahead, or an escape
        // right after the quote, means a char literal.
        let is_char = matches!(
            (self.peek(1), self.peek(2)),
            (Some('\\'), _) | (Some(_), Some('\''))
        );
        if is_char {
            let mut text = String::new();
            text.push(self.bump().unwrap_or('\'')); // opening '
            while let Some(c) = self.bump() {
                text.push(c);
                if c == '\\' {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                } else if c == '\'' {
                    break;
                }
            }
            self.push(TokKind::Char, text, line);
        } else {
            let mut text = String::from("'");
            self.bump();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line);
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else if c == '.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let toks = lex("// x.unwrap()\nlet s = \"y.unwrap()\";");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s"]);
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let toks = lex(r####"let s = r#"quote " inside"#; /* a /* b */ c */ x"####);
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
        assert!(toks.iter().any(|t| t.kind == TokKind::BlockComment));
        assert_eq!(toks.last().map(|t| t.text.as_str()), Some("x"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        assert!(kinds("&'a str").contains(&TokKind::Lifetime));
        assert!(kinds("'x'").contains(&TokKind::Char));
        assert!(kinds(r"'\n'").contains(&TokKind::Char));
        assert!(kinds("b'q'").contains(&TokKind::Char));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("0..10");
        assert_eq!(toks[0].text, "0");
        assert_eq!(toks[1].text, ".");
        assert_eq!(toks[2].text, ".");
        assert_eq!(toks[3].text, "10");
    }
}
