//! `simlint` — project-specific static analysis for the stacksim
//! workspace.
//!
//! Every result this reproduction reports rests on bit-identical
//! determinism: the parallel runner's memo cache, the fast-forward engine
//! and the simcheck oracles all compare runs byte-for-byte. A single
//! `HashMap` iteration feeding a metric, a stray wall-clock read, or a
//! narrowed cycle counter silently invalidates that guarantee — and none
//! of those are expressible as `clippy` lints. `simlint` checks them
//! statically on every commit.
//!
//! The tool is self-contained: a lightweight Rust [`lexer`], a per-file
//! rule engine ([`rules`]), a workspace symbol index and conservative
//! call graph ([`callgraph`]) feeding the lock-discipline /
//! hot-path-purity / panic-reachability rules ([`wsrules`]), a
//! `docs/METRICS.md` cross-check ([`docs`]), in-source pragmas
//! ([`source`]) and a baseline file ([`baseline`]), assembled by
//! [`engine::scan`]. Rule ids, rationale and the pragma syntax are
//! documented in `docs/LINTS.md`.
//!
//! # Examples
//!
//! ```
//! use stacksim_simlint::rules::check_file;
//! use stacksim_simlint::source::SourceFile;
//!
//! let file = SourceFile::parse(
//!     "crates/core/src/x.rs",
//!     "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
//! );
//! let mut regs = Vec::new();
//! let findings = check_file(&file, true, &mut regs);
//! assert_eq!(findings[0].rule, "P001");
//! ```

pub mod baseline;
pub mod callgraph;
pub mod docs;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod scenario_docs;
pub mod source;
pub mod wsrules;

pub use engine::{find_workspace_root, scan, GraphSummary, Options, Report};
pub use rules::{Finding, KERNEL_CRATES, RULES};
