//! Workspace rules: lock discipline (L), hot-path purity (H) and panic
//! reachability (R), evaluated over the [`crate::callgraph`] view.
//!
//! Unlike the per-file D/P/N families, every rule here asks a question
//! about *reachability*: what can happen while a guard is held, what
//! runs inside the tick loop's closure, which public APIs can reach a
//! panic site. All three inherit the call graph's conservatism — see
//! the table of known over-approximations in `docs/LINTS.md`.

use crate::callgraph::{CallGraph, LockHold};
use crate::rules::{Finding, KERNEL_CRATES};
use crate::source::SourceFile;

/// Hot-path roots: the entry points whose transitive closure must stay
/// allocation-free (`(impl type, method)`); the set mirrors DESIGN.md §7.
/// Roots absent from a workspace (e.g. the test fixtures) are skipped.
pub const HOT_ROOTS: &[(&str, &str)] = &[
    ("System", "tick"),
    ("System", "tick_memory"),
    ("System", "mc_slice"),
    ("System", "fast_forward_to"),
    ("Core", "cycle"),
    ("MemoryController", "tick"),
];

/// Function-name shapes exempt from H-rules: construction is allowed to
/// allocate, only steady-state ticking is not.
fn is_constructor_name(name: &str) -> bool {
    name == "new"
        || name == "default"
        || name.starts_with("new_")
        || name.starts_with("try_new")
        || name.starts_with("with_")
        || name.starts_with("from_")
        || name.starts_with("for_")
}

/// One panic-inventory row: a public API that can transitively panic.
#[derive(Clone, Debug)]
pub struct PanicApi {
    /// Qualified name, `crate::Type::fn` or `crate::fn`.
    pub name: String,
    /// What makes it panic: a direct site kind or `via \`callee\``.
    pub via: String,
    /// Defining file (workspace-relative).
    pub file: String,
    /// Definition line.
    pub line: u32,
}

/// Computes the public panic inventory: every `pub fn` outside `src/bin/`
/// that has, or can reach, a P001–P004-shaped panic site. Sorted and
/// deduplicated by qualified name so the generated table is stable.
pub fn panic_inventory(graph: &CallGraph) -> Vec<PanicApi> {
    let can = graph.can_panic();
    let mut rows: Vec<PanicApi> = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if !f.is_pub || !can[i] || f.file.contains("/bin/") {
            continue;
        }
        rows.push(PanicApi {
            name: f.qualified(),
            via: graph.panic_via(i, &can),
            file: f.file.clone(),
            line: f.line,
        });
    }
    rows.sort_by(|a, b| a.name.cmp(&b.name).then(a.line.cmp(&b.line)));
    rows.dedup_by(|a, b| a.name == b.name);
    rows
}

/// The names documented in a `docs/PANICS.md` table: the first
/// back-ticked token of each `|`-delimited row, with its line.
pub fn documented_panic_apis(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let Some(start) = trimmed.find('`') else {
            continue;
        };
        let rest = &trimmed[start + 1..];
        let Some(end) = rest.find('`') else { continue };
        let name = &rest[..end];
        if name.contains("::") {
            out.push((name.to_string(), idx as u32 + 1));
        }
    }
    out
}

/// Renders the inventory as the `docs/PANICS.md` table body (the
/// `--panic-inventory` CLI output), ready to paste under the header.
pub fn inventory_markdown(rows: &[PanicApi]) -> String {
    let mut out = String::from("| API | panics via |\n|---|---|\n");
    for r in rows {
        out.push_str(&format!("| `{}` | {} |\n", r.name, r.via));
    }
    out
}

/// Context handed to the workspace rules by the engine.
pub struct WsContext<'a> {
    /// The call graph over every scanned file.
    pub graph: &'a CallGraph,
    /// `(crate name, parsed file)` for snippet lookup.
    pub files: &'a [(String, SourceFile)],
    /// `docs/PANICS.md` content, if the workspace commits one; `None`
    /// skips the R rules (mirrors the M-rule behavior without
    /// `docs/METRICS.md`).
    pub panic_docs: Option<&'a str>,
    /// Workspace-relative path of the panic doc (for R002 findings).
    pub panic_docs_path: &'a str,
}

/// Runs L, H and R, appending raw (pre-suppression) findings.
/// Returns the qualified names of the hot roots found in this workspace
/// (the JSON report's `roots` array).
pub fn check_workspace(ctx: &WsContext<'_>, findings: &mut Vec<Finding>) -> Vec<String> {
    check_locks(ctx, findings);
    let roots = check_hot_paths(ctx, findings);
    check_panic_docs(ctx, findings);
    roots
}

fn snippet(ctx: &WsContext<'_>, file: &str, line: u32) -> String {
    ctx.files
        .iter()
        .find(|(_, f)| f.path == file)
        .map(|(_, f)| f.line_text(line).to_string())
        .unwrap_or_default()
}

fn finding(ctx: &WsContext<'_>, file: &str, line: u32, rule: &str, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        rule: rule.to_string(),
        message,
        snippet: snippet(ctx, file, line),
    }
}

/// Everything one guard-held region can do, after chasing calls through
/// the graph: the locks it can acquire and the I/O it can reach.
struct HoldEffects {
    /// `(lock, how)` — `how` describes the acquisition site.
    locks: Vec<(String, String)>,
    /// Human description of the first reachable I/O, if any.
    io: Option<String>,
}

/// Chases a hold's in-region calls through the graph and accumulates
/// reachable lock acquisitions and I/O sites.
fn hold_effects(graph: &CallGraph, owner_idx: usize, hold: &LockHold) -> HoldEffects {
    let facts = &graph.fns[owner_idx].facts;
    let mut locks: Vec<(String, String)> = Vec::new();
    let mut io: Option<String> = None;
    // Direct effects inside the region.
    for &l in &hold.locks {
        let site = &facts.locks[l];
        locks.push((site.lock.clone(), format!("acquired on line {}", site.line)));
    }
    if let Some(&i) = hold.io.first() {
        io = Some(format!("`{}` on line {}", facts.io[i].0, facts.io[i].1));
    }
    // Transitive effects through every call made while the guard is held.
    let mut targets: Vec<usize> = Vec::new();
    for &c in &hold.calls {
        targets.extend(graph.resolve_call(owner_idx, &facts.calls[c]));
    }
    targets.sort_unstable();
    targets.dedup();
    let reach = graph.reachable(&targets);
    for (j, seen) in reach.iter().enumerate() {
        if !seen {
            continue;
        }
        let callee = &graph.fns[j];
        for site in &callee.facts.locks {
            locks.push((
                site.lock.clone(),
                format!("acquired in `{}`", callee.qualified()),
            ));
        }
        if io.is_none() {
            if let Some((what, _)) = callee.facts.io.first() {
                io = Some(format!("`{}` in `{}`", what, callee.qualified()));
            }
        }
    }
    HoldEffects { locks, io }
}

/// L001/L002/L003 over every guard-held region in the workspace.
fn check_locks(ctx: &WsContext<'_>, findings: &mut Vec<Finding>) {
    let graph = ctx.graph;
    // First pass: collect every ordered pair (held → acquired) with its
    // site, so inconsistency is judged against the whole workspace.
    struct PairSite {
        held: String,
        acquired: String,
        file: String,
        line: u32,
    }
    let mut pairs: Vec<PairSite> = Vec::new();
    // (fn idx, hold) worklist reused by all three rules.
    let mut holds: Vec<(usize, &LockHold, HoldEffects)> = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        for hold in &f.facts.holds {
            let effects = hold_effects(graph, i, hold);
            for (acquired, _) in &effects.locks {
                pairs.push(PairSite {
                    held: hold.lock.clone(),
                    acquired: acquired.clone(),
                    file: f.file.clone(),
                    line: hold.line,
                });
            }
            holds.push((i, hold, effects));
        }
    }

    for (i, hold, effects) in &holds {
        let f = &graph.fns[*i];
        // L003: re-acquisition of the held lock on one call path.
        if let Some((_, how)) = effects.locks.iter().find(|(l, _)| *l == hold.lock) {
            findings.push(finding(
                ctx,
                &f.file,
                hold.line,
                "L003",
                format!(
                    "guard on `{}` still held here while the same lock is {} — self-deadlock on one call path",
                    hold.lock, how
                ),
            ));
        }
        // L001: the pairwise order held→acquired is reversed elsewhere.
        let mut reported: Vec<&str> = Vec::new();
        for (acquired, how) in &effects.locks {
            if *acquired == hold.lock || reported.contains(&acquired.as_str()) {
                continue;
            }
            if let Some(rev) = pairs
                .iter()
                .find(|p| p.held == *acquired && p.acquired == hold.lock)
            {
                reported.push(acquired.as_str());
                findings.push(finding(
                    ctx,
                    &f.file,
                    hold.line,
                    "L001",
                    format!(
                        "lock order `{}` → `{}` here ({how}) conflicts with `{}` → `{}` at {}:{} — deadlock cycle",
                        hold.lock, acquired, rev.held, rev.acquired, rev.file, rev.line
                    ),
                ));
            }
        }
        // L002: file/network I/O while the guard is held.
        if let Some(io) = &effects.io {
            findings.push(finding(
                ctx,
                &f.file,
                hold.line,
                "L002",
                format!(
                    "guard on `{}` held across I/O: {io}; release the lock before blocking",
                    hold.lock
                ),
            ));
        }
    }
}

/// H001/H002 over the closure reachable from [`HOT_ROOTS`]; findings are
/// restricted to kernel-crate files (the conservative graph reaches
/// tooling code whose allocations are fine).
fn check_hot_paths(ctx: &WsContext<'_>, findings: &mut Vec<Finding>) -> Vec<String> {
    let graph = ctx.graph;
    let mut root_ids: Vec<usize> = Vec::new();
    let mut root_names: Vec<String> = Vec::new();
    for (owner, name) in HOT_ROOTS {
        for id in graph.find(Some(owner), name) {
            root_names.push(graph.fns[id].qualified());
            root_ids.push(id);
        }
    }
    root_names.sort();
    root_names.dedup();
    let reach = graph.reachable(&root_ids);
    for (i, seen) in reach.iter().enumerate() {
        if !seen {
            continue;
        }
        let f = &graph.fns[i];
        if !KERNEL_CRATES.contains(&f.crate_name.as_str()) || is_constructor_name(&f.name) {
            continue;
        }
        for (what, line) in &f.facts.allocs {
            findings.push(finding(
                ctx,
                &f.file,
                *line,
                "H001",
                format!(
                    "heap allocation (`{what}`) in `{}`, reachable from a tick-loop root",
                    f.qualified()
                ),
            ));
        }
        for line in &f.facts.clones {
            findings.push(finding(
                ctx,
                &f.file,
                *line,
                "H002",
                format!(
                    "`.clone()` in `{}`, reachable from a tick-loop root",
                    f.qualified()
                ),
            ));
        }
    }
    root_names
}

/// R001/R002: the committed panic inventory must match the computed one
/// in both directions. Skipped when the workspace has no `docs/PANICS.md`.
fn check_panic_docs(ctx: &WsContext<'_>, findings: &mut Vec<Finding>) {
    let Some(doc) = ctx.panic_docs else {
        return;
    };
    let inventory = panic_inventory(ctx.graph);
    let documented = documented_panic_apis(doc);
    for api in &inventory {
        if !documented.iter().any(|(name, _)| name == &api.name) {
            findings.push(finding(
                ctx,
                &api.file,
                api.line,
                "R001",
                format!(
                    "public API `{}` can transitively panic ({}) but is not documented in {}",
                    api.name, api.via, ctx.panic_docs_path
                ),
            ));
        }
    }
    for (name, line) in &documented {
        if !inventory.iter().any(|api| &api.name == name) {
            findings.push(Finding {
                file: ctx.panic_docs_path.to_string(),
                line: *line,
                rule: "R002".to_string(),
                message: format!(
                    "`{name}` is documented as panicking but the analyzer no longer finds a panic path — stale row"
                ),
                snippet: name.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn ctx_files(srcs: &[(&str, &str, &str)]) -> Vec<(String, SourceFile)> {
        srcs.iter()
            .map(|(krate, path, src)| (krate.to_string(), SourceFile::parse(path, src)))
            .collect()
    }

    fn run(
        files: &[(String, SourceFile)],
        panic_docs: Option<&str>,
    ) -> (Vec<Finding>, Vec<String>) {
        let refs: Vec<(String, &SourceFile)> = files.iter().map(|(k, f)| (k.clone(), f)).collect();
        let graph = CallGraph::build(&refs);
        let ctx = WsContext {
            graph: &graph,
            files,
            panic_docs,
            panic_docs_path: "docs/PANICS.md",
        };
        let mut findings = Vec::new();
        let roots = check_workspace(&ctx, &mut findings);
        (findings, roots)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn l001_fires_on_reversed_order_only() {
        let files = ctx_files(&[(
            "core",
            "crates/core/src/runner.rs",
            "fn ab() { let a = A.lock(); let b = B.lock(); }\n\
             fn ba() { let b = B.lock(); let a = A.lock(); }\n\
             fn consistent() { let a = A.lock(); let c = C.lock(); }\n",
        )]);
        let (findings, _) = run(&files, None);
        let l001: Vec<&Finding> = findings.iter().filter(|f| f.rule == "L001").collect();
        assert_eq!(l001.len(), 2, "one per conflicting site: {findings:?}");
        assert!(l001.iter().all(|f| f.line <= 2));
    }

    #[test]
    fn l002_fires_on_transitive_io() {
        let files = ctx_files(&[(
            "core",
            "crates/core/src/runner.rs",
            "fn f() { let g = M.lock(); helper(); }\n\
             fn helper() { deeper(); }\n\
             fn deeper() { fs::write(\"p\", \"x\"); }\n",
        )]);
        let (findings, _) = run(&files, None);
        assert!(rules_of(&findings).contains(&"L002"), "{findings:?}");
    }

    #[test]
    fn l003_fires_on_reachable_reacquisition() {
        let files = ctx_files(&[(
            "core",
            "crates/core/src/runner.rs",
            "fn f() { let g = M.lock(); helper(); }\nfn helper() { let h = M.lock(); }\n",
        )]);
        let (findings, _) = run(&files, None);
        assert!(rules_of(&findings).contains(&"L003"), "{findings:?}");
    }

    #[test]
    fn drop_before_io_is_clean() {
        let files = ctx_files(&[(
            "core",
            "crates/core/src/runner.rs",
            "fn f() { let g = M.lock(); drop(g); fs::write(\"p\", \"x\"); }\n",
        )]);
        let (findings, _) = run(&files, None);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn h_rules_fire_only_inside_hot_closure() {
        let files = ctx_files(&[(
            "core",
            "crates/core/src/system.rs",
            "impl System { pub fn tick(&mut self) { self.step(); } \
             fn step(&mut self) { let v = Vec::new(); let w = x.clone(); } \
             fn cold(&mut self) { let v = Vec::new(); } }\n\
             pub fn new_table() -> Vec<u32> { Vec::new() }\n",
        )]);
        let (findings, roots) = run(&files, None);
        assert_eq!(roots, vec!["core::System::tick".to_string()]);
        let rules = rules_of(&findings);
        assert_eq!(
            rules.iter().filter(|r| **r == "H001").count(),
            1,
            "cold() is unreachable from tick and new_table is a constructor: {findings:?}"
        );
        assert!(rules.contains(&"H002"));
    }

    #[test]
    fn r_rules_cross_check_both_directions() {
        let files = ctx_files(&[(
            "util",
            "crates/util/src/lib.rs",
            "pub fn documented() { x.unwrap(); }\npub fn undocumented() { y.unwrap(); }\n",
        )]);
        let doc = "| API | panics via |\n|---|---|\n| `util::documented` | unwrap |\n| `util::ghost` | unwrap |\n";
        let (findings, _) = run(&files, Some(doc));
        let rules = rules_of(&findings);
        assert_eq!(rules.iter().filter(|r| **r == "R001").count(), 1);
        assert_eq!(rules.iter().filter(|r| **r == "R002").count(), 1);
        let r001 = findings.iter().find(|f| f.rule == "R001").unwrap();
        assert!(r001.message.contains("undocumented"));
    }

    #[test]
    fn r_rules_skip_without_doc() {
        let files = ctx_files(&[(
            "util",
            "crates/util/src/lib.rs",
            "pub fn p() { x.unwrap(); }\n",
        )]);
        let (findings, _) = run(&files, None);
        assert!(findings.is_empty());
    }

    #[test]
    fn inventory_is_sorted_and_rendered() {
        let files = ctx_files(&[(
            "util",
            "crates/util/src/lib.rs",
            "pub fn b() { x.unwrap(); }\npub fn a() { b(); }\nfn private() { x.unwrap(); }\n",
        )]);
        let refs: Vec<(String, &SourceFile)> = files.iter().map(|(k, f)| (k.clone(), f)).collect();
        let graph = CallGraph::build(&refs);
        let rows = panic_inventory(&graph);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["util::a", "util::b"], "pub only, sorted");
        let md = inventory_markdown(&rows);
        assert!(md.contains("| `util::a` | via `util::b` |"));
        assert!(md.contains("| `util::b` | unwrap |"));
    }
}
