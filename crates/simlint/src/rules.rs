//! The rule implementations.
//!
//! Four rule families, each enforcing an invariant the simulator's
//! bit-identity guarantees depend on but `clippy` cannot express:
//!
//! | family | rules | invariant |
//! |---|---|---|
//! | **D** determinism | `D001` wall-clock time, `D002` `rand`, `D003` hash-order iteration | identical inputs must produce byte-identical runs |
//! | **P** panic surface | `P001` `unwrap`, `P002` `expect`, `P003` explicit panic macros, `P004` unguarded computed slice index | kernel library code returns typed errors |
//! | **N** narrowing | `N001` `as u32`/`as usize` on cycle/address-typed expressions | cycle counts and addresses stay 64-bit |
//! | **M** metric drift | `M001` registered-but-undocumented, `M002` documented-but-unregistered | `docs/METRICS.md` matches the code |
//! | **S** scenario-schema drift | `S001` accepted-but-undocumented, `S002` documented-but-unaccepted | `docs/SCENARIOS.md` matches the parser's `ACCEPTED_KEYS` |
//!
//! D, P and N apply to non-test library code of the simulation-kernel
//! crates ([`KERNEL_CRATES`]); M applies to every workspace crate; S
//! compares `crates/core/src/scenario.rs` with `docs/SCENARIOS.md`
//! (see [`crate::scenario_docs`]).

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;

/// Crates whose code drives simulated state: a determinism or panic bug
/// here invalidates measured results, so rules D/P/N gate them.
pub const KERNEL_CRATES: &[&str] = &["core", "dram", "memctrl", "mshr", "cache", "cpu", "vm"];

/// All rule ids the engine knows, with one-line descriptions.
pub const RULES: &[(&str, &str)] = &[
    (
        "D001",
        "wall-clock time source (std::time / Instant / SystemTime) in kernel code",
    ),
    ("D002", "rand crate usage in kernel code"),
    (
        "D003",
        "iteration over HashMap/HashSet (nondeterministic order) in kernel code",
    ),
    ("P001", "unwrap() in non-test kernel library code"),
    ("P002", "expect() in non-test kernel library code"),
    (
        "P003",
        "explicit panic macro (panic!/unreachable!/todo!/unimplemented!) in kernel library code",
    ),
    (
        "P004",
        "slice index with unguarded arithmetic in kernel library code",
    ),
    (
        "N001",
        "narrowing cast (as u32/usize/u16/u8) of a cycle- or address-typed expression",
    ),
    (
        "M001",
        "metric registered in code but not documented in docs/METRICS.md",
    ),
    (
        "M002",
        "metric documented in docs/METRICS.md but not registered anywhere in code",
    ),
    (
        "S001",
        "scenario key accepted by the parser but not documented in docs/SCENARIOS.md",
    ),
    (
        "S002",
        "scenario key documented in docs/SCENARIOS.md but not accepted by the parser",
    ),
    (
        "L001",
        "lock order inconsistent with another site (deadlock cycle through the call graph)",
    ),
    (
        "L002",
        "lock guard held across file or network I/O on some call path",
    ),
    (
        "L003",
        "reachable re-acquisition of the same lock while its guard is held (self-deadlock)",
    ),
    (
        "H001",
        "heap allocation reachable from a tick-loop root (System::tick and friends)",
    ),
    ("H002", "clone() reachable from a tick-loop root"),
    (
        "R001",
        "public API can transitively panic but is not documented in docs/PANICS.md",
    ),
    (
        "R002",
        "docs/PANICS.md row names an API the analyzer no longer finds a panic path for",
    ),
    (
        "X001",
        "malformed simlint::allow pragma (missing rule id or reason)",
    ),
    (
        "X002",
        "simlint::allow pragma whose rule no longer fires on its target line (stale pragma)",
    ),
];

/// One diagnostic produced by a rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (e.g. `D003`).
    pub rule: String,
    /// Human-readable message.
    pub message: String,
    /// Trimmed source text of the offending line (the baseline match key).
    pub snippet: String,
}

impl Finding {
    fn new(file: &SourceFile, line: u32, rule: &str, message: String) -> Finding {
        Finding {
            file: file.path.clone(),
            line,
            rule: rule.to_string(),
            message,
            snippet: file.line_text(line).to_string(),
        }
    }
}

/// A literal metric-name registration site (`.counter("…")`, `.gauge`,
/// `.histogram`, or `StatRecord::set`), collected for rule M.
#[derive(Clone, Debug)]
pub struct Registration {
    /// File the registration appears in.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The literal metric name as written (may contain dots).
    pub name: String,
}

/// The leaf segment of a dotted metric path (`ranks.refreshes` →
/// `refreshes`). Metric trees prefix parent components at absorb time, so
/// leaves are the unit both sides of the doc cross-check agree on.
pub fn leaf(name: &str) -> &str {
    name.rsplit('.').next().unwrap_or(name)
}

/// Runs the per-file rules. `kernel` selects the D/P/N families; metric
/// registrations are collected from every file for the engine's M pass.
pub fn check_file(file: &SourceFile, kernel: bool, regs: &mut Vec<Registration>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks: Vec<&Tok> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    if kernel {
        rule_d_time_and_rand(file, &toks, &mut findings);
        rule_d_hash_iteration(file, &toks, &mut findings);
        rule_p_panics(file, &toks, &mut findings);
        rule_p_index(file, &toks, &mut findings);
        rule_n_narrowing(file, &toks, &mut findings);
    }
    collect_registrations(file, &toks, regs);
    for p in &file.pragmas {
        if p.reason.is_empty() {
            findings.push(Finding::new(
                file,
                p.line,
                "X001",
                "malformed simlint::allow pragma: expected (RULE, reason = \"…\") with a non-empty reason".to_string(),
            ));
        }
    }
    findings
}

fn is_ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

/// D001 / D002: wall-clock time sources and `rand` paths.
fn rule_d_time_and_rand(file: &SourceFile, toks: &[&Tok], findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" | "UNIX_EPOCH" => findings.push(Finding::new(
                file,
                t.line,
                "D001",
                format!(
                    "`{}` is a wall-clock time source; simulation results must depend only on simulated cycles",
                    t.text
                ),
            )),
            // std::time / core::time (core::time::Duration alone is
            // harmless but flagged: kernel code has no business with it).
            "time"
                if i >= 3
                    && toks[i - 1].text == ":"
                    && toks[i - 2].text == ":"
                    && matches!(toks[i - 3].text.as_str(), "std" | "core") =>
            {
                findings.push(Finding::new(
                    file,
                    t.line,
                    "D001",
                    "`std::time` in kernel code: wall-clock time must not influence simulation"
                        .to_string(),
                ));
            }
            "rand" => {
                let next_is_path = toks.get(i + 1).is_some_and(|n| n.text == ":")
                    && toks.get(i + 2).is_some_and(|n| n.text == ":");
                let after_use = i >= 1 && is_ident(toks[i - 1], "use");
                if next_is_path || after_use {
                    findings.push(Finding::new(
                        file,
                        t.line,
                        "D002",
                        "`rand` in kernel code: any randomness must come from the seeded workload generators".to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Methods on hash containers whose visit order is nondeterministic.
const HASH_ORDER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// D003: iteration over values declared as `HashMap`/`HashSet`.
///
/// Pass 1 collects names whose declaration mentions a hash container:
/// fields and statics (`name: …HashMap…`), `let` bindings, and functions
/// whose return type mentions one. Taint then propagates through `let`
/// initializers (bounded fixpoint), so `let guard = memo().lock()…;
/// guard.iter()` is still caught. Pass 2 flags order-sensitive method
/// calls on tainted names and `for … in` loops over them.
fn rule_d_hash_iteration(file: &SourceFile, toks: &[&Tok], findings: &mut Vec<Finding>) {
    let mut hash_names: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name : … HashMap/HashSet …` up to a declaration boundary
        // (fields, statics, typed lets).
        if toks.get(i + 1).is_some_and(|n| n.text == ":")
            && toks.get(i + 2).is_none_or(|n| n.text != ":")
        {
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < toks.len() && j < i + 40 {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "," | ";" | ")" | "{" | "=" if angle <= 0 => break,
                    "HashMap" | "HashSet" => {
                        push_unique(&mut hash_names, &t.text);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // `fn name(…) -> … HashMap …` — calls to this function yield a
        // hash container, so its name is a taint source too.
        if is_ident(t, "fn") {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    let mut k = i + 2;
                    while k < toks.len() && k < i + 60 {
                        match toks[k].text.as_str() {
                            "{" | ";" => break,
                            "HashMap" | "HashSet" => {
                                push_unique(&mut hash_names, &name_tok.text);
                                break;
                            }
                            _ => k += 1,
                        }
                    }
                }
            }
        }
    }
    // `let [mut] name … = INIT;` taints `name` when INIT mentions a hash
    // container or an already-tainted name. Iterate to a bounded fixpoint
    // so taint flows through lock guards and snapshot vectors.
    for _ in 0..4 {
        let mut grew = false;
        for (i, t) in toks.iter().enumerate() {
            if !is_ident(t, "let") {
                continue;
            }
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| is_ident(n, "mut")) {
                j += 1;
            }
            let Some(name_tok) = toks.get(j) else {
                continue;
            };
            if name_tok.kind != TokKind::Ident || hash_names.iter().any(|n| n == &name_tok.text) {
                continue;
            }
            let mut k = j + 1;
            while k < toks.len() && k < j + 100 && toks[k].text != ";" {
                // An ident preceded by `.` is a method/field selector
                // (`items.map(…)`), not a use of a tainted binding.
                let selector = k > 0 && toks[k - 1].text == ".";
                let tainted = matches!(toks[k].text.as_str(), "HashMap" | "HashSet")
                    || (toks[k].kind == TokKind::Ident
                        && !selector
                        && hash_names.iter().any(|n| n == &toks[k].text));
                if tainted {
                    push_unique(&mut hash_names, &name_tok.text);
                    grew = true;
                    break;
                }
                k += 1;
            }
        }
        if !grew {
            break;
        }
    }
    if hash_names.is_empty() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || file.is_test_line(t.line)
            || !hash_names.iter().any(|n| n == &t.text)
        {
            continue;
        }
        // name.method( where method visits entries in hash order
        if toks.get(i + 1).is_some_and(|n| n.text == ".") {
            if let Some(m) = toks.get(i + 2) {
                if HASH_ORDER_METHODS.contains(&m.text.as_str())
                    && toks.get(i + 3).is_some_and(|n| n.text == "(")
                {
                    findings.push(Finding::new(
                        file,
                        t.line,
                        "D003",
                        format!(
                            "`{}.{}()` visits a hash container in nondeterministic order",
                            t.text, m.text
                        ),
                    ));
                }
            }
        }
        // `for pat in [&[mut]] name {` — direct iteration
        if i >= 1
            && (toks[i - 1].text == "&"
                || is_ident(toks[i - 1], "in")
                || is_ident(toks[i - 1], "mut"))
        {
            let mut back = i - 1;
            while back > 0 && (toks[back].text == "&" || is_ident(toks[back], "mut")) {
                back -= 1;
            }
            if is_ident(toks[back], "in") && toks.get(i + 1).is_some_and(|n| n.text == "{") {
                findings.push(Finding::new(
                    file,
                    t.line,
                    "D003",
                    format!(
                        "`for … in {}` iterates a hash container in nondeterministic order",
                        t.text
                    ),
                ));
            }
        }
    }
}

fn push_unique(names: &mut Vec<String>, name: &str) {
    if !names.iter().any(|n| n == name) {
        names.push(name.to_string());
    }
}

/// P001 / P002 / P003: unwrap, expect, and explicit panic macros.
fn rule_p_panics(file: &SourceFile, toks: &[&Tok], findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        let called = toks.get(i + 1).is_some_and(|n| n.text == "(");
        let after_dot = i >= 1 && toks[i - 1].text == ".";
        match t.text.as_str() {
            "unwrap" | "unwrap_err" | "unwrap_unchecked" if called && after_dot => {
                findings.push(Finding::new(
                    file,
                    t.line,
                    "P001",
                    format!("`.{}()` can panic; return a typed error instead", t.text),
                ));
            }
            "expect" | "expect_err" if called && after_dot => {
                findings.push(Finding::new(
                    file,
                    t.line,
                    "P002",
                    format!("`.{}()` can panic; return a typed error instead", t.text),
                ));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|n| n.text == "!") =>
            {
                findings.push(Finding::new(
                    file,
                    t.line,
                    "P003",
                    format!(
                        "`{}!` panics; prefer a typed error or prove the branch impossible",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// P004: slice indexing whose index expression contains unguarded
/// arithmetic (`x[i + 1]`, `x[pos - 1]`). Single identifiers, literals,
/// ranges, and modulo-wrapped indices are accepted; everything else is a
/// plausible off-by-one panic site.
fn rule_p_index(file: &SourceFile, toks: &[&Tok], findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.text != "[" || file.is_test_line(t.line) {
            continue;
        }
        // Indexing only: `[` directly after an ident, `)`, or `]`.
        let indexing = i >= 1
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].text == ")"
                || toks[i - 1].text == "]");
        if !indexing {
            continue;
        }
        // Attribute `#[…]` never matches (previous token is `#`).
        let mut depth = 0usize;
        let mut j = i;
        let mut idx_toks: Vec<&Tok> = Vec::new();
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j > i {
                idx_toks.push(toks[j]);
            }
            j += 1;
        }
        if idx_toks.len() <= 1 {
            continue; // empty, single literal, or single identifier
        }
        let has_range = idx_toks
            .windows(2)
            .any(|w| w[0].text == "." && w[1].text == ".");
        let has_modulo = idx_toks.iter().any(|t| t.text == "%");
        // A trailing `& mask` (power-of-two wrap) bounds the index just
        // like `%`; a leading `&` is only a reference, not a mask.
        let has_mask = idx_toks.iter().skip(1).any(|t| t.text == "&");
        let has_arith = idx_toks
            .iter()
            .any(|t| matches!(t.text.as_str(), "+" | "-" | "*"));
        if has_arith && !has_range && !has_modulo && !has_mask {
            findings.push(Finding::new(
                file,
                t.line,
                "P004",
                "slice index computed with unguarded arithmetic; use .get(), a checked helper, or justify with a pragma".to_string(),
            ));
        }
    }
}

/// Identifier fragments that mark an expression as cycle- or
/// address-typed for rule N.
fn is_cycle_or_addr_ident(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("cycle") || lower.contains("addr") || lower == "now" || lower == "deadline"
}

/// N001: `as u32`/`as usize`/`as u16`/`as u8` applied to an expression
/// whose postfix chain mentions a cycle- or address-typed identifier.
/// Cycle counts and addresses are 64-bit; narrowing one silently wraps
/// after ~4 × 10⁹ cycles.
fn rule_n_narrowing(file: &SourceFile, toks: &[&Tok], findings: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if !is_ident(t, "as") || file.is_test_line(t.line) {
            continue;
        }
        let Some(ty) = toks.get(i + 1) else { continue };
        if !matches!(
            ty.text.as_str(),
            "u32" | "usize" | "u16" | "u8" | "i32" | "i16" | "i8"
        ) {
            continue;
        }
        // Walk the postfix chain backwards: idents, field/method access,
        // call/index groups. Stop at any operator or statement boundary.
        let mut j = i;
        let mut names: Vec<&str> = Vec::new();
        while j > 0 {
            j -= 1;
            match toks[j].kind {
                TokKind::Ident => {
                    if matches!(
                        toks[j].text.as_str(),
                        "let" | "in" | "if" | "while" | "match" | "return" | "as" | "mut" | "ref"
                    ) {
                        break;
                    }
                    names.push(&toks[j].text);
                }
                TokKind::Num => {}
                TokKind::Punct => match toks[j].text.as_str() {
                    "." | ":" => {}
                    ")" | "]" => {
                        // Skip the whole group; collect idents inside it too
                        // (they describe what is being cast).
                        let close = &toks[j].text;
                        let open = if close == ")" { "(" } else { "[" };
                        let mut depth = 1usize;
                        while j > 0 && depth > 0 {
                            j -= 1;
                            if toks[j].text == *close {
                                depth += 1;
                            } else if toks[j].text == open {
                                depth -= 1;
                            } else if toks[j].kind == TokKind::Ident {
                                names.push(&toks[j].text);
                            }
                        }
                    }
                    _ => break,
                },
                _ => break,
            }
        }
        if names.iter().any(|n| is_cycle_or_addr_ident(n)) {
            findings.push(Finding::new(
                file,
                t.line,
                "N001",
                format!(
                    "narrowing cast `as {}` of a cycle/address-typed expression; keep 64-bit width or justify with a pragma",
                    ty.text
                ),
            ));
        }
    }
}

/// Collects literal metric names registered via `.counter("…")`,
/// `.gauge("…")`, `.histogram("…")` or `.set("…")` in non-test code.
fn collect_registrations(file: &SourceFile, toks: &[&Tok], regs: &mut Vec<Registration>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !matches!(t.text.as_str(), "counter" | "gauge" | "histogram" | "set")
        {
            continue;
        }
        if file.is_test_line(t.line) {
            continue;
        }
        let after_dot = i >= 1 && toks[i - 1].text == ".";
        if !after_dot
            || toks.get(i + 1).is_none_or(|n| n.text != "(")
            || toks.get(i + 2).is_none_or(|n| n.kind != TokKind::Str)
        {
            continue;
        }
        let lit = &toks[i + 2].text;
        let name = lit.trim_matches('"');
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        {
            continue;
        }
        regs.push(Registration {
            file: file.path.clone(),
            line: t.line,
            name: name.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut regs = Vec::new();
        check_file(&f, true, &mut regs)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn d001_flags_time_sources() {
        assert!(rules_of(&check("use std::time::Instant;\n")).contains(&"D001"));
        assert!(rules_of(&check("let t = SystemTime::now();\n")).contains(&"D001"));
        assert!(check("let time = 5;\n").is_empty()); // bare ident `time` ok
    }

    #[test]
    fn d002_flags_rand_paths() {
        assert!(rules_of(&check("use rand::SeedableRng;\n")).contains(&"D002"));
        assert!(check("let rand = 3;\n").is_empty());
    }

    #[test]
    fn d003_flags_hash_iteration_but_not_lookup() {
        let src = "struct S { m: HashMap<u64, u32> }\nimpl S { fn f(&self) { for v in self.m.values() {} } }\n";
        assert!(rules_of(&check(src)).contains(&"D003"));
        let ok = "struct S { m: HashMap<u64, u32> }\nimpl S { fn f(&self) -> bool { self.m.contains_key(&1) } }\n";
        assert!(check(ok).is_empty());
    }

    #[test]
    fn d003_flags_direct_for_loop() {
        let src = "fn f() { let mut s = HashSet::new(); s.insert(1); for x in &s { use_(x); } }\n";
        assert!(rules_of(&check(src)).contains(&"D003"));
    }

    #[test]
    fn d003_taint_flows_through_lock_guards() {
        let src = "\
static MEMO: OnceLock<Mutex<HashMap<K, V>>> = OnceLock::new();
fn memo() -> &'static Mutex<HashMap<K, V>> { MEMO.get_or_init(default) }
fn visit() {
    let map = memo().lock().expect(\"poisoned\");
    for (k, v) in map.iter() { use_(k, v); }
}
";
        assert!(rules_of(&check(src)).contains(&"D003"));
    }

    #[test]
    fn p_rules_skip_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); panic!(\"boom\"); }\n}\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn p001_p002_p003_fire_in_library_code() {
        let found = rules_of(&check(
            "fn f() { x.unwrap(); y.expect(\"msg\"); unreachable!(); }\n",
        ))
        .join(",");
        assert!(found.contains("P001") && found.contains("P002") && found.contains("P003"));
        // unwrap_or is fine
        assert!(check("fn f() { x.unwrap_or(0); }\n").is_empty());
    }

    #[test]
    fn p004_flags_arithmetic_index_only() {
        assert!(rules_of(&check("fn f() { let y = xs[i + 1]; }\n")).contains(&"P004"));
        assert!(check("fn f() { let y = xs[i]; }\n").is_empty());
        assert!(check("fn f() { let y = xs[i % n]; }\n").is_empty());
        assert!(check("fn f() { let y = &xs[a..b]; }\n").is_empty());
        // power-of-two masking bounds the index like a modulo
        assert!(check("fn f() { let y = xs[(i + off) & mask]; }\n").is_empty());
    }

    #[test]
    fn n001_flags_cycle_and_addr_narrowing() {
        assert!(rules_of(&check("fn f() { let x = now.raw() as u32; }\n")).contains(&"N001"));
        assert!(rules_of(&check("fn f() { let x = line_addr as usize; }\n")).contains(&"N001"));
        assert!(check("fn f() { let x = width as u32; }\n").is_empty());
        assert!(check("fn f() { let x = cycles as f64; }\n").is_empty()); // widening ok
    }

    #[test]
    fn registrations_are_collected_with_dotted_names() {
        let f = SourceFile::parse(
            "crates/dram/src/x.rs",
            "fn s(&self) { r.set(\"ranks.refreshes\", 1.0); sink.counter(\"cycles\", 2); }\n",
        );
        let mut regs = Vec::new();
        check_file(&f, true, &mut regs);
        let names: Vec<&str> = regs.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["ranks.refreshes", "cycles"]);
        assert_eq!(leaf("ranks.refreshes"), "refreshes");
    }
}
