//! Cross-check of `docs/SCENARIOS.md` against the scenario parser's
//! `ACCEPTED_KEYS` table (S family).
//!
//! The scenario parser (`crates/core/src/scenario.rs`) validates every
//! document key against its `ACCEPTED_KEYS` const, and `docs/SCENARIOS.md`
//! documents each key as the first cell of a schema table row. This module
//! extracts both sides textually and the engine compares them in both
//! directions:
//!
//! * **S001** — a key the parser accepts has no table row in the document
//!   (the schema reference is incomplete);
//! * **S002** — a documented key is not in `ACCEPTED_KEYS` (the document
//!   describes a key the parser would reject).

/// One key with the 1-based line it was found on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyEntry {
    /// Full dotted key path (e.g. `machine.memory.stacks[].mcs`).
    pub key: String,
    /// Line in the source or docs file.
    pub line: u32,
}

/// Extracts the `ACCEPTED_KEYS` string literals from the scenario parser's
/// source text, in order. Returns an empty list when no
/// `pub const ACCEPTED_KEYS` block is present.
pub fn parser_keys(source: &str) -> Vec<KeyEntry> {
    let mut keys = Vec::new();
    let mut in_table = false;
    for (i, line) in source.lines().enumerate() {
        let line_no = (i + 1) as u32;
        if !in_table {
            if line.contains("pub const ACCEPTED_KEYS") {
                in_table = true;
            }
            continue;
        }
        if line.trim_start().starts_with("];") {
            break;
        }
        // Each entry is one double-quoted literal; comments carry none.
        let mut rest = line;
        while let Some(open) = rest.find('"') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('"') else { break };
            keys.push(KeyEntry {
                key: after[..close].to_string(),
                line: line_no,
            });
            rest = &after[close + 1..];
        }
    }
    keys
}

/// Extracts the documented schema keys from the markdown text: the first
/// backtick-quoted token of each table row (lines starting with `|`),
/// keeping only key-shaped tokens — `machine`, `machine.…`, or one of the
/// top-level `schema` / `name` / `description` keys. Prose and code-block
/// mentions are deliberately ignored so error-message examples cannot
/// satisfy (or fail) the cross-check.
pub fn documented_keys(text: &str) -> Vec<KeyEntry> {
    let mut keys = Vec::new();
    for (i, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let first_cell = line.trim_start_matches('|').split('|').next().unwrap_or("");
        let Some(token) = first_backtick_token(first_cell) else {
            continue;
        };
        if is_key_shaped(&token) {
            keys.push(KeyEntry {
                key: token,
                line: (i + 1) as u32,
            });
        }
    }
    keys
}

fn first_backtick_token(cell: &str) -> Option<String> {
    let open = cell.find('`')?;
    let after = &cell[open + 1..];
    let close = after.find('`')?;
    Some(after[..close].to_string())
}

fn is_key_shaped(token: &str) -> bool {
    if matches!(token, "schema" | "name" | "description") {
        return true;
    }
    (token == "machine" || token.starts_with("machine."))
        && token
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._[]".contains(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = r#"
/// Doc comment mentioning "not a key".
pub const ACCEPTED_KEYS: &[&str] = &[
    "schema",
    "machine.cores",
    "machine.memory.stacks[].mcs", // trailing comment
];
const OTHER: &[&str] = &["ignored"];
"#;

    #[test]
    fn parser_keys_are_extracted_in_order() {
        let keys = parser_keys(SOURCE);
        let names: Vec<&str> = keys.iter().map(|k| k.key.as_str()).collect();
        assert_eq!(
            names,
            ["schema", "machine.cores", "machine.memory.stacks[].mcs"]
        );
        assert_eq!(keys[0].line, 4);
    }

    #[test]
    fn no_table_means_no_keys() {
        assert!(parser_keys("fn main() {}").is_empty());
    }

    const DOC: &str = "\
# Scenarios

Prose mentions `machine.bogus` and `scenarios/2d.json`.

| Key | Type |
|---|---|
| `schema` | string |
| `machine.cores` | integer |
| `configs::cfg_2d()` | constructor |

```text
| `machine.fenced` | inside a code block, but still a table row |
```
";

    #[test]
    fn documented_keys_come_from_table_rows_only() {
        let keys = documented_keys(DOC);
        let names: Vec<&str> = keys.iter().map(|k| k.key.as_str()).collect();
        // `machine.bogus` is prose, `configs::cfg_2d()` is not key-shaped;
        // fenced table rows are indistinguishable from real ones, which is
        // fine — fenced examples should not document unknown keys either.
        assert_eq!(names, ["schema", "machine.cores", "machine.fenced"]);
        assert_eq!(keys[0].line, 7);
    }

    #[test]
    fn key_shapes() {
        assert!(is_key_shaped("machine"));
        assert!(is_key_shaped("machine.memory.stacks[].ranks"));
        assert!(is_key_shaped("description"));
        assert!(!is_key_shaped("machine.Foo"));
        assert!(!is_key_shaped("machines"));
        assert!(!is_key_shaped("--scenario"));
    }
}
