//! Per-file analysis context: token stream, `#[cfg(test)]` / `#[test]`
//! region detection, and `simlint::allow` pragma extraction.

use crate::lexer::{lex, Tok};

/// A `// simlint::allow(RULE, reason = "…")` pragma attached to a source
/// line. A pragma on its own line covers the next non-comment line; a
/// trailing pragma covers its own line.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// Rule id the pragma suppresses (e.g. `D003`).
    pub rule: String,
    /// The justification text. Empty means the pragma is malformed.
    pub reason: String,
    /// Line the pragma comment appears on.
    pub line: u32,
    /// Line whose findings the pragma suppresses.
    pub target_line: u32,
}

/// A lexed file plus the structural facts the rules need.
pub struct SourceFile {
    /// Workspace-relative path, used in diagnostics.
    pub path: String,
    /// Token stream from [`lex`].
    pub tokens: Vec<Tok>,
    /// Trimmed text of each source line (index 0 = line 1).
    pub lines: Vec<String>,
    /// Inclusive line ranges that are test-only code.
    pub test_ranges: Vec<(u32, u32)>,
    /// All well-formed or malformed pragmas found in comments.
    pub pragmas: Vec<Pragma>,
}

impl SourceFile {
    /// Lexes and analyzes one file.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let lines = src.lines().map(|l| l.trim().to_string()).collect();
        let test_ranges = find_test_ranges(&tokens);
        let pragmas = find_pragmas(&tokens);
        SourceFile {
            path: path.to_string(),
            tokens,
            lines,
            test_ranges,
            pragmas,
        }
    }

    /// Whether `line` falls inside test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// The trimmed source text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Pragmas whose target is `line` and whose rule is `rule`.
    pub fn pragma_for(&self, line: u32, rule: &str) -> Option<&Pragma> {
        self.pragmas
            .iter()
            .find(|p| p.target_line == line && p.rule == rule && !p.reason.is_empty())
    }
}

/// Finds the inclusive line ranges of items gated by `#[cfg(test)]`,
/// `#[test]`, `#[should_panic]`, or `#[bench]` attributes.
///
/// The scan is token-level: after a test attribute, the item extends to the
/// matching close of the first `{` opened at the item's brace depth (a `mod`
/// or `fn` body), or to the first `;` for braceless items.
fn find_test_ranges(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let toks: Vec<&Tok> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            let (attr_end, is_test) = scan_attribute(&toks, i + 1);
            if is_test {
                let start_line = toks[i].line;
                let end_line = item_end_line(&toks, attr_end + 1);
                ranges.push((start_line, end_line));
                // Continue *after* the whole item so nested attributes inside
                // an already-marked region don't extend it spuriously.
                while i < toks.len() && toks[i].line <= end_line {
                    i += 1;
                }
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Scans an attribute starting at the `[` index; returns the index of the
/// closing `]` and whether the attribute marks test-only code.
fn scan_attribute(toks: &[&Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_test = false;
    let mut saw_cfg = false;
    let mut saw_not = false;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (i, is_test);
                }
            }
            "cfg" | "cfg_attr" => saw_cfg = true,
            "not" if saw_cfg => saw_not = true,
            "test" if saw_cfg && !saw_not => is_test = true,
            "test" | "should_panic" | "bench" if i == open + 1 => is_test = true,
            _ => {}
        }
        i += 1;
    }
    (toks.len().saturating_sub(1), is_test)
}

/// The last line of the item starting at token `i` (skipping further
/// attributes): the matching `}` of its first brace, or the first `;`.
fn item_end_line(toks: &[&Tok], mut i: usize) -> u32 {
    // Skip subsequent attributes (`#[test] #[ignore] fn …`).
    while i + 1 < toks.len() && toks[i].text == "#" && toks[i + 1].text == "[" {
        let (end, _) = scan_attribute(toks, i + 1);
        i = end + 1;
    }
    let mut j = i;
    while j < toks.len() {
        match toks[j].text.as_str() {
            ";" => return toks[j].line,
            "{" => {
                let mut depth = 0usize;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return toks[j].line;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                break;
            }
            _ => j += 1,
        }
    }
    toks.last().map(|t| t.line).unwrap_or(1)
}

/// Extracts `simlint::allow` pragmas from comment tokens.
fn find_pragmas(tokens: &[Tok]) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for (idx, tok) in tokens.iter().enumerate() {
        if !tok.is_comment() {
            continue;
        }
        // Only comments that *are* pragmas count — prose or doc examples
        // that merely mention the syntax are ignored.
        let body = tok.text.trim_start_matches(['/', '*', '!']).trim_start();
        if !body.starts_with("simlint::allow") {
            continue;
        }
        // A pragma comment that starts a line covers the next code line;
        // a trailing pragma covers its own line.
        let own_line_has_code = tokens[..idx]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| !t.is_comment());
        let target_line = if own_line_has_code {
            tok.line
        } else {
            tokens[idx..]
                .iter()
                .find(|t| !t.is_comment())
                .map(|t| t.line)
                .unwrap_or(tok.line)
        };
        let mut rest = tok.text.as_str();
        while let Some(at) = rest.find("simlint::allow") {
            rest = &rest[at + "simlint::allow".len()..];
            if let Some((rule, reason, tail)) = parse_allow_args(rest) {
                pragmas.push(Pragma {
                    rule,
                    reason,
                    line: tok.line,
                    target_line,
                });
                rest = tail;
            } else {
                // Malformed: record with empty reason so the engine can flag it.
                pragmas.push(Pragma {
                    rule: String::new(),
                    reason: String::new(),
                    line: tok.line,
                    target_line,
                });
                break;
            }
        }
    }
    pragmas
}

/// Parses `(RULE, reason = "…")` returning `(rule, reason, rest)`.
fn parse_allow_args(s: &str) -> Option<(String, String, &str)> {
    let s = s.trim_start();
    let s = s.strip_prefix('(')?;
    let comma = s.find(',')?;
    let rule = s[..comma].trim().to_string();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
        return None;
    }
    let s = &s[comma + 1..];
    let s = s.trim_start().strip_prefix("reason")?.trim_start();
    let s = s.strip_prefix('=')?.trim_start();
    let s = s.strip_prefix('"')?;
    let close = s.find('"')?;
    let reason = s[..close].to_string();
    if reason.trim().is_empty() {
        return None;
    }
    let rest = &s[close + 1..];
    let rest = rest.trim_start().strip_prefix(')').unwrap_or(rest);
    Some((rule, reason, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mod_range_covers_body() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_fn_with_extra_attrs() {
        let src = "#[test]\n#[ignore]\nfn t() {\n    boom();\n}\nfn real() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = "#[cfg(feature = \"x\")]\nfn a() { b(); }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(2));
        let src = "#[cfg(not(test))]\nfn a() { b(); }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn pragma_targets_next_code_line() {
        let src = "// simlint::allow(D003, reason = \"memo drain is order-insensitive\")\nfor k in m.keys() {}\n";
        let f = SourceFile::parse("x.rs", src);
        let p = f
            .pragma_for(2, "D003")
            .expect("pragma should bind to line 2");
        assert_eq!(p.reason, "memo drain is order-insensitive");
    }

    #[test]
    fn trailing_pragma_targets_own_line() {
        let src = "let x = m.keys(); // simlint::allow(D003, reason = \"sorted below\")\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.pragma_for(1, "D003").is_some());
    }

    #[test]
    fn prose_mentions_are_not_pragmas() {
        let src = "//! The `simlint::allow` pragma syntax is documented elsewhere.\nfn a() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.pragmas.is_empty());
        let src = "// let x = lex(\"// simlint::allow(D003, reason = \\\"w\\\")\");\nfn a() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.pragmas.is_empty());
    }

    #[test]
    fn pragma_without_reason_is_malformed() {
        let src = "// simlint::allow(D003)\nlet x = 1;\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.pragma_for(2, "D003").is_none());
        assert!(f.pragmas.iter().any(|p| p.reason.is_empty()));
    }
}
