//! The `simlint` binary: scans the workspace and reports findings.
//!
//! ```text
//! simlint [--root DIR] [--format text|json] [--baseline FILE]
//!         [--only RULE] [--explain RULE] [--panic-inventory] [--list-rules]
//! ```
//!
//! Exit codes: 0 = clean, 1 = unbaselined findings, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use stacksim_simlint::callgraph::CallGraph;
use stacksim_simlint::source::SourceFile;
use stacksim_simlint::{engine, wsrules, Options, RULES};

struct Args {
    root: Option<PathBuf>,
    format: Format,
    baseline: Option<PathBuf>,
    only: Option<String>,
    explain: Option<String>,
    panic_inventory: bool,
    list_rules: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

/// Longer per-family guidance for `--explain`, beyond the one-liners in
/// [`RULES`]. Keyed by rule-id prefix.
const EXPLAIN: &[(&str, &str)] = &[
    (
        "D",
        "Determinism: identical inputs must produce byte-identical runs. Wall-clock\n\
         reads, `rand`, and hash-order iteration all smuggle nondeterminism into\n\
         simulated state. Fix by sourcing time from simulated cycles, randomness from\n\
         the seeded generators, and by sorting before iterating hash containers.",
    ),
    (
        "P",
        "Panic surface: kernel library code returns typed errors; a panic mid-run\n\
         discards the simulation and poisons the runner's shared locks. Replace\n\
         unwrap/expect with `?`-propagation, prove panics impossible with types, or\n\
         justify truly-unreachable sites with a pragma.",
    ),
    (
        "N",
        "Narrowing: cycle counts and addresses are 64-bit. An `as u32` silently wraps\n\
         after ~4e9 cycles — long windows are exactly the workloads the fast-forward\n\
         engine targets. Keep 64-bit width end to end.",
    ),
    (
        "M",
        "Metric/doc drift: docs/METRICS.md is the user contract for artifact files.\n\
         M001 means code registers a metric the doc doesn't list; M002 the reverse.\n\
         Fix the table, not the gate.",
    ),
    (
        "S",
        "Scenario-schema drift: docs/SCENARIOS.md must match the parser's\n\
         ACCEPTED_KEYS in both directions, so the declarative frontend's docs never\n\
         lie about what a scenario file may contain.",
    ),
    (
        "L",
        "Lock discipline, judged through the workspace call graph. L001: two sites\n\
         acquire the same pair of locks in opposite orders — a deadlock cycle waiting\n\
         for contention. L002: a guard is held across file/network I/O, serializing\n\
         every other thread behind a disk write; hoist the lock into a small helper\n\
         that returns the data and drop it before the I/O. L003: a call path can\n\
         re-acquire a lock the caller already holds (std mutexes are not reentrant).\n\
         A guard is assumed held to the end of the enclosing function unless\n\
         `drop(guard)` releases it earlier.",
    ),
    (
        "H",
        "Hot-path purity: nothing reachable from System::tick / mc_slice /\n\
         fast_forward_to / Core::cycle / MemoryController::tick may allocate (H001)\n\
         or clone containers (H002) in steady state — PR 6/8's allocation-free\n\
         structure, now enforced. Constructors (`new`, `with_*`, `from_*`, `for_*`)\n\
         are exempt. Amortized or epoch-boundary allocations take a reasoned pragma.",
    ),
    (
        "R",
        "Panic reachability: P001–P004 sites propagate through the call graph to\n\
         every public API; docs/PANICS.md is the committed inventory. R001 = an API\n\
         can panic but is undocumented (add a row, or remove the panic); R002 = a\n\
         documented row no longer panics (delete it). Regenerate the table with\n\
         `simlint --panic-inventory`.",
    ),
    (
        "X",
        "Pragma hygiene: X001 flags malformed `simlint::allow` pragmas; X002 flags\n\
         well-formed pragmas whose rule no longer fires on the target line, so\n\
         suppressions can't silently outlive the code they excused.",
    ),
];

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        baseline: None,
        only: None,
        explain: None,
        panic_inventory: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().as_deref() {
                Some("text") => args.format = Format::Text,
                Some("json") => args.format = Format::Json,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--only" => {
                let v = it.next().ok_or("--only needs a rule id (e.g. L002)")?;
                args.only = Some(v.to_ascii_uppercase());
            }
            "--explain" => {
                let v = it.next().ok_or("--explain needs a rule id (e.g. H001)")?;
                args.explain = Some(v.to_ascii_uppercase());
            }
            "--panic-inventory" => args.panic_inventory = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "simlint [--root DIR] [--format text|json] [--baseline FILE]\n\
                     \x20       [--only RULE] [--explain RULE] [--panic-inventory] [--list-rules]\n\
                     \n\
                     Static analysis for the stacksim workspace: determinism (D), panic\n\
                     surface (P), narrowing (N), metric/doc drift (M), scenario drift (S),\n\
                     lock discipline (L), hot-path purity (H), panic reachability (R) and\n\
                     pragma hygiene (X). See docs/LINTS.md for rule ids, pragmas, the\n\
                     baseline format and the call-graph conservatism notes.\n\
                     --panic-inventory prints the docs/PANICS.md table body.\n\
                     Exit codes: 0 clean, 1 findings, 2 error."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

/// Resolves the workspace root from `--root` or the current directory.
fn resolve_root(arg: Option<PathBuf>) -> Option<PathBuf> {
    arg.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| engine::find_workspace_root(&d))
    })
}

/// Builds the call graph alone (no rules) for `--panic-inventory`.
fn print_panic_inventory(root: &PathBuf) -> Result<(), String> {
    let crates_dir = root.join("crates");
    let mut files: Vec<(String, SourceFile)> = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut stack = vec![src];
        let mut paths: Vec<PathBuf> = Vec::new();
        while let Some(dir) = stack.pop() {
            for entry in
                std::fs::read_dir(&dir).map_err(|e| format!("read {}: {e}", dir.display()))?
            {
                let path = entry.map_err(|e| e.to_string())?.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    paths.push(path);
                }
            }
        }
        paths.sort();
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path).map_err(|e| format!("read {rel}: {e}"))?;
            files.push((crate_name.clone(), SourceFile::parse(&rel, &text)));
        }
    }
    let refs: Vec<(String, &SourceFile)> = files.iter().map(|(k, f)| (k.clone(), f)).collect();
    let graph = CallGraph::build(&refs);
    print!(
        "{}",
        wsrules::inventory_markdown(&wsrules::panic_inventory(&graph))
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for (id, desc) in RULES {
            println!("{id}  {desc}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(rule) = &args.explain {
        let Some((id, desc)) = RULES.iter().find(|(id, _)| id == rule) else {
            eprintln!("simlint: unknown rule '{rule}' (see --list-rules)");
            return ExitCode::from(2);
        };
        println!("{id}: {desc}\n");
        if let Some((_, text)) = EXPLAIN.iter().find(|(p, _)| rule.starts_with(p)) {
            println!("{text}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(only) = &args.only {
        if !RULES.iter().any(|(id, _)| id == only) {
            eprintln!("simlint: unknown rule '{only}' (see --list-rules)");
            return ExitCode::from(2);
        }
    }
    let root = match resolve_root(args.root) {
        Some(r) => r,
        None => {
            eprintln!("simlint: no workspace root found (use --root)");
            return ExitCode::from(2);
        }
    };
    if args.panic_inventory {
        return match print_panic_inventory(&root) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("simlint: {e}");
                ExitCode::from(2)
            }
        };
    }
    let opts = Options {
        baseline: args.baseline,
    };
    let mut report = match engine::scan(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(only) = &args.only {
        report.findings.retain(|f| &f.rule == only);
    }
    match args.format {
        Format::Text => print!("{}", report.to_text()),
        Format::Json => print!("{}", report.to_json()),
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
