//! The `simlint` binary: scans the workspace and reports findings.
//!
//! ```text
//! simlint [--root DIR] [--format text|json] [--baseline FILE] [--list-rules]
//! ```
//!
//! Exit codes: 0 = clean, 1 = unbaselined findings, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use stacksim_simlint::{engine, Options, RULES};

struct Args {
    root: Option<PathBuf>,
    format: Format,
    baseline: Option<PathBuf>,
    list_rules: bool,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        baseline: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().as_deref() {
                Some("text") => args.format = Format::Text,
                Some("json") => args.format = Format::Json,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "simlint [--root DIR] [--format text|json] [--baseline FILE] [--list-rules]\n\
                     \n\
                     Static analysis for the stacksim workspace: determinism (D), panic\n\
                     surface (P), narrowing (N) and metric/doc drift (M) rules. See\n\
                     docs/LINTS.md for rule ids, pragmas and the baseline format.\n\
                     Exit codes: 0 clean, 1 findings, 2 error."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for (id, desc) in RULES {
            println!("{id}  {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| engine::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("simlint: no workspace root found (use --root)");
            return ExitCode::from(2);
        }
    };
    let opts = Options {
        baseline: args.baseline,
    };
    let report = match engine::scan(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };
    match args.format {
        Format::Text => print!("{}", report.to_text()),
        Format::Json => print!("{}", report.to_json()),
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
