//! `stacksim-serve` — the simulation-as-a-service daemon.
//!
//! ```sh
//! cargo run -p stacksim-serve --release --bin stacksim-serve -- [OPTIONS]
//! ```
//!
//! Options:
//!
//! * `--addr <ip:port>` — bind address (default `127.0.0.1:7878`; port
//!   `0` picks an ephemeral port). The actual bound address is printed
//!   on stdout as `stacksim-serve listening on <addr>`.
//! * `--store <dir>` — durable result store directory (created if
//!   absent). Without it the daemon still memoizes in-process, but
//!   results die with it.
//! * `--store-max-entries <n>` — bound the store to `n` envelopes,
//!   evicting oldest-first.
//! * `--machines <dir>` — preload every scenario file in `<dir>` so
//!   queries can name machines (`"machine": "16core-dual-stack"`) or
//!   address them by scenario hash; the shipped `scenarios/` directory
//!   is picked up automatically when present. The six built-in machines
//!   are always available.
//! * `--jobs <n>` — worker threads per query batch (default: all cores).
//!
//! Endpoints (`docs/STORE.md` has the full schema and a `curl` example):
//! `POST /query`, `GET /stats`, `GET /healthz`.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;

use stacksim::runner;
use stacksim_serve::{handle_connection, ServerState};
use stacksim_store::Store;

struct Options {
    addr: String,
    store: Option<PathBuf>,
    store_max_entries: Option<usize>,
    machines: Option<PathBuf>,
    jobs: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:7878".to_string(),
        store: None,
        store_max_entries: None,
        machines: None,
        jobs: runner::default_jobs(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.addr = args.next().ok_or("--addr needs an ip:port")?,
            "--store" => {
                opts.store = Some(PathBuf::from(
                    args.next().ok_or("--store needs a directory")?,
                ));
            }
            "--store-max-entries" => {
                let n = args.next().ok_or("--store-max-entries needs a count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--store-max-entries: '{n}' is not a number"))?;
                opts.store_max_entries = Some(n);
            }
            "--machines" => {
                opts.machines = Some(PathBuf::from(
                    args.next().ok_or("--machines needs a scenario directory")?,
                ));
            }
            "--jobs" => {
                let n = args.next().ok_or("--jobs needs a thread count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--jobs: '{n}' is not a number"))?;
                if n == 0 {
                    return Err("--jobs must be positive".to_string());
                }
                opts.jobs = n;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("stacksim-serve: {e}");
            eprintln!(
                "usage: stacksim-serve [--addr <ip:port>] [--store <dir>] \
                 [--store-max-entries <n>] [--machines <dir>] [--jobs <n>]"
            );
            std::process::exit(2);
        }
    };

    let store = match &opts.store {
        Some(dir) => match Store::open(dir) {
            Ok(store) => Some(Arc::new(store.with_max_entries(opts.store_max_entries))),
            Err(e) => {
                eprintln!("stacksim-serve: {e}");
                std::process::exit(1);
            }
        },
        None => None,
    };
    if let Some(store) = &store {
        runner::set_result_store(Some(store.clone()));
    }

    // Machine registry: explicit --machines, else the shipped scenarios/
    // directory when present (same auto-detection as `reproduce`).
    let machines_dir = opts.machines.clone().or_else(|| {
        let shipped = PathBuf::from("scenarios");
        shipped.is_dir().then_some(shipped)
    });
    let state = match ServerState::new(machines_dir.as_deref(), store, opts.jobs) {
        Ok(state) => Arc::new(state),
        Err(e) => {
            eprintln!("stacksim-serve: {e}");
            std::process::exit(1);
        }
    };

    let listener = match TcpListener::bind(&opts.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("stacksim-serve: bind {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("stacksim-serve listening on {addr}"),
        Err(_) => println!("stacksim-serve listening on {}", opts.addr),
    }
    eprintln!(
        "machines: {} | store: {} | jobs: {}",
        state.machine_names().join(", "),
        opts.store
            .as_deref()
            .map_or("(none)".to_string(), |d| d.display().to_string()),
        opts.jobs
    );

    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let state = state.clone();
                std::thread::spawn(move || handle_connection(stream, &state));
            }
            Err(e) => eprintln!("stacksim-serve: accept: {e}"),
        }
    }
}
