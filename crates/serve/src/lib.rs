//! The `stacksim-serve` daemon: scenario-space queries over HTTP/1.1,
//! answered from the two-tier result cache.
//!
//! The daemon wraps the existing parallel runner and the durable
//! [`stacksim_store::Store`] behind a small, hand-rolled HTTP/1.1 server
//! (`std::net::TcpListener`, zero external dependencies — the same
//! no-parser-deps style as the repo's JSON module). A query names a
//! machine (inline scenario document, preloaded scenario name, or
//! scenario hash), a batch of mixes and a run window; the daemon
//! schedules only the cache-missing points across the
//! [`ParallelRunner`](stacksim::runner::ParallelRunner) workers, streams
//! one progress event per point as it completes (chunked transfer
//! encoding), and finishes with the full metric trees. Results computed
//! for one client are served to every later one — and, through the
//! store, to every later *process* — as a lookup.
//!
//! Endpoints, the query schema and a worked `curl` example are
//! documented in `docs/STORE.md`; `tests/serve.rs` drives a live daemon
//! end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use stacksim::runner::{self, parallel_map, RunConfig, RunPoint, RunResult, RunSource};
use stacksim::scenario::{Machines, Scenario, ScenarioHash, MACHINE_FILES};
use stacksim::SystemConfig;
use stacksim_stats::Json;
use stacksim_store::Store;
use stacksim_workload::Mix;

/// Schema marker of the final `result` event of a `/query` response.
pub const RESULT_SCHEMA: &str = "stacksim-serve-result/1";

/// Schema marker of the `/stats` document.
pub const STATS_SCHEMA: &str = "stacksim-serve-stats/1";

/// Everything the connection threads share: the machine registry, the
/// optional durable store handle (for `/stats`; the runner holds its own
/// reference), the worker count, and request accounting.
pub struct ServerState {
    machines: Vec<(String, SystemConfig)>,
    store: Option<Arc<Store>>,
    jobs: usize,
    requests: AtomicU64,
    queries: AtomicU64,
    points: AtomicU64,
}

impl ServerState {
    /// Builds the state: the six built-in machines under their canonical
    /// names, plus every scenario file of `extra_dir` (if given) under
    /// its scenario name.
    ///
    /// # Errors
    ///
    /// Returns the scenario error message if `extra_dir` is given but a
    /// file in it fails to parse.
    pub fn new(
        extra_dir: Option<&std::path::Path>,
        store: Option<Arc<Store>>,
        jobs: usize,
    ) -> Result<ServerState, String> {
        let builtin = Machines::builtin();
        let mut machines: Vec<(String, SystemConfig)> = MACHINE_FILES
            .iter()
            .zip([
                &builtin.m2d,
                &builtin.m3d,
                &builtin.m3d_wide,
                &builtin.m3d_fast,
                &builtin.dual_mc,
                &builtin.quad_mc,
            ])
            .map(|(file, cfg)| {
                let name = file.trim_end_matches(".json").to_string();
                (name, cfg.clone())
            })
            .collect();
        if let Some(dir) = extra_dir {
            let entries = std::fs::read_dir(dir)
                .map_err(|e| format!("machines directory {}: {e}", dir.display()))?;
            let mut files: Vec<std::path::PathBuf> = entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "json"))
                .collect();
            files.sort();
            for path in files {
                let scenario = Scenario::from_path(&path).map_err(|e| e.to_string())?;
                machines.retain(|(name, _)| *name != scenario.name);
                machines.push((scenario.name, scenario.config));
            }
        }
        Ok(ServerState {
            machines,
            store,
            jobs,
            requests: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            points: AtomicU64::new(0),
        })
    }

    /// The preloaded machine names, for error messages and `/stats`.
    pub fn machine_names(&self) -> Vec<&str> {
        self.machines.iter().map(|(n, _)| n.as_str()).collect()
    }

    fn machine_by_name(&self, name: &str) -> Option<&SystemConfig> {
        self.machines
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, cfg)| cfg)
    }

    fn machine_by_hash(&self, hash: &str) -> Option<&SystemConfig> {
        self.machines
            .iter()
            .find(|(_, cfg)| ScenarioHash::of(cfg).to_string() == hash)
            .map(|(_, cfg)| cfg)
    }
}

/// A parsed HTTP/1.1 request: the request line plus a `Content-Length`
/// body (the only body framing the daemon accepts).
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, query string included.
    pub path: String,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Reads one request off a buffered stream.
///
/// # Errors
///
/// Returns a message describing the framing problem (malformed request
/// line, unreadable headers, short body).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(format!("malformed request line {line:?}"));
    };
    let (method, path) = (method.to_string(), path.to_string());
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("header line: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {value:?}"))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body: {e}"))?;
    Ok(Request { method, path, body })
}

fn write_plain_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Writes one chunk of a chunked-transfer response.
fn write_chunk(stream: &mut TcpStream, data: &str) -> std::io::Result<()> {
    write!(stream, "{:x}\r\n{data}\r\n", data.len())?;
    stream.flush()
}

/// A validated `/query`: the machine, the mixes to run on it, and the
/// window.
#[derive(Debug)]
pub struct Query {
    /// The machine to simulate.
    pub config: SystemConfig,
    /// Human-facing machine label echoed in the result event.
    pub machine_label: String,
    /// The batch of mixes.
    pub mixes: Vec<&'static Mix>,
    /// The run window (tracing always off; the store cannot serve traced
    /// runs).
    pub run: RunConfig,
}

impl Query {
    /// Parses and validates a `/query` body against the machine registry.
    ///
    /// # Errors
    ///
    /// Returns a client-facing message for malformed JSON, an unknown
    /// machine or mix, or a bad window.
    pub fn parse(state: &ServerState, body: &[u8]) -> Result<Query, String> {
        let text = std::str::from_utf8(body).map_err(|_| "query body is not UTF-8".to_string())?;
        let doc = Json::parse(text).map_err(|e| format!("query body: {e}"))?;

        let (config, machine_label) =
            match (doc.get("scenario"), doc.get("machine"), doc.get("hash")) {
                (Some(inline), None, None) => {
                    // Re-serialize the inline subdocument and run it through
                    // the ordinary scenario front end: same schema checks,
                    // same error texts.
                    let scenario =
                        Scenario::from_str(&inline.to_string()).map_err(|e| e.to_string())?;
                    (scenario.config, scenario.name)
                }
                (None, Some(name), None) => {
                    let name = name
                        .as_str()
                        .ok_or("query 'machine' must be a string".to_string())?;
                    let cfg = state.machine_by_name(name).ok_or_else(|| {
                        format!(
                            "unknown machine '{name}' (known: {})",
                            state.machine_names().join(", ")
                        )
                    })?;
                    (cfg.clone(), name.to_string())
                }
                (None, None, Some(hash)) => {
                    let hash = hash
                        .as_str()
                        .ok_or("query 'hash' must be a string".to_string())?;
                    let cfg = state
                        .machine_by_hash(hash)
                        .ok_or_else(|| format!("no preloaded machine has scenario hash {hash}"))?;
                    (cfg.clone(), hash.to_string())
                }
                _ => {
                    return Err(
                        "query must name its machine with exactly one of 'scenario' (inline \
                     document), 'machine' (preloaded name) or 'hash' (scenario hash)"
                            .to_string(),
                    )
                }
            };

        let mixes = doc
            .get("mixes")
            .and_then(Json::as_arr)
            .ok_or("query 'mixes' missing or not an array")?;
        if mixes.is_empty() {
            return Err("query 'mixes' is empty".to_string());
        }
        let mixes = mixes
            .iter()
            .map(|m| {
                let name = m.as_str().ok_or("query 'mixes' entry is not a string")?;
                Mix::by_name(name).ok_or_else(|| format!("unknown mix '{name}'"))
            })
            .collect::<Result<Vec<_>, String>>()?;

        let mut run = RunConfig::quick();
        if let Some(window) = doc.get("window") {
            let field = |key: &str, default: u64| -> Result<u64, String> {
                match window.get(key) {
                    None => Ok(default),
                    Some(v) => parse_u64(v).ok_or_else(|| {
                        format!("window '{key}' must be a non-negative integer or hex string")
                    }),
                }
            };
            run.warmup_cycles = field("warmup_cycles", run.warmup_cycles)?;
            run.measure_cycles = field("measure_cycles", run.measure_cycles)?;
            run.seed = field("seed", run.seed)?;
            if run.measure_cycles == 0 {
                return Err("window 'measure_cycles' must be positive".to_string());
            }
        }
        Ok(Query {
            config,
            machine_label,
            mixes,
            run,
        })
    }
}

/// Accepts a JSON number or a `0x`-prefixed hex string (64-bit seeds do
/// not survive the JSON number grammar losslessly).
fn parse_u64(v: &Json) -> Option<u64> {
    if let Some(n) = v.as_f64() {
        return (n >= 0.0 && n.fract() == 0.0 && n < 9.0e15).then_some(n as u64);
    }
    let s = v.as_str()?;
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// One `/query` point's result serialized for the final `result` event.
fn point_json(mix: &str, result: &RunResult) -> Json {
    Json::Obj(vec![
        ("mix".into(), Json::Str(mix.to_string())),
        ("hmipc".into(), Json::Num(result.hmipc)),
        (
            "per_core_ipc".into(),
            Json::Arr(result.per_core_ipc.iter().map(|&v| Json::Num(v)).collect()),
        ),
        (
            "committed".into(),
            Json::Arr(
                result
                    .committed
                    .iter()
                    .map(|&c| Json::Num(c as f64))
                    .collect(),
            ),
        ),
        ("metrics".into(), result.stats.to_json()),
    ])
}

/// Handles one connection: parse, route, respond, close.
pub fn handle_connection(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    let request = match read_request(&mut reader) {
        Ok(r) => r,
        Err(e) => {
            let _ = write_plain_response(
                &mut stream,
                "400 Bad Request",
                "text/plain",
                &format!("{e}\n"),
            );
            return;
        }
    };
    state.requests.fetch_add(1, Ordering::Relaxed);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = write_plain_response(&mut stream, "200 OK", "text/plain", "ok\n");
        }
        ("GET", "/stats") => {
            let _ = write_plain_response(
                &mut stream,
                "200 OK",
                "application/json",
                &(stats_json(state).pretty()),
            );
        }
        ("POST", "/query") => match Query::parse(state, &request.body) {
            Ok(query) => {
                state.queries.fetch_add(1, Ordering::Relaxed);
                state
                    .points
                    .fetch_add(query.mixes.len() as u64, Ordering::Relaxed);
                let _ = stream_query(&mut stream, state, &query);
            }
            Err(e) => {
                let _ = write_plain_response(
                    &mut stream,
                    "400 Bad Request",
                    "text/plain",
                    &format!("{e}\n"),
                );
            }
        },
        _ => {
            let _ = write_plain_response(
                &mut stream,
                "404 Not Found",
                "text/plain",
                "known endpoints: GET /healthz, GET /stats, POST /query\n",
            );
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// The `/stats` document: runner tier counters, memo size, request
/// accounting, and (when a store is attached) the store's own counters.
fn stats_json(state: &ServerState) -> Json {
    let (store_hits, store_misses, simulated) = runner::tier_stats();
    let mut members = vec![
        ("schema".into(), Json::Str(STATS_SCHEMA.into())),
        (
            "requests".into(),
            Json::Num(state.requests.load(Ordering::Relaxed) as f64),
        ),
        (
            "queries".into(),
            Json::Num(state.queries.load(Ordering::Relaxed) as f64),
        ),
        (
            "points".into(),
            Json::Num(state.points.load(Ordering::Relaxed) as f64),
        ),
        ("store_hits".into(), Json::Num(store_hits as f64)),
        ("store_misses".into(), Json::Num(store_misses as f64)),
        ("simulated".into(), Json::Num(simulated as f64)),
        ("memo_len".into(), Json::Num(runner::memo_len() as f64)),
        (
            "machines".into(),
            Json::Arr(
                state
                    .machines
                    .iter()
                    .map(|(n, _)| Json::Str(n.clone()))
                    .collect(),
            ),
        ),
    ];
    if let Some(store) = &state.store {
        let s = store.stats();
        members.push((
            "store".into(),
            Json::Obj(vec![
                (
                    "entries".into(),
                    Json::Num(store.len().map_or(-1.0, |n| n as f64)),
                ),
                ("load_hits".into(), Json::Num(s.load_hits as f64)),
                ("load_misses".into(), Json::Num(s.load_misses as f64)),
                ("writes".into(), Json::Num(s.writes as f64)),
                ("quarantined".into(), Json::Num(s.quarantined as f64)),
                ("evicted".into(), Json::Num(s.evicted as f64)),
            ]),
        ));
    }
    Json::Obj(members)
}

/// Streams a query's answer: HTTP headers, then one chunked ndjson
/// `point` event per completed point (in completion order), then the
/// final `result` event with every metric tree (in request order), then
/// the terminating chunk.
fn stream_query(stream: &mut TcpStream, state: &ServerState, query: &Query) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;

    let points: Vec<RunPoint> = query
        .mixes
        .iter()
        .map(|&mix| (query.config.clone(), mix, query.run))
        .collect();
    let total = points.len();

    // Workers drain the batch through the memoizing runner (cache-missing
    // points simulate, everything else is a lookup) and report each
    // completed point through the channel; this thread streams events in
    // completion order while the batch is still running.
    let (tx, rx) = mpsc::channel();
    let jobs = state.jobs;
    let mut io_error: Option<std::io::Error> = None;
    let results = std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            parallel_map(jobs, &points, |(cfg, mix, run)| {
                let outcome = runner::run_mix_cached_with_source(cfg, mix, run);
                let event = match &outcome {
                    Ok((result, source)) => (mix.name, source.label(), Ok(result.hmipc)),
                    Err(e) => (mix.name, "error", Err(e.to_string())),
                };
                let _ = tx.send(event);
                outcome
            })
        });
        let mut done = 0usize;
        // The sender lives in the worker closure; every completed point
        // yields exactly one event, so read exactly `total`. A client
        // that hung up stops the event stream but not the batch — the
        // computed results still land in the memo and the store.
        while done < total {
            let Ok((mix, source, outcome)) = rx.recv() else {
                break;
            };
            done += 1;
            if io_error.is_some() {
                continue;
            }
            let mut members = vec![
                ("event".into(), Json::Str("point".into())),
                ("mix".into(), Json::Str(mix.into())),
                ("source".into(), Json::Str(source.into())),
                ("done".into(), Json::Num(done as f64)),
                ("total".into(), Json::Num(total as f64)),
            ];
            match outcome {
                Ok(hmipc) => members.push(("hmipc".into(), Json::Num(hmipc))),
                Err(e) => members.push(("error".into(), Json::Str(e))),
            }
            let line = format!("{}\n", Json::Obj(members));
            if let Err(e) = write_chunk(stream, &line) {
                io_error = Some(e);
            }
        }
        handle.join().unwrap_or_default()
    });
    if let Some(e) = io_error {
        return Err(e);
    }

    let mut point_results = Vec::with_capacity(total);
    let mut errors = Vec::new();
    for (mix, outcome) in query.mixes.iter().zip(results) {
        match outcome {
            Ok((result, _)) => point_results.push(point_json(mix.name, &result)),
            Err(e) => errors.push(Json::Obj(vec![
                ("mix".into(), Json::Str(mix.name.into())),
                ("error".into(), Json::Str(e.to_string())),
            ])),
        }
    }
    let mut members = vec![
        ("event".into(), Json::Str("result".into())),
        ("schema".into(), Json::Str(RESULT_SCHEMA.into())),
        ("machine".into(), Json::Str(query.machine_label.clone())),
        (
            "scenario_hash".into(),
            Json::Str(ScenarioHash::of(&query.config).to_string()),
        ),
        (
            "window".into(),
            Json::Obj(vec![
                (
                    "warmup_cycles".into(),
                    Json::Num(query.run.warmup_cycles as f64),
                ),
                (
                    "measure_cycles".into(),
                    Json::Num(query.run.measure_cycles as f64),
                ),
                ("seed".into(), Json::Str(format!("{:#x}", query.run.seed))),
            ]),
        ),
        ("results".into(), Json::Arr(point_results)),
    ];
    if !errors.is_empty() {
        members.push(("errors".into(), Json::Arr(errors)));
    }
    let line = format!("{}\n", Json::Obj(members));
    write_chunk(stream, &line)?;
    // Terminating chunk.
    write!(stream, "0\r\n\r\n")?;
    stream.flush()
}

/// Keeps `RunSource` referenced from the library surface (the daemon's
/// event labels are its `label()` strings).
pub fn source_labels() -> [&'static str; 3] {
    [
        RunSource::Memo.label(),
        RunSource::Store.label(),
        RunSource::Simulated.label(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ServerState {
        ServerState::new(None, None, 1).unwrap()
    }

    #[test]
    fn query_parses_machine_name_and_window() {
        let body = br#"{"machine": "2d", "mixes": ["M1", "VH1"],
                        "window": {"warmup_cycles": 1000, "measure_cycles": 5000, "seed": "0xBEEF"}}"#;
        let q = Query::parse(&state(), body).unwrap();
        assert_eq!(q.machine_label, "2d");
        assert_eq!(q.mixes.len(), 2);
        assert_eq!(q.run.warmup_cycles, 1000);
        assert_eq!(q.run.measure_cycles, 5000);
        assert_eq!(q.run.seed, 0xBEEF);
        assert!(!q.run.trace.any());
    }

    #[test]
    fn query_rejects_unknown_names_and_shapes() {
        let s = state();
        for (body, needle) in [
            (&br#"{"mixes": ["M1"]}"#[..], "exactly one of"),
            (&br#"{"machine": "2d"}"#[..], "mixes"),
            (&br#"{"machine": "2d", "mixes": []}"#[..], "empty"),
            (
                &br#"{"machine": "nope", "mixes": ["M1"]}"#[..],
                "unknown machine",
            ),
            (
                &br#"{"machine": "2d", "mixes": ["nope"]}"#[..],
                "unknown mix",
            ),
            (b"not json", "query body"),
        ] {
            let err = Query::parse(&s, body).unwrap_err();
            assert!(err.contains(needle), "{err:?} should contain {needle:?}");
        }
    }

    #[test]
    fn query_accepts_scenario_hash_of_preloaded_machine() {
        let s = state();
        let hash = ScenarioHash::of(&stacksim::configs::cfg_3d()).to_string();
        let body = format!(r#"{{"hash": "{hash}", "mixes": ["M1"]}}"#);
        let q = Query::parse(&s, body.as_bytes()).unwrap();
        assert_eq!(q.machine_label, hash);
        assert_eq!(q.config, stacksim::configs::cfg_3d());
    }

    #[test]
    fn stats_document_is_well_formed() {
        let doc = stats_json(&state());
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(STATS_SCHEMA));
        assert!(doc.get("simulated").and_then(Json::as_f64).is_some());
        assert_eq!(source_labels(), ["memo", "store", "computed"]);
    }
}
