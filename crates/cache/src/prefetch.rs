//! Hardware prefetchers (Table 1: next-line everywhere, IP-based stride at
//! the DL1 and L2, after Intel's Smart Memory Access).

use stacksim_types::LineAddr;

/// A hardware prefetcher observing the demand-access stream.
pub trait Prefetcher {
    /// Observes one demand access (`pc` of the memory µop and the accessed
    /// line) and appends the lines to prefetch, if any, to `out`. This is
    /// the hot-path form: it runs on every demand access, so callers keep
    /// a reusable buffer instead of allocating per call.
    fn observe_into(&mut self, pc: u64, line: LineAddr, out: &mut Vec<LineAddr>);

    /// Convenience form of [`observe_into`](Self::observe_into) returning a
    /// fresh vector (tests and examples; the simulator uses the buffered
    /// form).
    fn observe(&mut self, pc: u64, line: LineAddr) -> Vec<LineAddr> {
        let mut out = Vec::new();
        self.observe_into(pc, line, &mut out);
        out
    }

    /// Prefetch candidates issued so far.
    fn issued(&self) -> u64;
}

/// Prefetches the next sequential line on every demand access.
///
/// # Examples
///
/// ```
/// use stacksim_cache::{NextLinePrefetcher, Prefetcher};
/// use stacksim_types::LineAddr;
///
/// let mut pf = NextLinePrefetcher::new(1);
/// assert_eq!(pf.observe(0, LineAddr::new(10)), vec![LineAddr::new(11)]);
/// ```
#[derive(Clone, Debug)]
pub struct NextLinePrefetcher {
    degree: usize,
    issued: u64,
}

impl NextLinePrefetcher {
    /// Creates a next-line prefetcher fetching `degree` lines ahead.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: usize) -> Self {
        assert!(degree > 0, "prefetch degree must be non-zero");
        NextLinePrefetcher { degree, issued: 0 }
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn observe_into(&mut self, _pc: u64, line: LineAddr, out: &mut Vec<LineAddr>) {
        out.extend((1..=self.degree as i64).map(|d| line.offset(d)));
        self.issued += self.degree as u64;
    }

    fn issued(&self) -> u64 {
        self.issued
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    pc: u64,
    valid: bool,
    last_line: u64,
    stride: i64,
    confidence: u8,
}

/// An IP-indexed stride prefetcher.
///
/// Tracks, per instruction pointer, the stride between successive accesses;
/// once the same stride repeats enough times (2-bit confidence), it
/// prefetches `degree` strides ahead.
///
/// # Examples
///
/// ```
/// use stacksim_cache::{Prefetcher, StridePrefetcher};
/// use stacksim_types::LineAddr;
///
/// let mut pf = StridePrefetcher::new(64, 1);
/// for i in 0..3 {
///     pf.observe(0x400, LineAddr::new(i * 4));
/// }
/// // Stride 4 established: the next access triggers a prefetch of +4.
/// let out = pf.observe(0x400, LineAddr::new(12));
/// assert_eq!(out, vec![LineAddr::new(16)]);
/// ```
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    degree: usize,
    issued: u64,
}

impl StridePrefetcher {
    /// Confidence threshold at which prefetches fire.
    const THRESHOLD: u8 = 2;
    /// Saturation value of the confidence counter.
    const MAX_CONFIDENCE: u8 = 3;

    /// Creates a stride prefetcher with `entries` table slots, fetching
    /// `degree` strides ahead.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `degree` is zero.
    pub fn new(entries: usize, degree: usize) -> Self {
        assert!(
            entries > 0 && degree > 0,
            "entries and degree must be non-zero"
        );
        StridePrefetcher {
            table: vec![StrideEntry::default(); entries],
            degree,
            issued: 0,
        }
    }
}

impl Prefetcher for StridePrefetcher {
    fn observe_into(&mut self, pc: u64, line: LineAddr, out: &mut Vec<LineAddr>) {
        let idx = (pc % self.table.len() as u64) as usize;
        let entry = &mut self.table[idx];
        if !entry.valid || entry.pc != pc {
            *entry = StrideEntry {
                pc,
                valid: true,
                last_line: line.index(),
                stride: 0,
                confidence: 0,
            };
            return;
        }
        let delta = line.index() as i64 - entry.last_line as i64;
        entry.last_line = line.index();
        if delta == 0 {
            // Same line again (different word): no stride information.
            return;
        }
        if delta == entry.stride {
            entry.confidence = (entry.confidence + 1).min(Self::MAX_CONFIDENCE);
        } else {
            entry.stride = delta;
            entry.confidence = 0;
            return;
        }
        if entry.confidence < Self::THRESHOLD {
            return;
        }
        let stride = entry.stride;
        out.extend((1..=self.degree as i64).map(|d| line.offset(stride * d)));
        self.issued += self.degree as u64;
    }

    fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_multi_degree() {
        let mut pf = NextLinePrefetcher::new(2);
        let out = pf.observe(0, LineAddr::new(100));
        assert_eq!(out, vec![LineAddr::new(101), LineAddr::new(102)]);
        assert_eq!(pf.issued(), 2);
    }

    #[test]
    fn stride_needs_confidence() {
        let mut pf = StridePrefetcher::new(16, 1);
        assert!(pf.observe(1, LineAddr::new(0)).is_empty()); // learn entry
        assert!(pf.observe(1, LineAddr::new(3)).is_empty()); // stride=3, conf=0
        assert!(pf.observe(1, LineAddr::new(6)).is_empty()); // conf=1
        let out = pf.observe(1, LineAddr::new(9)); // conf=2 -> fire
        assert_eq!(out, vec![LineAddr::new(12)]);
    }

    #[test]
    fn stride_handles_negative_strides() {
        let mut pf = StridePrefetcher::new(16, 1);
        for i in (0..5).rev() {
            pf.observe(2, LineAddr::new(100 + i * 2));
        }
        let out = pf.observe(2, LineAddr::new(98));
        assert_eq!(out, vec![LineAddr::new(96)]);
    }

    #[test]
    fn changed_stride_resets_confidence() {
        let mut pf = StridePrefetcher::new(16, 1);
        for i in 0..4 {
            pf.observe(3, LineAddr::new(i * 4));
        }
        assert!(pf.observe(3, LineAddr::new(100)).is_empty()); // stride broke
        assert!(pf.observe(3, LineAddr::new(104)).is_empty()); // conf 0 -> building
        assert!(pf.observe(3, LineAddr::new(108)).is_empty()); // conf 1
        assert_eq!(pf.observe(3, LineAddr::new(112)), vec![LineAddr::new(116)]);
    }

    #[test]
    fn pc_aliasing_replaces_entry() {
        let mut pf = StridePrefetcher::new(1, 1);
        pf.observe(1, LineAddr::new(0));
        pf.observe(1, LineAddr::new(4));
        // A different pc maps to the same slot and steals it.
        pf.observe(2, LineAddr::new(0));
        assert!(
            pf.observe(1, LineAddr::new(8)).is_empty(),
            "entry was replaced"
        );
    }

    #[test]
    fn repeated_same_line_is_ignored() {
        let mut pf = StridePrefetcher::new(16, 1);
        pf.observe(4, LineAddr::new(7));
        for _ in 0..10 {
            assert!(pf.observe(4, LineAddr::new(7)).is_empty());
        }
    }
}
