//! A set-associative, write-back, write-allocate cache with true LRU.

use stacksim_stats::StatRecord;
use stacksim_types::LineAddr;

use crate::config::CacheConfig;

/// Result of probing a cache for a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line is present; LRU updated (and dirty bit on writes).
    Hit,
    /// The line is absent. The caller must obtain it (MSHR + memory) and
    /// later call [`SetAssocCache::fill`].
    Miss,
}

/// A line evicted by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether it must be written back to the next level.
    pub dirty: bool,
}

/// Sentinel tag marking an invalid way. No real line reaches it: tags are
/// line indices (physical addresses shifted down by the line-size bits).
const INVALID_TAG: u64 = u64::MAX;

/// A set-associative cache holding tags and metadata only (no data bytes —
/// the simulator tracks timing and movement, not values).
///
/// Misses do **not** allocate; the owner allocates an MSHR, fetches the
/// line, and then calls [`fill`](SetAssocCache::fill). This mirrors the
/// lockup-free pipeline of the simulated machine and keeps "in flight" state
/// in the MSHRs where the paper's §5 analysis needs it.
///
/// Way state lives in flat parallel arrays (`tags` / `dirty` / `last_use`,
/// set *s* at indices `s * assoc .. (s + 1) * assoc`, `INVALID_TAG` for
/// empty ways) rather than per-set `Vec<Way>` structs: `contains` — the
/// single hottest probe in the simulator (every demand access, every
/// prefetch candidate, every inclusion check) — scans `assoc` consecutive
/// words instead of pointer-chasing a nested vector of 32-byte structs.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    set_count: usize,
    assoc: usize,
    tags: Vec<u64>,
    dirty: Vec<bool>,
    last_use: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    fills: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not describe a whole number of sets.
    pub fn new(config: CacheConfig) -> Self {
        let set_count = config.sets();
        let ways = set_count * config.associativity;
        SetAssocCache {
            config,
            set_count,
            assoc: config.associativity,
            tags: vec![INVALID_TAG; ways],
            dirty: vec![false; ways],
            last_use: vec![0; ways],
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
            fills: 0,
        }
    }

    /// The geometry.
    pub const fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Index of the first way of `line`'s set.
    #[inline]
    fn set_base(&self, line: LineAddr) -> usize {
        debug_assert_ne!(line.index(), INVALID_TAG, "line index hit the sentinel");
        (line.index() % self.set_count as u64) as usize * self.assoc
    }

    /// Way index holding `tag` within the set starting at `base`, if any.
    #[inline]
    fn find_way(&self, base: usize, tag: u64) -> Option<usize> {
        self.tags[base..base + self.assoc]
            .iter()
            .position(|&t| t == tag)
            .map(|p| base + p)
    }

    /// Probes for `line`; on a hit updates recency and, for writes, the
    /// dirty bit.
    pub fn access(&mut self, line: LineAddr, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let base = self.set_base(line);
        if let Some(w) = self.find_way(base, line.index()) {
            self.last_use[w] = self.clock;
            self.dirty[w] |= is_write;
            self.hits += 1;
            return AccessOutcome::Hit;
        }
        self.misses += 1;
        AccessOutcome::Miss
    }

    /// Probes without updating any state (for inclusive-hierarchy checks).
    pub fn contains(&self, line: LineAddr) -> bool {
        let base = self.set_base(line);
        self.tags[base..base + self.assoc].contains(&line.index())
    }

    /// Installs `line`, evicting the LRU way of its set if necessary.
    /// Returns the victim if one was evicted; dirty victims must be written
    /// back by the caller.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Victim> {
        self.clock += 1;
        self.fills += 1;
        let base = self.set_base(line);
        let tag = line.index();
        // Refresh in place if the line raced in already.
        if let Some(w) = self.find_way(base, tag) {
            self.last_use[w] = self.clock;
            self.dirty[w] |= dirty;
            return None;
        }
        // First invalid way, else the least recently used (first minimum,
        // matching scan order).
        let (w, evicted) = match self.find_way(base, INVALID_TAG) {
            Some(w) => (w, false),
            None => {
                let set = base..base + self.assoc;
                let w = set
                    .min_by_key(|&w| self.last_use[w])
                    .expect("associativity is non-zero"); // simlint::allow(P002, reason = "the constructor rejects zero associativity, so every set has a way")
                (w, true)
            }
        };
        let victim = evicted.then(|| Victim {
            line: LineAddr::new(self.tags[w]),
            dirty: self.dirty[w],
        });
        if victim.as_ref().is_some_and(|v| v.dirty) {
            self.writebacks += 1;
        }
        self.tags[w] = tag;
        self.dirty[w] = dirty;
        self.last_use[w] = self.clock;
        victim
    }

    /// Removes `line` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let base = self.set_base(line);
        let w = self.find_way(base, line.index())?;
        self.tags[w] = INVALID_TAG;
        Some(self.dirty[w])
    }

    /// Marks `line` dirty if present (write to an already-resident line
    /// discovered through another path).
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let base = self.set_base(line);
        match self.find_way(base, line.index()) {
            Some(w) => {
                self.dirty[w] = true;
                true
            }
            None => false,
        }
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }

    /// Demand hits observed.
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses observed.
    pub const fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions produced.
    pub const fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Exports statistics.
    pub fn stats(&self) -> StatRecord {
        let mut r = StatRecord::new("cache");
        r.set("hits", self.hits as f64);
        r.set("misses", self.misses as f64);
        r.set("fills", self.fills as f64);
        r.set("writebacks", self.writebacks as f64);
        let total = (self.hits + self.misses) as f64;
        if total > 0.0 {
            r.set("miss_rate", self.misses as f64 / total);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways.
        SetAssocCache::new(CacheConfig {
            size_bytes: 4 * 64,
            associativity: 2,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        let line = LineAddr::new(4);
        assert_eq!(c.access(line, false), AccessOutcome::Miss);
        assert_eq!(c.fill(line, false), None);
        assert_eq!(c.access(line, false), AccessOutcome::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds even line indices (mod 2 sets): lines 0, 2, 4.
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(2), false);
        // Touch 0 so 2 becomes LRU.
        assert_eq!(c.access(LineAddr::new(0), false), AccessOutcome::Hit);
        let victim = c.fill(LineAddr::new(4), false).unwrap();
        assert_eq!(victim.line, LineAddr::new(2));
        assert!(!victim.dirty);
        assert!(c.contains(LineAddr::new(0)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(LineAddr::new(0), false);
        assert_eq!(c.access(LineAddr::new(0), true), AccessOutcome::Hit); // dirty now
        c.fill(LineAddr::new(2), false);
        let victim = c.fill(LineAddr::new(4), false).unwrap();
        assert_eq!(victim.line, LineAddr::new(0));
        assert!(victim.dirty);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn fill_of_resident_line_merges() {
        let mut c = tiny();
        c.fill(LineAddr::new(0), false);
        assert_eq!(c.fill(LineAddr::new(0), true), None);
        // Line is now dirty: evicting it reports a writeback.
        c.fill(LineAddr::new(2), false);
        c.access(LineAddr::new(2), false);
        let victim = c.fill(LineAddr::new(4), false).unwrap();
        assert!(victim.dirty);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.fill(LineAddr::new(0), true);
        assert_eq!(c.invalidate(LineAddr::new(0)), Some(true));
        assert_eq!(c.invalidate(LineAddr::new(0)), None);
        assert!(!c.contains(LineAddr::new(0)));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn mark_dirty_only_if_present() {
        let mut c = tiny();
        c.fill(LineAddr::new(0), false);
        assert!(c.mark_dirty(LineAddr::new(0)));
        assert!(!c.mark_dirty(LineAddr::new(2)));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        // Lines 0,2 -> set 0; lines 1,3 -> set 1.
        for l in 0..4 {
            assert!(c.fill(LineAddr::new(l), false).is_none());
        }
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn stats_miss_rate() {
        let mut c = tiny();
        c.access(LineAddr::new(0), false);
        c.fill(LineAddr::new(0), false);
        c.access(LineAddr::new(0), false);
        let s = c.stats();
        assert_eq!(s.get("miss_rate"), Some(0.5));
    }

    #[test]
    fn realistic_l2_geometry_works() {
        let mut c = SetAssocCache::new(CacheConfig::dl2_penryn());
        for l in 0..10_000u64 {
            c.fill(LineAddr::new(l), false);
        }
        assert_eq!(c.occupancy(), 10_000);
    }
}
