//! A set-associative, write-back, write-allocate cache with true LRU.

use stacksim_stats::StatRecord;
use stacksim_types::LineAddr;

use crate::config::CacheConfig;

/// Result of probing a cache for a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line is present; LRU updated (and dirty bit on writes).
    Hit,
    /// The line is absent. The caller must obtain it (MSHR + memory) and
    /// later call [`SetAssocCache::fill`].
    Miss,
}

/// A line evicted by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether it must be written back to the next level.
    pub dirty: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// A set-associative cache holding tags and metadata only (no data bytes —
/// the simulator tracks timing and movement, not values).
///
/// Misses do **not** allocate; the owner allocates an MSHR, fetches the
/// line, and then calls [`fill`](SetAssocCache::fill). This mirrors the
/// lockup-free pipeline of the simulated machine and keeps "in flight" state
/// in the MSHRs where the paper's §5 analysis needs it.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    fills: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not describe a whole number of sets.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        SetAssocCache {
            config,
            sets: vec![vec![Way::default(); config.associativity]; sets],
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
            fills: 0,
        }
    }

    /// The geometry.
    pub const fn config(&self) -> &CacheConfig {
        &self.config
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.index() % self.sets.len() as u64) as usize
    }

    /// Probes for `line`; on a hit updates recency and, for writes, the
    /// dirty bit.
    pub fn access(&mut self, line: LineAddr, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let set = self.set_of(line);
        let tag = line.index();
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.last_use = self.clock;
                way.dirty |= is_write;
                self.hits += 1;
                return AccessOutcome::Hit;
            }
        }
        self.misses += 1;
        AccessOutcome::Miss
    }

    /// Probes without updating any state (for inclusive-hierarchy checks).
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        let tag = line.index();
        self.sets[set].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Installs `line`, evicting the LRU way of its set if necessary.
    /// Returns the victim if one was evicted; dirty victims must be written
    /// back by the caller.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Victim> {
        self.clock += 1;
        self.fills += 1;
        let set = self.set_of(line);
        let tag = line.index();
        // Refresh in place if the line raced in already.
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_use = self.clock;
            way.dirty |= dirty;
            return None;
        }
        let clock = self.clock;
        let victim_way = if let Some(invalid) = self.sets[set].iter_mut().find(|w| !w.valid) {
            invalid
        } else {
            self.sets[set]
                .iter_mut()
                .min_by_key(|w| w.last_use)
                .expect("associativity is non-zero") // simlint::allow(P002, reason = "the constructor rejects zero associativity, so every set has a way")
        };
        let victim = victim_way.valid.then(|| Victim {
            line: LineAddr::new(victim_way.tag),
            dirty: victim_way.dirty,
        });
        if victim.as_ref().is_some_and(|v| v.dirty) {
            self.writebacks += 1;
        }
        *victim_way = Way {
            tag,
            valid: true,
            dirty,
            last_use: clock,
        };
        victim
    }

    /// Removes `line` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set_of(line);
        let tag = line.index();
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.valid = false;
                return Some(way.dirty);
            }
        }
        None
    }

    /// Marks `line` dirty if present (write to an already-resident line
    /// discovered through another path).
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        let tag = line.index();
        for way in &mut self.sets[set] {
            if way.valid && way.tag == tag {
                way.dirty = true;
                return true;
            }
        }
        false
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid).count()
    }

    /// Demand hits observed.
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses observed.
    pub const fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions produced.
    pub const fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Exports statistics.
    pub fn stats(&self) -> StatRecord {
        let mut r = StatRecord::new("cache");
        r.set("hits", self.hits as f64);
        r.set("misses", self.misses as f64);
        r.set("fills", self.fills as f64);
        r.set("writebacks", self.writebacks as f64);
        let total = (self.hits + self.misses) as f64;
        if total > 0.0 {
            r.set("miss_rate", self.misses as f64 / total);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways.
        SetAssocCache::new(CacheConfig {
            size_bytes: 4 * 64,
            associativity: 2,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        let line = LineAddr::new(4);
        assert_eq!(c.access(line, false), AccessOutcome::Miss);
        assert_eq!(c.fill(line, false), None);
        assert_eq!(c.access(line, false), AccessOutcome::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds even line indices (mod 2 sets): lines 0, 2, 4.
        c.fill(LineAddr::new(0), false);
        c.fill(LineAddr::new(2), false);
        // Touch 0 so 2 becomes LRU.
        assert_eq!(c.access(LineAddr::new(0), false), AccessOutcome::Hit);
        let victim = c.fill(LineAddr::new(4), false).unwrap();
        assert_eq!(victim.line, LineAddr::new(2));
        assert!(!victim.dirty);
        assert!(c.contains(LineAddr::new(0)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(LineAddr::new(0), false);
        assert_eq!(c.access(LineAddr::new(0), true), AccessOutcome::Hit); // dirty now
        c.fill(LineAddr::new(2), false);
        let victim = c.fill(LineAddr::new(4), false).unwrap();
        assert_eq!(victim.line, LineAddr::new(0));
        assert!(victim.dirty);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn fill_of_resident_line_merges() {
        let mut c = tiny();
        c.fill(LineAddr::new(0), false);
        assert_eq!(c.fill(LineAddr::new(0), true), None);
        // Line is now dirty: evicting it reports a writeback.
        c.fill(LineAddr::new(2), false);
        c.access(LineAddr::new(2), false);
        let victim = c.fill(LineAddr::new(4), false).unwrap();
        assert!(victim.dirty);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.fill(LineAddr::new(0), true);
        assert_eq!(c.invalidate(LineAddr::new(0)), Some(true));
        assert_eq!(c.invalidate(LineAddr::new(0)), None);
        assert!(!c.contains(LineAddr::new(0)));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn mark_dirty_only_if_present() {
        let mut c = tiny();
        c.fill(LineAddr::new(0), false);
        assert!(c.mark_dirty(LineAddr::new(0)));
        assert!(!c.mark_dirty(LineAddr::new(2)));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        // Lines 0,2 -> set 0; lines 1,3 -> set 1.
        for l in 0..4 {
            assert!(c.fill(LineAddr::new(l), false).is_none());
        }
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn stats_miss_rate() {
        let mut c = tiny();
        c.access(LineAddr::new(0), false);
        c.fill(LineAddr::new(0), false);
        c.access(LineAddr::new(0), false);
        let s = c.stats();
        assert_eq!(s.get("miss_rate"), Some(0.5));
    }

    #[test]
    fn realistic_l2_geometry_works() {
        let mut c = SetAssocCache::new(CacheConfig::dl2_penryn());
        for l in 0..10_000u64 {
            c.fill(LineAddr::new(l), false);
        }
        assert_eq!(c.occupancy(), 10_000);
    }
}
