//! Cache models for the `stacksim` simulator.
//!
//! Provides the set-associative caches of the paper's Table 1 machine — the
//! per-core 24 KB / 12-way DL1s and the shared 12 MB / 24-way / 16-bank L2 —
//! plus the two hardware prefetchers the baseline uses (next-line and
//! IP-based stride, after Intel's Smart Memory Access).
//!
//! The timing of cache accesses lives in the system model; this crate is the
//! *state*: tags, LRU, dirty bits, banking, and prefetch address generation.
//! The L2's banking granularity is a first-class knob because the paper's
//! §4.1 streamlined floorplan re-banks the L2 on 4 KB page boundaries so
//! every bank talks to exactly one memory controller.
//!
//! # Examples
//!
//! ```
//! use stacksim_cache::{AccessOutcome, CacheConfig, SetAssocCache};
//! use stacksim_types::LineAddr;
//!
//! let mut l1 = SetAssocCache::new(CacheConfig::dl1_penryn());
//! assert_eq!(l1.access(LineAddr::new(0), false), AccessOutcome::Miss);
//! l1.fill(LineAddr::new(0), false);
//! assert_eq!(l1.access(LineAddr::new(0), false), AccessOutcome::Hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod banked;
mod config;
mod prefetch;
mod set_assoc;

pub use banked::BankedCache;
pub use config::CacheConfig;
pub use prefetch::{NextLinePrefetcher, Prefetcher, StridePrefetcher};
pub use set_assoc::{AccessOutcome, SetAssocCache, Victim};
