//! Banked caches (the shared L2).

use stacksim_stats::StatRecord;
use stacksim_types::{
    InterleaveGranularity, L2BankId, LineAddr, LINE_OFFSET_BITS, PAGE_BYTES, PAGE_OFFSET_BITS,
};

use crate::config::CacheConfig;
use crate::set_assoc::{AccessOutcome, SetAssocCache, Victim};

const LINES_PER_PAGE: u64 = PAGE_BYTES >> LINE_OFFSET_BITS;
const _: () = assert!(LINES_PER_PAGE == 64);
const PAGE_SHIFT: u32 = PAGE_OFFSET_BITS - LINE_OFFSET_BITS;

/// A multi-banked cache: total capacity is divided evenly among independent
/// banks, and addresses are routed to banks at either cache-line or page
/// granularity.
///
/// The paper's baseline L2 interleaves banks at line granularity; the §4.1
/// streamlined 3D organizations switch to page granularity so that each L2
/// bank communicates with exactly one memory controller (the bank index and
/// the page-interleaved MC index then agree modulo the MC count).
///
/// # Examples
///
/// ```
/// use stacksim_cache::{BankedCache, CacheConfig};
/// use stacksim_types::{InterleaveGranularity, LineAddr};
///
/// let l2 = BankedCache::new(CacheConfig::dl2_penryn(), 16, InterleaveGranularity::Page);
/// // All 64 lines of page 0 live in bank 0.
/// assert_eq!(l2.bank_of(LineAddr::new(0)), l2.bank_of(LineAddr::new(63)));
/// // Page 1 lives in bank 1.
/// assert_ne!(l2.bank_of(LineAddr::new(0)), l2.bank_of(LineAddr::new(64)));
/// ```
#[derive(Clone, Debug)]
pub struct BankedCache {
    banks: Vec<SetAssocCache>,
    granularity: InterleaveGranularity,
}

impl BankedCache {
    /// Creates a banked cache. `config` describes the **total** capacity,
    /// split evenly across `banks`.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or the per-bank capacity is not a whole
    /// number of sets.
    pub fn new(config: CacheConfig, banks: usize, granularity: InterleaveGranularity) -> Self {
        assert!(banks > 0, "cache needs at least one bank");
        assert!(
            config.size_bytes.is_multiple_of(banks as u64),
            "capacity must divide evenly among banks"
        );
        let per_bank = CacheConfig {
            size_bytes: config.size_bytes / banks as u64,
            associativity: config.associativity,
        };
        BankedCache {
            banks: (0..banks).map(|_| SetAssocCache::new(per_bank)).collect(),
            granularity,
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// The interleaving granularity in force.
    pub const fn granularity(&self) -> InterleaveGranularity {
        self.granularity
    }

    /// The bank a line maps to.
    pub fn bank_of(&self, line: LineAddr) -> L2BankId {
        let n = self.banks.len() as u64;
        let bank = match self.granularity {
            InterleaveGranularity::Line => line.index() % n,
            InterleaveGranularity::Page => (line.index() >> PAGE_SHIFT) % n,
        };
        L2BankId::new(bank as u16)
    }

    /// Local line index presented to the owning bank, so that addresses
    /// spread over the bank's sets regardless of granularity.
    fn local_line(&self, line: LineAddr) -> LineAddr {
        let n = self.banks.len() as u64;
        match self.granularity {
            InterleaveGranularity::Line => LineAddr::new(line.index() / n),
            InterleaveGranularity::Page => {
                let page = line.index() >> PAGE_SHIFT;
                LineAddr::new((page / n) * LINES_PER_PAGE + line.line_in_page())
            }
        }
    }

    /// Probes for `line` in its bank.
    pub fn access(&mut self, line: LineAddr, is_write: bool) -> AccessOutcome {
        let bank = self.bank_of(line).index();
        let local = self.local_line(line);
        self.banks[bank].access(local, is_write)
    }

    /// Whether `line` is resident (no state update).
    pub fn contains(&self, line: LineAddr) -> bool {
        let bank = self.bank_of(line).index();
        self.banks[bank].contains(self.local_line(line))
    }

    /// Installs `line`, translating any victim back to a global address.
    pub fn fill(&mut self, line: LineAddr, dirty: bool) -> Option<Victim> {
        let bank = self.bank_of(line).index();
        let local = self.local_line(line);
        let victim = self.banks[bank].fill(local, dirty)?;
        Some(Victim {
            line: self.globalize(victim.line, bank as u64),
            dirty: victim.dirty,
        })
    }

    /// Marks `line` dirty if resident (absorbing an inner-level writeback).
    /// Returns whether the line was present.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let bank = self.bank_of(line).index();
        let local = self.local_line(line);
        self.banks[bank].mark_dirty(local)
    }

    /// Removes `line` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let bank = self.bank_of(line).index();
        let local = self.local_line(line);
        self.banks[bank].invalidate(local)
    }

    /// Inverse of [`local_line`](Self::local_line) for a given bank.
    fn globalize(&self, local: LineAddr, bank: u64) -> LineAddr {
        let n = self.banks.len() as u64;
        match self.granularity {
            InterleaveGranularity::Line => LineAddr::new(local.index() * n + bank),
            InterleaveGranularity::Page => {
                let local_page = local.index() / LINES_PER_PAGE;
                let offset = local.index() % LINES_PER_PAGE;
                let page = local_page * n + bank;
                LineAddr::new((page << PAGE_SHIFT) + offset)
            }
        }
    }

    /// Total demand hits.
    pub fn hits(&self) -> u64 {
        self.banks.iter().map(SetAssocCache::hits).sum()
    }

    /// Total demand misses.
    pub fn misses(&self) -> u64 {
        self.banks.iter().map(SetAssocCache::misses).sum()
    }

    /// Total dirty evictions.
    pub fn writebacks(&self) -> u64 {
        self.banks.iter().map(SetAssocCache::writebacks).sum()
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> StatRecord {
        let mut r = StatRecord::new("l2");
        r.set("hits", self.hits() as f64);
        r.set("misses", self.misses() as f64);
        r.set("writebacks", self.writebacks() as f64);
        let total = (self.hits() + self.misses()) as f64;
        if total > 0.0 {
            r.set("miss_rate", self.misses() as f64 / total);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(granularity: InterleaveGranularity) -> BankedCache {
        // 16 banks x 4 KB per bank, 4-way.
        BankedCache::new(
            CacheConfig {
                size_bytes: 64 << 10,
                associativity: 4,
            },
            16,
            granularity,
        )
    }

    #[test]
    fn line_granularity_rotates_every_line() {
        let c = cache(InterleaveGranularity::Line);
        for l in 0..32u64 {
            assert_eq!(c.bank_of(LineAddr::new(l)).index() as u64, l % 16);
        }
    }

    #[test]
    fn page_granularity_keeps_pages_together() {
        let c = cache(InterleaveGranularity::Page);
        let first = c.bank_of(LineAddr::new(0));
        for l in 0..64u64 {
            assert_eq!(c.bank_of(LineAddr::new(l)), first);
        }
        assert_eq!(c.bank_of(LineAddr::new(64)).index(), 1);
    }

    #[test]
    fn fill_and_access_roundtrip_both_granularities() {
        for g in [InterleaveGranularity::Line, InterleaveGranularity::Page] {
            let mut c = cache(g);
            for l in (0..2048u64).step_by(37) {
                assert_eq!(c.access(LineAddr::new(l), false), AccessOutcome::Miss);
                c.fill(LineAddr::new(l), false);
            }
            for l in (0..2048u64).step_by(37) {
                assert_eq!(
                    c.access(LineAddr::new(l), false),
                    AccessOutcome::Hit,
                    "{g:?} {l}"
                );
            }
        }
    }

    #[test]
    fn victims_are_globalized() {
        for g in [InterleaveGranularity::Line, InterleaveGranularity::Page] {
            let mut c = cache(g);
            // Fill far more lines than one bank holds; every victim address
            // must map back to the same bank it was evicted from.
            let mut victims = Vec::new();
            for l in 0..20_000u64 {
                if let Some(v) = c.fill(LineAddr::new(l), false) {
                    victims.push((c.bank_of(LineAddr::new(l)), v));
                }
            }
            assert!(!victims.is_empty());
            for (bank, v) in victims {
                assert_eq!(c.bank_of(v.line), bank, "{g:?}: victim escaped its bank");
                assert!(v.line.index() < 20_000);
            }
        }
    }

    #[test]
    fn invalidate_routes_to_correct_bank() {
        let mut c = cache(InterleaveGranularity::Page);
        c.fill(LineAddr::new(100), true);
        assert_eq!(c.invalidate(LineAddr::new(100)), Some(true));
        assert!(!c.contains(LineAddr::new(100)));
    }

    #[test]
    fn capacity_is_preserved_across_banks() {
        let mut c = cache(InterleaveGranularity::Line);
        // 64 KB / 64 B = 1024 lines total.
        for l in 0..1024u64 {
            assert!(
                c.fill(LineAddr::new(l), false).is_none(),
                "line {l} evicted early"
            );
        }
        // The next fill must evict something.
        assert!(c.fill(LineAddr::new(5000), false).is_some());
    }

    #[test]
    fn stats_aggregate() {
        let mut c = cache(InterleaveGranularity::Page);
        c.access(LineAddr::new(0), false);
        c.fill(LineAddr::new(0), false);
        c.access(LineAddr::new(0), false);
        assert_eq!(c.stats().get("miss_rate"), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn ragged_banking_panics() {
        let _ = BankedCache::new(
            CacheConfig {
                size_bytes: 100 * 64,
                associativity: 4,
            },
            3,
            InterleaveGranularity::Line,
        );
    }
}
