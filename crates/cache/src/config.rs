//! Cache geometry configuration.

use stacksim_types::LINE_BYTES;

/// Geometry of one cache (or one bank of a banked cache).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Set associativity.
    pub associativity: usize,
}

impl CacheConfig {
    /// The paper's per-core DL1: 24 KB, 12-way, 64-byte lines (Table 1).
    pub fn dl1_penryn() -> CacheConfig {
        CacheConfig {
            size_bytes: 24 << 10,
            associativity: 12,
        }
    }

    /// The paper's shared L2: 12 MB, 24-way, 64-byte lines (Table 1).
    /// Banking (16 banks) is applied by [`BankedCache`](crate::BankedCache).
    pub fn dl2_penryn() -> CacheConfig {
        CacheConfig {
            size_bytes: 12 << 20,
            associativity: 24,
        }
    }

    /// The 6 MB L2 used for the stand-alone MPKI characterization of
    /// Table 2(a).
    pub fn dl2_6mb() -> CacheConfig {
        CacheConfig {
            size_bytes: 6 << 20,
            associativity: 24,
        }
    }

    /// Returns this configuration grown by `extra_bytes` (the paper's
    /// +512 KB / +1 MB L2 rows in Figure 6(a)).
    pub fn grown_by(self, extra_bytes: u64) -> CacheConfig {
        CacheConfig {
            size_bytes: self.size_bytes + extra_bytes,
            ..self
        }
    }

    /// Number of cache lines.
    pub fn lines(&self) -> usize {
        (self.size_bytes / LINE_BYTES) as usize
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of
    /// `associativity × 64 B`.
    pub fn sets(&self) -> usize {
        assert!(
            self.size_bytes.is_multiple_of(LINE_BYTES),
            "capacity must be a whole number of lines"
        );
        let lines = self.lines();
        assert!(
            lines.is_multiple_of(self.associativity) && lines > 0,
            "capacity must be a whole number of sets"
        );
        lines / self.associativity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penryn_geometries() {
        let l1 = CacheConfig::dl1_penryn();
        assert_eq!(l1.lines(), 384);
        assert_eq!(l1.sets(), 32);
        let l2 = CacheConfig::dl2_penryn();
        assert_eq!(l2.lines(), 196_608);
        assert_eq!(l2.sets(), 8192);
        assert_eq!(CacheConfig::dl2_6mb().sets(), 4096);
    }

    #[test]
    fn grown_by_adds_capacity() {
        let g = CacheConfig::dl2_penryn().grown_by(512 << 10);
        assert_eq!(g.size_bytes, (12 << 20) + (512 << 10));
        assert_eq!(g.associativity, 24);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn ragged_capacity_panics() {
        let c = CacheConfig {
            size_bytes: 10 * 64,
            associativity: 3,
        };
        let _ = c.sets();
    }
}
