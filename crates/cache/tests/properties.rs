//! Property-based tests: the set-associative cache against a reference
//! model, and banked-cache address routing invariants.

use proptest::prelude::*;
use std::collections::HashMap;

use stacksim_cache::{AccessOutcome, BankedCache, CacheConfig, SetAssocCache};
use stacksim_types::{InterleaveGranularity, LineAddr};

#[derive(Clone, Debug)]
enum Op {
    Access { line: u64, write: bool },
    Fill { line: u64, dirty: bool },
    Invalidate(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let line = 0u64..96; // small universe over a tiny cache forces evictions
    prop_oneof![
        (line.clone(), any::<bool>()).prop_map(|(line, write)| Op::Access { line, write }),
        (line.clone(), any::<bool>()).prop_map(|(line, dirty)| Op::Fill { line, dirty }),
        line.prop_map(Op::Invalidate),
    ]
}

/// Reference model: per-line residency + dirtiness, with capacity enforced
/// only through what the real cache reports (the model follows evictions).
#[derive(Default)]
struct Model {
    resident: HashMap<u64, bool>, // line -> dirty
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_agrees_with_residency_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        // 4 sets x 2 ways = 8 lines.
        let mut cache = SetAssocCache::new(CacheConfig { size_bytes: 8 * 64, associativity: 2 });
        let mut model = Model::default();
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Access { line, write } => {
                    let outcome = cache.access(LineAddr::new(line), write);
                    let expected = model.resident.contains_key(&line);
                    prop_assert_eq!(
                        outcome == AccessOutcome::Hit,
                        expected,
                        "step {}: access {} disagreed",
                        step,
                        line
                    );
                    if write && expected {
                        model.resident.insert(line, true);
                    }
                }
                Op::Fill { line, dirty } => {
                    let victim = cache.fill(LineAddr::new(line), dirty);
                    if let Some(v) = victim {
                        let was_dirty = model
                            .resident
                            .remove(&v.line.index())
                            .expect("victim must have been resident");
                        prop_assert_eq!(v.dirty, was_dirty, "step {}: victim dirtiness", step);
                    }
                    let entry = model.resident.entry(line).or_insert(false);
                    *entry |= dirty;
                }
                Op::Invalidate(line) => {
                    let got = cache.invalidate(LineAddr::new(line));
                    let expected = model.resident.remove(&line);
                    prop_assert_eq!(got, expected, "step {}: invalidate {}", step, line);
                }
            }
            // Occupancy always matches, and never exceeds capacity.
            prop_assert_eq!(cache.occupancy(), model.resident.len());
            prop_assert!(cache.occupancy() <= 8);
            // Every model-resident line is cache-resident.
            for &line in model.resident.keys() {
                prop_assert!(cache.contains(LineAddr::new(line)), "step {}: lost {}", step, line);
            }
        }
    }

    #[test]
    fn banked_cache_routing_is_a_bijection(
        lines in proptest::collection::hash_set(0u64..100_000, 1..200),
        page_interleave in any::<bool>(),
    ) {
        let granularity = if page_interleave {
            InterleaveGranularity::Page
        } else {
            InterleaveGranularity::Line
        };
        let mut cache = BankedCache::new(
            CacheConfig { size_bytes: 1 << 20, associativity: 4 },
            16,
            granularity,
        );
        // Fill distinct global lines; each must be found again, and any
        // victim must be one of the lines inserted (globalization is exact).
        for &line in &lines {
            if let Some(v) = cache.fill(LineAddr::new(line), false) {
                prop_assert!(lines.contains(&v.line.index()));
            }
        }
        let mut resident = 0usize;
        for &line in &lines {
            if cache.contains(LineAddr::new(line)) {
                resident += 1;
            }
        }
        // Capacity is ample here: nothing should have been evicted.
        prop_assert_eq!(resident, lines.len());
    }

    #[test]
    fn banked_and_flat_caches_agree_on_hits(
        ops in proptest::collection::vec((0u64..4096, any::<bool>()), 1..300),
    ) {
        // A 1-bank banked cache must behave exactly like the flat cache.
        let cfg = CacheConfig { size_bytes: 64 * 64, associativity: 4 };
        let mut flat = SetAssocCache::new(cfg);
        let mut banked = BankedCache::new(cfg, 1, InterleaveGranularity::Line);
        for &(line, write) in &ops {
            let a = flat.access(LineAddr::new(line), write);
            let b = banked.access(LineAddr::new(line), write);
            prop_assert_eq!(a, b);
            if a == AccessOutcome::Miss {
                let va = flat.fill(LineAddr::new(line), write);
                let vb = banked.fill(LineAddr::new(line), write);
                prop_assert_eq!(va.map(|v| (v.line, v.dirty)), vb.map(|v| (v.line, v.dirty)));
            }
        }
        prop_assert_eq!(flat.hits(), banked.hits());
        prop_assert_eq!(flat.misses(), banked.misses());
    }
}
