//! Integer-valued histograms.

use core::fmt;

/// A dense histogram over small non-negative integer samples, with an
/// overflow bucket for values past the configured maximum.
///
/// Used for distributions like "probes per MSHR access" (paper §5.2) or
/// "occupied MSHR entries per cycle".
///
/// # Examples
///
/// ```
/// use stacksim_stats::Histogram;
///
/// let mut h = Histogram::new(8);
/// h.record(1);
/// h.record(2);
/// h.record(2);
/// assert_eq!(h.count(), 3);
/// assert!((h.mean().unwrap() - 5.0 / 3.0).abs() < 1e-12);
/// assert_eq!(h.bucket(2), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max_seen: u64,
}

impl Histogram {
    /// Creates a histogram with dense buckets for values `0..=max_value`.
    ///
    /// # Panics
    ///
    /// Panics if `max_value` exceeds 1 << 20 (use a coarser summary instead).
    pub fn new(max_value: u64) -> Self {
        assert!(
            max_value <= 1 << 20,
            "histogram too wide; bucket it coarser"
        );
        Histogram {
            buckets: vec![0; (max_value + 1) as usize],
            overflow: 0,
            count: 0,
            sum: 0,
            max_seen: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += value;
        self.max_seen = self.max_seen.max(value);
    }

    /// Records `count` samples of the same value, equivalent to calling
    /// [`record`](Self::record) that many times. Used by the simulator's
    /// fast-forward path to replay per-cycle samples for skipped stretches
    /// in O(1) while keeping every summary (mean, quantiles, max)
    /// bit-identical to tick-by-tick recording.
    ///
    /// # Examples
    ///
    /// ```
    /// use stacksim_stats::Histogram;
    ///
    /// let mut a = Histogram::new(8);
    /// let mut b = Histogram::new(8);
    /// a.record_n(3, 5);
    /// for _ in 0..5 {
    ///     b.record(3);
    /// }
    /// assert_eq!(a, b);
    /// ```
    #[inline]
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b += count,
            None => self.overflow += count,
        }
        self.count += count;
        self.sum += value * count;
        self.max_seen = self.max_seen.max(value);
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen.
    pub const fn max_seen(&self) -> u64 {
        self.max_seen
    }

    /// Samples that fell past the dense range.
    pub const fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in a dense bucket; zero for out-of-range buckets.
    pub fn bucket(&self, value: u64) -> u64 {
        self.buckets.get(value as usize).copied().unwrap_or(0)
    }

    /// Mean of all samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Smallest dense value `v` such that at least `q` (0..=1) of the samples
    /// are ≤ `v`. Overflowed samples count as larger than every dense value.
    /// Returns `None` when empty or when the quantile lands in the overflow
    /// bucket.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (v, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(v as u64);
            }
        }
        None
    }

    /// Merges another histogram's samples into this one.
    ///
    /// # Panics
    ///
    /// Panics if the dense ranges differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram width mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.overflow = 0;
        self.count = 0;
        self.sum = 0;
        self.max_seen = 0;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hist(n={}, mean={:.3}, max={})",
            self.count,
            self.mean().unwrap_or(0.0),
            self.max_seen
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_means() {
        let mut h = Histogram::new(4);
        for v in [0, 1, 1, 2, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 8);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.mean(), Some(1.6));
        assert_eq!(h.max_seen(), 4);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn overflow_bucket() {
        let mut h = Histogram::new(2);
        h.record(100);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), None); // lands in overflow
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(10);
        for v in 1..=10 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(5));
        assert_eq!(h.quantile(1.0), Some(10));
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(4);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new(4);
        let mut b = Histogram::new(4);
        a.record(1);
        b.record(3);
        b.record(9); // overflow
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket(3), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.max_seen(), 9);
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new(4);
        h.record(2);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.bucket(2), 0);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        // Dense values, the overflow bucket, and zero all behave exactly
        // like `count` repeated `record` calls.
        for (value, count) in [(0u64, 3u64), (2, 7), (4, 1), (9, 5)] {
            let mut bulk = Histogram::new(4);
            let mut looped = Histogram::new(4);
            bulk.record_n(value, count);
            for _ in 0..count {
                looped.record(value);
            }
            assert_eq!(bulk, looped, "value {value} x{count}");
        }
    }

    #[test]
    fn record_n_zero_is_a_no_op() {
        let mut h = Histogram::new(4);
        h.record_n(2, 0);
        assert_eq!(h, Histogram::new(4));
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn record_n_summaries_match() {
        // Interleave bulk and single recording; every derived summary must
        // equal the fully-looped histogram's, bit for bit.
        let mut bulk = Histogram::new(16);
        let mut looped = Histogram::new(16);
        let samples: &[(u64, u64)] = &[(1, 10), (3, 1), (3, 4), (7, 25), (12, 2), (40, 3)];
        for &(value, count) in samples {
            bulk.record_n(value, count);
            for _ in 0..count {
                looped.record(value);
            }
        }
        assert_eq!(bulk, looped);
        assert_eq!(bulk.count(), looped.count());
        assert_eq!(bulk.sum(), looped.sum());
        assert_eq!(bulk.mean(), looped.mean());
        assert_eq!(bulk.max_seen(), looped.max_seen());
        assert_eq!(bulk.overflow(), looped.overflow());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(bulk.quantile(q), looped.quantile(q), "quantile {q}");
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_width_mismatch_panics() {
        let mut a = Histogram::new(4);
        let b = Histogram::new(5);
        a.merge(&b);
    }
}
