//! Hierarchical, machine-readable metrics export.
//!
//! A [`MetricsSink`] mirrors the component tree of the simulated system
//! (`system` → `l2`, `core0..N`, `mc0..M` → …) and holds each component's
//! named metrics as typed values: counters, gauges, or histogram summaries.
//! Insertion order of both metrics and children is preserved so exports
//! read in the same stable order as the human-facing tables.
//!
//! Sinks serialize to JSON ([`MetricsSink::to_json`]) and to flat CSV
//! ([`MetricsSink::to_csv`]), round-trip back from both, and can be diffed
//! against a baseline with a relative tolerance ([`MetricsSink::diff`]) —
//! the machinery behind `reproduce --out` / `reproduce --baseline`.
//!
//! # Examples
//!
//! ```
//! use stacksim_stats::{MetricValue, MetricsSink};
//!
//! let mut sys = MetricsSink::new("system");
//! sys.counter("cycles", 60_000);
//! let l2 = sys.child_mut("l2");
//! l2.counter("hits", 90);
//! l2.gauge("miss_rate", 0.1);
//!
//! assert_eq!(sys.get("cycles"), Some(60_000.0));
//! assert_eq!(sys.get("l2.miss_rate"), Some(0.1));
//!
//! let json = sys.to_json();
//! assert_eq!(MetricsSink::from_json(&json).unwrap(), sys);
//! ```

use core::fmt;

use crate::json::Json;
use crate::{Histogram, StatRecord};

/// A five-number summary of a [`Histogram`], small enough to export per run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Mean sample value (0 when empty).
    pub mean: f64,
    /// Median (p50) sample; 0 when empty or in the overflow bucket.
    pub p50: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Samples past the dense bucket range.
    pub overflow: u64,
}

impl HistSummary {
    /// Summarizes a full histogram.
    pub fn of(h: &Histogram) -> Self {
        HistSummary {
            count: h.count(),
            mean: h.mean().unwrap_or(0.0),
            p50: h.quantile(0.5).unwrap_or(0),
            max: h.max_seen(),
            overflow: h.overflow(),
        }
    }
}

/// One exported metric value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// A monotonic event count (row hits, retries, committed instructions).
    Counter(u64),
    /// A point-in-time or derived value (rates, means, temperatures).
    Gauge(f64),
    /// A distribution summary.
    Histogram(HistSummary),
}

impl MetricValue {
    /// The value as an `f64` — the counter value, the gauge, or the
    /// histogram mean. This is the scalar used for flattening and diffing.
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::Counter(n) => *n as f64,
            MetricValue::Gauge(g) => *g,
            MetricValue::Histogram(h) => h.mean,
        }
    }

    /// Short type tag used in CSV exports: `counter`, `gauge`, or `hist`.
    pub const fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "hist",
        }
    }
}

/// A hierarchical sink of named metrics: one node per simulated component,
/// with ordered metrics and ordered child components.
///
/// `MetricsSink` replaces the flat [`StatRecord`] at run boundaries
/// (devices still report `StatRecord`s, absorbed via
/// [`MetricsSink::absorb_record`]); `docs/METRICS.md` documents the full
/// schema.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct MetricsSink {
    name: String,
    metrics: Vec<(String, MetricValue)>,
    children: Vec<MetricsSink>,
}

/// One metric that differs between a run and its baseline.
///
/// Produced by [`MetricsSink::diff`]; `Display` renders a one-line
/// human-readable description.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDiff {
    /// Dotted path of the metric relative to the compared roots.
    pub path: String,
    /// Value in the baseline, if present there.
    pub baseline: Option<f64>,
    /// Value in the current run, if present there.
    pub current: Option<f64>,
}

impl fmt::Display for MetricDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) => write!(f, "{}: baseline {b} vs current {c}", self.path),
            (Some(b), None) => write!(f, "{}: baseline {b} missing from current run", self.path),
            (None, Some(c)) => write!(f, "{}: current {c} missing from baseline", self.path),
            (None, None) => write!(f, "{}: absent on both sides", self.path),
        }
    }
}

impl MetricsSink {
    /// Creates an empty sink for a named component.
    pub fn new(name: impl Into<String>) -> Self {
        MetricsSink {
            name: name.into(),
            metrics: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The component name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records (or overwrites) a counter metric.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.set(name.into(), MetricValue::Counter(value));
    }

    /// Records (or overwrites) a gauge metric.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.set(name.into(), MetricValue::Gauge(value));
    }

    /// Records (or overwrites) a histogram summary metric.
    pub fn histogram(&mut self, name: impl Into<String>, h: &Histogram) {
        self.set(name.into(), MetricValue::Histogram(HistSummary::of(h)));
    }

    fn set(&mut self, name: String, value: MetricValue) {
        if let Some(m) = self.metrics.iter_mut().find(|(n, _)| *n == name) {
            m.1 = value;
        } else {
            self.metrics.push((name, value));
        }
    }

    /// Returns the child component with this name, creating it (at the end
    /// of the child list) if absent.
    pub fn child_mut(&mut self, name: &str) -> &mut MetricsSink {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            &mut self.children[i]
        } else {
            self.children.push(MetricsSink::new(name));
            self.children.last_mut().expect("just pushed")
        }
    }

    /// The child component with this name, if present.
    pub fn child(&self, name: &str) -> Option<&MetricsSink> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Child components in insertion order.
    pub fn children(&self) -> impl Iterator<Item = &MetricsSink> {
        self.children.iter()
    }

    /// This component's own `(name, value)` metrics in insertion order.
    pub fn metrics(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Copies a flat [`StatRecord`]'s entries into this node as gauges,
    /// preserving order. Entry names keep any internal dots they already
    /// have (e.g. `ranks.refreshes`).
    pub fn absorb_record(&mut self, record: &StatRecord) {
        for (name, value) in record.iter() {
            self.gauge(name, value);
        }
    }

    /// Looks up a metric by dotted path relative to this node, e.g.
    /// `"l2.miss_rate"` or `"mc0.ranks.refreshes"`.
    ///
    /// Because metric names may themselves contain dots, the full remaining
    /// path is tried as a local metric name first, then the first segment is
    /// tried as a child component. Returns the scalar view of the metric
    /// ([`MetricValue::as_f64`]).
    pub fn get(&self, path: &str) -> Option<f64> {
        self.get_value(path).map(MetricValue::as_f64)
    }

    /// Like [`MetricsSink::get`] but returns the typed value.
    pub fn get_value(&self, path: &str) -> Option<&MetricValue> {
        if let Some(m) = self.metrics.iter().find(|(n, _)| n == path) {
            return Some(&m.1);
        }
        let (head, rest) = path.split_once('.')?;
        self.child(head)?.get_value(rest)
    }

    /// Flattens the tree to `(dotted_path, scalar)` pairs in depth-first
    /// order. The root's own name is *not* prefixed, so paths line up with
    /// the flat [`StatRecord`] names the text reports use (`"l2.misses"`,
    /// not `"system.l2.misses"`).
    pub fn flatten(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        self.flatten_into("", &mut out);
        out
    }

    fn flatten_into(&self, prefix: &str, out: &mut Vec<(String, f64)>) {
        for (name, value) in &self.metrics {
            out.push((format!("{prefix}{name}"), value.as_f64()));
        }
        for child in &self.children {
            child.flatten_into(&format!("{prefix}{}.", child.name), out);
        }
    }

    /// Total number of metrics in this node and all descendants.
    pub fn len(&self) -> usize {
        self.metrics.len() + self.children.iter().map(MetricsSink::len).sum::<usize>()
    }

    /// Whether the whole tree holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the tree to a [`Json`] object:
    /// `{"name": ..., "metrics": {...}, "children": [...]}` with counters as
    /// integers, gauges as numbers, and histogram summaries as objects.
    pub fn to_json(&self) -> Json {
        let metrics = self
            .metrics
            .iter()
            .map(|(n, v)| {
                let jv = match v {
                    MetricValue::Counter(c) => Json::Num(*c as f64),
                    MetricValue::Gauge(g) => Json::Num(*g),
                    MetricValue::Histogram(h) => Json::Obj(vec![
                        ("count".into(), Json::Num(h.count as f64)),
                        ("mean".into(), Json::Num(h.mean)),
                        ("p50".into(), Json::Num(h.p50 as f64)),
                        ("max".into(), Json::Num(h.max as f64)),
                        ("overflow".into(), Json::Num(h.overflow as f64)),
                    ]),
                };
                (n.clone(), jv)
            })
            .collect();
        let children = self.children.iter().map(MetricsSink::to_json).collect();
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("metrics".into(), Json::Obj(metrics)),
            ("children".into(), Json::Arr(children)),
        ])
    }

    /// Reconstructs a sink from [`MetricsSink::to_json`] output.
    ///
    /// Counters round-trip as counters (an integer-valued number whose name
    /// was written by [`MetricsSink::counter`] comes back as
    /// [`MetricValue::Counter`] only if it is a non-negative integer — the
    /// JSON carries no explicit tag, so exact integers are read as counters
    /// and everything else as gauges; scalar views and diffs are unaffected).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first structural mismatch.
    pub fn from_json(v: &Json) -> Result<MetricsSink, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("metrics node missing string 'name'")?;
        let mut sink = MetricsSink::new(name);
        let metrics = v
            .get("metrics")
            .and_then(Json::as_obj)
            .ok_or("metrics node missing object 'metrics'")?;
        for (mname, mval) in metrics {
            let value = match mval {
                Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < 9.0e15 => {
                    MetricValue::Counter(*n as u64)
                }
                Json::Num(n) => MetricValue::Gauge(*n),
                Json::Obj(_) => {
                    let field = |k: &str| {
                        mval.get(k)
                            .and_then(Json::as_f64)
                            .ok_or_else(|| format!("histogram '{mname}' missing '{k}'"))
                    };
                    MetricValue::Histogram(HistSummary {
                        count: field("count")? as u64,
                        mean: field("mean")?,
                        p50: field("p50")? as u64,
                        max: field("max")? as u64,
                        overflow: field("overflow")? as u64,
                    })
                }
                other => return Err(format!("metric '{mname}' has invalid value {other}")),
            };
            sink.set(mname.clone(), value);
        }
        let children = v
            .get("children")
            .and_then(Json::as_arr)
            .ok_or("metrics node missing array 'children'")?;
        for child in children {
            sink.children.push(MetricsSink::from_json(child)?);
        }
        Ok(sink)
    }

    /// Serializes the tree to CSV with header `path,type,value` — one row
    /// per metric, paths as in [`MetricsSink::flatten`], values as the
    /// scalar view. Suitable for spreadsheets and `join`-style diffing.
    ///
    /// # Examples
    ///
    /// ```
    /// use stacksim_stats::MetricsSink;
    ///
    /// let mut s = MetricsSink::new("system");
    /// s.child_mut("l2").counter("hits", 90);
    /// assert_eq!(s.to_csv(), "path,type,value\nl2.hits,counter,90\n");
    /// ```
    pub fn to_csv(&self) -> String {
        let mut out = String::from("path,type,value\n");
        self.csv_rows("", &mut out);
        out
    }

    fn csv_rows(&self, prefix: &str, out: &mut String) {
        use fmt::Write;
        for (name, value) in &self.metrics {
            let path = format!("{prefix}{name}");
            writeln!(
                out,
                "{},{},{}",
                csv_field(&path),
                value.kind(),
                value.as_f64()
            )
            .expect("string write");
        }
        for child in &self.children {
            child.csv_rows(&format!("{prefix}{}.", child.name), out);
        }
    }

    /// Parses [`MetricsSink::to_csv`] output back into flat
    /// `(path, type, value)` rows (the tree shape is not recoverable from
    /// CSV; use JSON for lossless round-trips).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse_csv(text: &str) -> Result<Vec<(String, String, f64)>, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("path,type,value") => {}
            other => return Err(format!("bad CSV header {other:?}")),
        }
        let mut rows = Vec::new();
        for (i, line) in lines.enumerate() {
            let fields = split_csv_line(line);
            let [path, kind, value] = fields.as_slice() else {
                return Err(format!("CSV line {}: expected 3 fields", i + 2));
            };
            let value: f64 = value
                .parse()
                .map_err(|_| format!("CSV line {}: bad value '{value}'", i + 2))?;
            rows.push((path.clone(), kind.clone(), value));
        }
        Ok(rows)
    }

    /// Compares this sink against a `baseline`, returning every metric whose
    /// scalar value differs by more than `rel_tol` (relative to the larger
    /// magnitude; exact-zero pairs always match), plus metrics present on
    /// only one side. An empty result means the runs agree.
    ///
    /// # Examples
    ///
    /// ```
    /// use stacksim_stats::MetricsSink;
    ///
    /// let mut base = MetricsSink::new("system");
    /// base.gauge("hmipc", 1.000);
    /// let mut run = MetricsSink::new("system");
    /// run.gauge("hmipc", 1.0001);
    ///
    /// assert!(run.diff(&base, 1e-3).is_empty());     // within tolerance
    /// assert_eq!(run.diff(&base, 1e-6).len(), 1);    // beyond tolerance
    /// ```
    pub fn diff(&self, baseline: &MetricsSink, rel_tol: f64) -> Vec<MetricDiff> {
        let ours = self.flatten();
        let theirs = baseline.flatten();
        let mut diffs = Vec::new();
        for (path, current) in &ours {
            match theirs.iter().find(|(p, _)| p == path) {
                Some((_, base)) => {
                    if !within_tol(*current, *base, rel_tol) {
                        diffs.push(MetricDiff {
                            path: path.clone(),
                            baseline: Some(*base),
                            current: Some(*current),
                        });
                    }
                }
                None => diffs.push(MetricDiff {
                    path: path.clone(),
                    baseline: None,
                    current: Some(*current),
                }),
            }
        }
        for (path, base) in &theirs {
            if !ours.iter().any(|(p, _)| p == path) {
                diffs.push(MetricDiff {
                    path: path.clone(),
                    baseline: Some(*base),
                    current: None,
                });
            }
        }
        diffs
    }
}

fn within_tol(a: f64, b: f64, rel_tol: f64) -> bool {
    if a == b {
        return true; // covers exact zeros and identical values
    }
    if a.is_nan() && b.is_nan() {
        return true; // both undefined (e.g. rate with zero denominator)
    }
    (a - b).abs() <= rel_tol * a.abs().max(b.abs())
}

/// Quotes a CSV field only when it needs it (commas, quotes, newlines).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if cur.is_empty() => quoted = true,
            ',' if !quoted => fields.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSink {
        let mut sys = MetricsSink::new("system");
        sys.counter("cycles", 60_000);
        sys.gauge("hmipc", 1.25);
        let mut h = Histogram::new(8);
        h.record(1);
        h.record(3);
        sys.histogram("probes", &h);
        let l2 = sys.child_mut("l2");
        l2.counter("hits", 90);
        l2.gauge("miss_rate", 0.1);
        let mc = sys.child_mut("mc0");
        mc.gauge("ranks.refreshes", 12.5);
        sys
    }

    #[test]
    fn get_resolves_dotted_paths() {
        let s = sample();
        assert_eq!(s.get("cycles"), Some(60_000.0));
        assert_eq!(s.get("l2.miss_rate"), Some(0.1));
        // Metric name containing a dot wins over a (missing) child descent.
        assert_eq!(s.get("mc0.ranks.refreshes"), Some(12.5));
        assert_eq!(s.get("l2.nope"), None);
        assert_eq!(s.get("nope"), None);
    }

    #[test]
    fn flatten_matches_statrecord_naming() {
        let s = sample();
        let flat = s.flatten();
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "cycles",
                "hmipc",
                "probes",
                "l2.hits",
                "l2.miss_rate",
                "mc0.ranks.refreshes"
            ]
        );
        assert_eq!(s.len(), 6);
        assert!(!s.is_empty());
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let s = sample();
        let parsed = MetricsSink::from_json(&Json::parse(&s.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn gauges_with_integer_values_round_trip_as_scalars() {
        // A whole-valued gauge deserializes as a Counter (JSON carries no
        // tag), but its scalar view — all that diffing uses — is unchanged.
        let mut s = MetricsSink::new("x");
        s.gauge("whole", 4.0);
        let back = MetricsSink::from_json(&s.to_json()).unwrap();
        assert_eq!(back.get("whole"), Some(4.0));
        assert_eq!(back.flatten(), s.flatten());
    }

    #[test]
    fn csv_round_trip() {
        let s = sample();
        let rows = MetricsSink::parse_csv(&s.to_csv()).unwrap();
        assert_eq!(rows.len(), s.len());
        assert_eq!(rows[0], ("cycles".into(), "counter".into(), 60_000.0));
        assert_eq!(
            rows.last().unwrap(),
            &("mc0.ranks.refreshes".into(), "gauge".into(), 12.5)
        );
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(split_csv_line("\"a,b\",c"), ["a,b", "c"]);
        assert_eq!(
            split_csv_line("\"he said \"\"hi\"\"\",2"),
            ["he said \"hi\"", "2"]
        );
    }

    #[test]
    fn csv_rejects_malformed() {
        assert!(MetricsSink::parse_csv("wrong,header\n").is_err());
        assert!(MetricsSink::parse_csv("path,type,value\na,b\n").is_err());
        assert!(MetricsSink::parse_csv("path,type,value\na,gauge,xyz\n").is_err());
    }

    #[test]
    fn diff_flags_changes_and_missing() {
        let base = sample();
        let mut run = sample();
        run.child_mut("l2").counter("hits", 95); // perturbed
        run.gauge("extra", 1.0); // only in current
        let diffs = run.diff(&base, 1e-9);
        assert_eq!(diffs.len(), 2);
        assert_eq!(diffs[0].path, "extra");
        assert_eq!(diffs[1].path, "l2.hits");
        assert_eq!(diffs[1].baseline, Some(90.0));
        assert_eq!(diffs[1].current, Some(95.0));
        assert!(diffs[1].to_string().contains("l2.hits"));

        // Identical sinks never differ, at any tolerance.
        assert!(base.diff(&base, 0.0).is_empty());
    }

    #[test]
    fn diff_tolerance_is_relative() {
        let mut a = MetricsSink::new("s");
        a.gauge("v", 100.0);
        let mut b = MetricsSink::new("s");
        b.gauge("v", 100.05);
        assert!(b.diff(&a, 1e-3).is_empty());
        assert_eq!(b.diff(&a, 1e-6).len(), 1);
        // NaN == NaN for diffing purposes (undefined rates).
        let mut c = MetricsSink::new("s");
        c.gauge("v", f64::NAN);
        assert!(c.diff(&c.clone(), 0.0).is_empty());
    }

    #[test]
    fn absorb_record_preserves_order() {
        let mut rec = StatRecord::new("mc0");
        rec.set("issued", 10.0);
        rec.set("ranks.refreshes", 2.0);
        let mut sink = MetricsSink::new("system");
        sink.child_mut("mc0").absorb_record(&rec);
        assert_eq!(sink.get("mc0.issued"), Some(10.0));
        assert_eq!(sink.get("mc0.ranks.refreshes"), Some(2.0));
    }

    #[test]
    fn overwrite_keeps_position() {
        let mut s = MetricsSink::new("x");
        s.counter("a", 1);
        s.counter("b", 2);
        s.counter("a", 3);
        let flat = s.flatten();
        assert_eq!(flat[0], ("a".into(), 3.0));
        assert_eq!(flat.len(), 2);
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(MetricsSink::from_json(&Json::parse("{}").unwrap()).is_err());
        let bad = Json::parse(r#"{"name":"x","metrics":{"m":"str"},"children":[]}"#).unwrap();
        assert!(MetricsSink::from_json(&bad).is_err());
        let bad_hist =
            Json::parse(r#"{"name":"x","metrics":{"h":{"count":1}},"children":[]}"#).unwrap();
        assert!(MetricsSink::from_json(&bad_hist).is_err());
    }
}
