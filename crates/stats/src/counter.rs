//! Simple event counters.

use core::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use stacksim_stats::Counter;
///
/// let mut hits = Counter::new("l2_hits");
/// hits.incr();
/// hits.add(4);
/// assert_eq!(hits.value(), 5);
/// assert_eq!(hits.name(), "l2_hits");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a static name.
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// The counter's name.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// The current count.
    pub const fn value(&self) -> u64 {
        self.value
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Resets the count to zero (used between dynamic-MSHR sampling phases).
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// This counter as a fraction of `denom` events; `None` when `denom`
    /// is zero.
    pub fn rate_per(&self, denom: u64) -> Option<f64> {
        if denom == 0 {
            None
        } else {
            Some(self.value as f64 / denom as f64)
        }
    }

    /// Events per thousand `denom` events (the MPKI convention), `None`
    /// when `denom` is zero.
    pub fn per_kilo(&self, denom: u64) -> Option<f64> {
        self.rate_per(denom).map(|r| r * 1000.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn rates() {
        let mut c = Counter::new("misses");
        c.add(25);
        assert_eq!(c.rate_per(100), Some(0.25));
        assert_eq!(c.per_kilo(1000), Some(25.0));
        assert_eq!(c.rate_per(0), None);
        assert_eq!(c.per_kilo(0), None);
    }

    #[test]
    fn display() {
        let mut c = Counter::new("evts");
        c.add(3);
        assert_eq!(c.to_string(), "evts=3");
    }
}
