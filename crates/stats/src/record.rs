//! Named statistic bags exported by simulated components.

use core::fmt;

/// An ordered collection of named statistic values produced by one simulated
/// component at the end of a run.
///
/// Insertion order is preserved so reports read in a stable, human-chosen
/// order. Duplicate names overwrite the previous value.
///
/// # Examples
///
/// ```
/// use stacksim_stats::StatRecord;
///
/// let mut r = StatRecord::new("l2");
/// r.set("hits", 90.0);
/// r.set("misses", 10.0);
/// assert_eq!(r.get("misses"), Some(10.0));
/// assert_eq!(r.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatRecord {
    component: String,
    entries: Vec<(String, f64)>,
}

impl StatRecord {
    /// Creates an empty record for a named component.
    pub fn new(component: impl Into<String>) -> Self {
        StatRecord {
            component: component.into(),
            entries: Vec::new(),
        }
    }

    /// The owning component's name.
    pub fn component(&self) -> &str {
        &self.component
    }

    /// Sets (or overwrites) a statistic.
    pub fn set(&mut self, name: impl Into<String>, value: f64) {
        let name = name.into();
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            e.1 = value;
        } else {
            self.entries.push((name, value));
        }
    }

    /// Looks up a statistic by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Number of statistics stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the record holds no statistics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Merges another record's entries into this one, prefixing each name
    /// with the other record's component name (`"dram.row_hits"`).
    pub fn absorb(&mut self, other: &StatRecord) {
        for (name, value) in other.iter() {
            self.set(format!("{}.{}", other.component(), name), value);
        }
    }
}

impl fmt::Display for StatRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}]", self.component)?;
        for (name, value) in self.iter() {
            writeln!(f, "  {name} = {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_overwrite() {
        let mut r = StatRecord::new("c");
        r.set("a", 1.0);
        r.set("a", 2.0);
        assert_eq!(r.get("a"), Some(2.0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn preserves_insertion_order() {
        let mut r = StatRecord::new("c");
        r.set("z", 1.0);
        r.set("a", 2.0);
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["z", "a"]);
    }

    #[test]
    fn absorb_prefixes() {
        let mut outer = StatRecord::new("system");
        let mut inner = StatRecord::new("dram");
        inner.set("row_hits", 7.0);
        outer.absorb(&inner);
        assert_eq!(outer.get("dram.row_hits"), Some(7.0));
    }

    #[test]
    fn display_lists_entries() {
        let mut r = StatRecord::new("x");
        r.set("n", 3.0);
        let s = r.to_string();
        assert!(s.contains("[x]"));
        assert!(s.contains("n = 3"));
    }

    #[test]
    fn empty_checks() {
        let r = StatRecord::new("e");
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
