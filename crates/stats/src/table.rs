//! Fixed-width plain-text tables for experiment reports.

use core::fmt;

/// Column alignment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple fixed-width text table.
///
/// Every experiment driver renders its figure/table through this type so
/// that `cargo run --example figure4` and the bench harness produce the same
/// rows the paper reports.
///
/// # Examples
///
/// ```
/// use stacksim_stats::{Align, Table};
///
/// let mut t = Table::new(vec!["mix".into(), "speedup".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["H1".into(), "2.17".into()]);
/// let s = t.to_string();
/// assert!(s.contains("H1"));
/// assert!(s.contains("2.17"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        let aligns = vec![Align::Left; headers.len()];
        Table {
            headers,
            aligns,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title rendered above the table.
    pub fn title(&mut self, title: impl Into<String>) -> &mut Self {
        self.title = Some(title.into());
        self
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Right-aligns every column except the first (the common numeric shape).
    pub fn numeric(&mut self) -> &mut Self {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a row from anything displayable.
    pub fn row_display<D: fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Looks up a cell as text.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Iterates over the data rows.
    pub fn rows(&self) -> impl Iterator<Item = &[String]> {
        self.rows.iter().map(Vec::as_slice)
    }

    /// The title, if set.
    pub fn title_text(&self) -> Option<&str> {
        self.title.as_deref()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        if let Some(title) = &self.title {
            writeln!(f, "== {title} ==")?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                match self.aligns[i] {
                    Align::Left => write!(f, "{:<width$}", cells[i], width = widths[i])?,
                    Align::Right => write!(f, "{:>width$}", cells[i], width = widths[i])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name".into(), "val".into()]);
        t.numeric();
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name   val");
        assert_eq!(lines[2], "alpha    1");
        assert_eq!(lines[3], "b       22");
    }

    #[test]
    fn title_is_rendered() {
        let mut t = Table::new(vec!["a".into()]);
        t.title("Figure 4");
        t.row(vec!["x".into()]);
        assert!(t.to_string().starts_with("== Figure 4 =="));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn cell_lookup() {
        let mut t = Table::new(vec!["a".into()]);
        t.row_display(&[42]);
        assert_eq!(t.cell(0, 0), Some("42"));
        assert_eq!(t.cell(1, 0), None);
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn structured_accessors() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.title("T");
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.headers(), &["a".to_string(), "b".to_string()]);
        assert_eq!(
            t.rows().next().unwrap(),
            &["1".to_string(), "2".to_string()]
        );
        assert_eq!(t.title_text(), Some("T"));
    }
}
