//! Statistics collection and reporting for the `stacksim` simulator.
//!
//! The experiment drivers in the `stacksim` core crate reproduce the paper's
//! tables and figures as plain-text tables; this crate supplies the shared
//! machinery:
//!
//! * [`Counter`] — event counters with derived rates;
//! * [`Histogram`] — integer-valued histograms (e.g. MSHR probes/access);
//! * [`RunningStats`] — streaming mean/min/max/variance;
//! * [`geometric_mean`] / [`harmonic_mean`] — the paper's two summary means
//!   (GM for speedups, HMIPC for multi-programmed throughput);
//! * [`Table`] — fixed-width text table rendering for experiment output;
//! * [`StatRecord`] — a named bag of final statistic values exported by each
//!   simulated component;
//! * [`MetricsSink`] — a hierarchical, typed metrics tree (component →
//!   counters/gauges/histograms) with JSON/CSV export and baseline diffing;
//! * [`Json`] — a minimal dependency-free JSON value, writer, and parser.
//!
//! # Examples
//!
//! ```
//! use stacksim_stats::{geometric_mean, harmonic_mean};
//!
//! let speedups = [1.2, 1.5, 2.0];
//! assert!((geometric_mean(&speedups).unwrap() - 1.5326).abs() < 1e-3);
//! let ipcs = [0.5, 1.0];
//! assert!((harmonic_mean(&ipcs).unwrap() - 0.6667).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
mod json;
mod means;
mod metrics;
mod record;
mod running;
mod table;

pub use counter::Counter;
pub use histogram::Histogram;
pub use json::{Json, JsonError};
pub use means::{geometric_mean, harmonic_mean, MeanError};
pub use metrics::{HistSummary, MetricDiff, MetricValue, MetricsSink};
pub use record::StatRecord;
pub use running::RunningStats;
pub use table::{Align, Table};
