//! Summary means used throughout the paper's evaluation.

use core::fmt;

/// Error computing a summary mean.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeanError {
    /// The input slice was empty.
    Empty,
    /// An input value was zero or negative (both means require positives).
    NonPositive,
}

impl fmt::Display for MeanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeanError::Empty => write!(f, "cannot average an empty slice"),
            MeanError::NonPositive => write!(f, "values must be strictly positive"),
        }
    }
}

impl std::error::Error for MeanError {}

/// Geometric mean of strictly positive values.
///
/// The paper summarizes per-workload speedups with the geometric mean
/// (GM(H,VH) and GM(all) columns of Figures 4, 6, 7 and 9).
///
/// # Errors
///
/// Returns [`MeanError::Empty`] for an empty slice and
/// [`MeanError::NonPositive`] if any value is ≤ 0.
///
/// # Examples
///
/// ```
/// use stacksim_stats::geometric_mean;
///
/// assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Result<f64, MeanError> {
    if values.is_empty() {
        return Err(MeanError::Empty);
    }
    let mut log_sum = 0.0;
    for &v in values {
        if v <= 0.0 {
            return Err(MeanError::NonPositive);
        }
        log_sum += v.ln();
    }
    Ok((log_sum / values.len() as f64).exp())
}

/// Harmonic mean of strictly positive values.
///
/// The paper reports multi-programmed throughput as the harmonic mean IPC
/// across the four programs of a mix (HMIPC, Table 2(b)).
///
/// # Errors
///
/// Returns [`MeanError::Empty`] for an empty slice and
/// [`MeanError::NonPositive`] if any value is ≤ 0.
///
/// # Examples
///
/// ```
/// use stacksim_stats::harmonic_mean;
///
/// assert!((harmonic_mean(&[1.0, 1.0, 2.0, 2.0]).unwrap() - 4.0 / 3.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean(values: &[f64]) -> Result<f64, MeanError> {
    if values.is_empty() {
        return Err(MeanError::Empty);
    }
    let mut inv_sum = 0.0;
    for &v in values {
        if v <= 0.0 {
            return Err(MeanError::NonPositive);
        }
        inv_sum += 1.0 / v;
    }
    Ok(values.len() as f64 / inv_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gm_basics() {
        assert_eq!(geometric_mean(&[]), Err(MeanError::Empty));
        assert_eq!(geometric_mean(&[1.0, 0.0]), Err(MeanError::NonPositive));
        assert_eq!(geometric_mean(&[1.0, -2.0]), Err(MeanError::NonPositive));
        assert!((geometric_mean(&[3.0]).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hm_basics() {
        assert_eq!(harmonic_mean(&[]), Err(MeanError::Empty));
        assert_eq!(harmonic_mean(&[0.0]), Err(MeanError::NonPositive));
        assert!((harmonic_mean(&[4.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hm_dominated_by_slowest() {
        // One slow program drags HMIPC down — the paper's motivation for
        // using it as the multi-programmed metric.
        let hm = harmonic_mean(&[0.1, 2.0, 2.0, 2.0]).unwrap();
        assert!(hm < 0.4);
    }

    #[test]
    fn gm_of_equal_values_is_that_value() {
        let gm = geometric_mean(&[1.75, 1.75, 1.75]).unwrap();
        assert!((gm - 1.75).abs() < 1e-12);
    }

    #[test]
    fn gm_le_am_property() {
        let vals = [0.5, 1.3, 2.2, 4.4];
        let gm = geometric_mean(&vals).unwrap();
        let am = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(gm <= am);
        let hm = harmonic_mean(&vals).unwrap();
        assert!(hm <= gm);
    }
}
