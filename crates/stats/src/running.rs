//! Streaming summary statistics.

use core::fmt;

/// Streaming mean / min / max / variance over `f64` samples, using
/// Welford's numerically stable online algorithm.
///
/// # Examples
///
/// ```
/// use stacksim_stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), Some(2.0));
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(3.0));
/// assert!((s.variance().unwrap() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Smallest sample; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sample variance (n−1 denominator); `None` with fewer than 2 samples.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Sample standard deviation; `None` with fewer than 2 samples.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = RunningStats::new();
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(m) => write!(
                f,
                "n={} mean={:.4} [{:.4},{:.4}]",
                self.count, m, self.min, self.max
            ),
            None => write!(f, "n=0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn single_sample_has_no_variance() {
        let mut s = RunningStats::new();
        s.record(5.0);
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.variance(), None);
    }

    #[test]
    fn matches_batch_computation() {
        let vals: Vec<f64> = (0..100).map(|i| (i as f64 * 0.731).sin() + 2.0).collect();
        let mut s = RunningStats::new();
        for &v in &vals {
            s.record(v);
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (vals.len() - 1) as f64;
        assert!((s.mean().unwrap() - mean).abs() < 1e-12);
        assert!((s.variance().unwrap() - var).abs() < 1e-10);
    }

    #[test]
    fn reset_restores_empty() {
        let mut s = RunningStats::new();
        s.record(1.0);
        s.reset();
        assert_eq!(s.count(), 0);
    }
}
