//! A minimal, dependency-free JSON value with a writer and a
//! recursive-descent parser.
//!
//! The simulator's export formats are deliberately small (flat objects,
//! arrays, strings, numbers), so a full serde stack would be dead weight —
//! this module implements exactly the subset the metrics pipeline emits and
//! reads back: the complete JSON grammar over UTF-8 strings, with object
//! member order preserved (members are stored as a `Vec`, not a map).
//!
//! # Examples
//!
//! ```
//! use stacksim_stats::Json;
//!
//! let v = Json::parse(r#"{"name": "l2", "hits": 90, "tags": ["a", "b"]}"#).unwrap();
//! assert_eq!(v.get("hits").and_then(Json::as_f64), Some(90.0));
//! let text = v.to_string();
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use core::fmt;

/// A JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no NaN/Infinity; the writer rejects them).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered `(key, value)` members.
    Obj(Vec<(String, Json)>),
}

/// A JSON parse error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first malformed byte.
    ///
    /// # Examples
    ///
    /// ```
    /// use stacksim_stats::Json;
    ///
    /// assert_eq!(Json::parse("3.5").unwrap().as_f64(), Some(3.5));
    /// assert!(Json::parse("3.5 junk").is_err());
    /// ```
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` on other variants or a missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub const fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON with two-space indentation
    /// and a trailing newline (the on-disk format of `reproduce --out`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_json_number(out, *n),
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes a number the shortest way that round-trips: integers without a
/// fractional part (exact for counters up to 2^53), everything else via
/// Rust's shortest-roundtrip float formatting. Non-finite values render as
/// `null` per JSON's grammar.
fn write_json_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(out, "{}", n as i64).expect("string write");
    } else {
        write!(out, "{n}").expect("string write");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a maximal run of plain bytes in one slice.
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            s.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            s.push(self.unicode_escape()?);
                            continue; // unicode_escape advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let code = self.hex4()?;
        // Surrogate pair: a high surrogate must be followed by \uXXXX low.
        if (0xD800..0xDC00).contains(&code) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = core::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn preserves_member_order() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("quote \" slash \\ newline \n tab \t unicode \u{1F600}".into());
        let text = original.to_string();
        assert_eq!(Json::parse(&text).unwrap(), original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn pretty_round_trips() {
        let v =
            Json::parse(r#"{"m": {"hits": 90, "rate": 0.9}, "list": [1, 2], "e": {}}"#).unwrap();
        let pretty = v.pretty();
        assert!(pretty.contains("  \"m\": {"));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", r#"{"a" 1}"#, "tru", "1 2", "{1: 2}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = Json::parse("[1, ?]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{ }").unwrap(), Json::Obj(vec![]));
        assert_eq!(Json::Obj(vec![]).pretty(), "{}\n");
    }

    #[test]
    fn control_and_unicode_heavy_strings_round_trip() {
        // Every control character, both escape styles' targets, and
        // multi-byte text — in values and in keys.
        let controls: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let spicy = format!("{controls} \"\\/ é λ 中文 \u{FFFD} \u{1F600}");
        let v = Json::Obj(vec![
            (spicy.clone(), Json::Str(spicy.clone())),
            ("plain".into(), Json::Str(controls)),
        ]);
        for text in [v.to_string(), v.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
        // The two escape spellings of the same string parse identically.
        assert_eq!(
            Json::parse(r#""Aé😀""#).unwrap(),
            Json::Str("Aé\u{1F600}".into())
        );
    }

    #[test]
    fn deep_nesting_round_trips() {
        // 256 alternating object/array levels, well past any realistic
        // metric tree, through both writers and back.
        let mut v = Json::Num(42.0);
        for depth in 0..256usize {
            v = if depth % 2 == 0 {
                Json::Arr(vec![v])
            } else {
                Json::Obj(vec![("d".into(), v)])
            };
        }
        for text in [v.to_string(), v.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    /// Deterministic generator state (an LCG — the crate has no RNG
    /// dependency and must not grow one for tests).
    fn lcg(x: &mut u64) -> u64 {
        *x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        *x >> 33
    }

    fn gen_string(x: &mut u64) -> String {
        const PALETTE: &[char] = &[
            'a',
            'Z',
            '9',
            ' ',
            '"',
            '\\',
            '/',
            '\n',
            '\r',
            '\t',
            '\u{0}',
            '\u{1b}',
            'é',
            'λ',
            '中',
            '\u{FFFD}',
            '\u{1F600}',
        ];
        (0..lcg(x) % 12)
            .map(|_| PALETTE[(lcg(x) as usize) % PALETTE.len()])
            .collect()
    }

    fn gen_value(x: &mut u64, depth: usize) -> Json {
        let leaf_only = depth == 0;
        match lcg(x) % if leaf_only { 4 } else { 6 } {
            0 => Json::Null,
            1 => Json::Bool(lcg(x).is_multiple_of(2)),
            2 => Json::Num(match lcg(x) % 4 {
                0 => (lcg(x) % 1_000_000) as f64,
                1 => -((lcg(x) % 1_000) as f64),
                2 => (lcg(x) % 1_000_000) as f64 / (lcg(x) % 997 + 1) as f64,
                _ => (lcg(x) % ((1 << 53) - 1)) as f64,
            }),
            3 => Json::Str(gen_string(x)),
            4 => Json::Arr((0..lcg(x) % 4).map(|_| gen_value(x, depth - 1)).collect()),
            _ => Json::Obj(
                (0..lcg(x) % 4)
                    .map(|i| (format!("k{i}{}", gen_string(x)), gen_value(x, depth - 1)))
                    .collect(),
            ),
        }
    }

    #[test]
    fn seeded_generated_documents_round_trip() {
        for seed in 0..200u64 {
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let v = gen_value(&mut x, 4);
            for text in [v.to_string(), v.pretty()] {
                assert_eq!(
                    Json::parse(&text).unwrap(),
                    v,
                    "seed {seed} failed on {text:?}"
                );
            }
        }
    }

    #[test]
    fn seeded_truncations_and_mutations_never_panic() {
        for seed in 0..50u64 {
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            // Wrap in an object so every strict prefix is structurally
            // incomplete and must be rejected (not just non-panicking).
            let doc = Json::Obj(vec![("v".into(), gen_value(&mut x, 3))]).to_string();
            for end in 1..doc.len() {
                if !doc.is_char_boundary(end) {
                    continue;
                }
                assert!(
                    Json::parse(&doc[..end]).is_err(),
                    "seed {seed}: accepted truncation {:?}",
                    &doc[..end]
                );
            }
            // Single-byte splices may stay valid (inside a string) or not;
            // either way the parser must return, never panic or loop.
            let bytes = doc.as_bytes();
            for i in 0..bytes.len() {
                let mut mutated = bytes.to_vec();
                mutated[i] = b"?{}[]\",:x9\\"[i % 11];
                if let Ok(text) = String::from_utf8(mutated) {
                    let _ = Json::parse(&text);
                }
            }
        }
    }
}
