//! The core: issue, reorder window, DL1, L1 MSHRs, prefetchers, commit.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use stacksim_cache::{
    AccessOutcome, NextLinePrefetcher, Prefetcher, SetAssocCache, StridePrefetcher,
};
use stacksim_mshr::{CamMshr, MissHandler, MissKind, MissTarget};
use stacksim_stats::StatRecord;
use stacksim_types::{CoreId, Cycle, Cycles, LineAddr};
use stacksim_vm::{PageAllocator, Tlb, TlbConfig, TlbOutcome, VirtAddr};
use stacksim_workload::{Instr, InstrBlock, TraceGenerator};

use crate::branch::Tage;
use crate::config::CoreConfig;
use crate::request::CoreRequest;

/// State of one reorder-window slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    /// The µop has executed; it can commit once it reaches the head.
    Done,
    /// The µop waits on a line fill.
    Waiting(LineAddr),
    /// The µop completes at a known future cycle (TLB page walk).
    ReadyAt(Cycle),
}

/// The reorder window: a fixed-capacity power-of-two ring of [`Slot`]s.
///
/// The window only ever commits from the head and appends at the tail, so
/// a masked-index ring replaces the previous `VecDeque` — same observable
/// behavior, but the slot a µop lands in is one store with no
/// capacity/wrap bookkeeping on the hot path. Capacity is rounded up to a
/// power of two; the *logical* window limit stays wherever the owner
/// enforces it (the `config.window` check in `issue`).
#[derive(Debug)]
struct SlotRing {
    buf: Box<[Slot]>,
    head: usize,
    len: usize,
    mask: usize,
}

impl SlotRing {
    fn with_capacity(capacity: usize) -> SlotRing {
        let cap = capacity.next_power_of_two().max(1);
        SlotRing {
            buf: vec![Slot::Done; cap].into_boxed_slice(),
            head: 0,
            len: 0,
            mask: cap - 1,
        }
    }

    const fn len(&self) -> usize {
        self.len
    }

    const fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn front(&self) -> Option<&Slot> {
        (self.len > 0).then(|| &self.buf[self.head])
    }

    #[inline]
    fn pop_front(&mut self) {
        debug_assert!(self.len > 0, "pop from an empty window");
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
    }

    #[inline]
    fn push_back(&mut self, slot: Slot) {
        debug_assert!(self.len <= self.mask, "window ring overfilled");
        self.buf[(self.head + self.len) & self.mask] = slot;
        self.len += 1;
    }

    /// Visits every occupied slot head-to-tail (the fill wake-up walk).
    fn for_each_mut(&mut self, mut f: impl FnMut(&mut Slot)) {
        for i in 0..self.len {
            f(&mut self.buf[(self.head + i) & self.mask]);
        }
    }
}

/// Per-core virtual-memory state: the DTLB plus a handle on the machine's
/// shared FCFS page allocator.
struct CoreVm {
    tlb: Tlb,
    allocator: Rc<RefCell<PageAllocator>>,
    asid: u16,
}

/// One simulated core.
///
/// See the crate documentation for the execution model. The owner must:
///
/// 1. call [`cycle`](Core::cycle) once per CPU cycle, forwarding the
///    produced [`CoreRequest`]s to the shared L2;
/// 2. call [`fill`](Core::fill) when a previously requested line returns,
///    forwarding any returned writeback request to the L2.
pub struct Core {
    id: CoreId,
    config: CoreConfig,
    generator: Box<dyn TraceGenerator>,
    /// Batched fetch buffer: the generator refills a whole block per
    /// virtual call; the fetch path drains it through a bump cursor. The
    /// observable µop sequence is identical to per-instruction pulls
    /// (generators run ahead, but they are pure sources — no simulation
    /// state feeds back into them).
    block: InstrBlock,
    /// Misprediction verdicts for the branches of the current block, in
    /// block order, resolved in one TAGE pass at refill time (the block is
    /// a pure source, so predictor state is a function of the branch
    /// sequence alone). `branch_cursor` tracks consumption at issue.
    branch_flags: Vec<bool>,
    branch_cursor: usize,
    dl1: SetAssocCache,
    mshr: CamMshr,
    nextline: Option<NextLinePrefetcher>,
    stride: Option<StridePrefetcher>,
    /// Scratch buffer for prefetch candidates, reused across accesses so
    /// the per-demand-access training loop never allocates.
    pf_buf: Vec<LineAddr>,
    window: SlotRing,
    stalled_instr: Option<(Instr, LineAddr)>,
    vm: Option<CoreVm>,
    tage: Option<Tage>,
    fetch_stall_until: Cycle,
    /// Memoized [`next_activity`](Core::next_activity) bound (absolute,
    /// un-clamped). `None` = stale; recomputed lazily and invalidated by
    /// the only two mutation paths, [`cycle`](Core::cycle) and
    /// [`fill`](Core::fill).
    activity_bound: Cell<Option<Option<Cycle>>>,
    token: u64,
    committed: u64,
    instr_limit: Option<u64>,
    finish_cycle: Option<Cycle>,
    // Statistics.
    mshr_stall_cycles: u64,
    window_stall_cycles: u64,
    branch_stall_cycles: u64,
    prefetches_issued: u64,
    prefetches_dropped: u64,
    spurious_fills: u64,
}

impl Core {
    /// Creates a core running `generator`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`CoreConfig::validate`]).
    pub fn new(id: CoreId, config: CoreConfig, generator: Box<dyn TraceGenerator>) -> Self {
        config.validate();
        let tage = config.branch.clone().map(Tage::new);
        Core {
            id,
            generator,
            block: InstrBlock::default(),
            branch_flags: Vec::new(),
            branch_cursor: 0,
            dl1: SetAssocCache::new(config.dl1),
            mshr: CamMshr::new(config.l1_mshrs),
            nextline: (config.nextline_degree > 0)
                .then(|| NextLinePrefetcher::new(config.nextline_degree)),
            stride: (config.stride_entries > 0)
                .then(|| StridePrefetcher::new(config.stride_entries, 1)),
            pf_buf: Vec::new(),
            window: SlotRing::with_capacity(config.window),
            config,
            stalled_instr: None,
            vm: None,
            tage,
            fetch_stall_until: Cycle::ZERO,
            activity_bound: Cell::new(None),
            token: 0,
            committed: 0,
            instr_limit: None,
            finish_cycle: None,
            mshr_stall_cycles: 0,
            window_stall_cycles: 0,
            branch_stall_cycles: 0,
            prefetches_issued: 0,
            prefetches_dropped: 0,
            spurious_fills: 0,
        }
    }

    /// Attaches virtual memory: the core's program now emits *virtual*
    /// addresses, translated through a private DTLB and the machine's
    /// shared first-come-first-serve [`PageAllocator`] under address space
    /// `asid`. TLB misses charge the configured page-walk latency.
    pub fn attach_vm(
        &mut self,
        config: TlbConfig,
        allocator: Rc<RefCell<PageAllocator>>,
        asid: u16,
    ) {
        self.vm = Some(CoreVm {
            tlb: Tlb::new(config),
            allocator,
            asid,
        });
    }

    /// This core's identifier.
    pub const fn id(&self) -> CoreId {
        self.id
    }

    /// The running program's name.
    pub fn program(&self) -> &str {
        self.generator.name()
    }

    /// µops committed so far.
    pub const fn committed(&self) -> u64 {
        self.committed
    }

    /// Freezes statistics once `limit` µops have committed: the cycle this
    /// happens is recorded as [`finish_cycle`](Core::finish_cycle), while
    /// the core keeps executing and competing for shared resources (the
    /// paper's multi-programmed methodology, §2.4).
    pub fn set_instr_limit(&mut self, limit: u64) {
        self.instr_limit = Some(limit);
    }

    /// The cycle at which the instruction limit was reached, if yet.
    pub const fn finish_cycle(&self) -> Option<Cycle> {
        self.finish_cycle
    }

    /// IPC over the frozen window, if the limit has been reached.
    pub fn frozen_ipc(&self) -> Option<f64> {
        let limit = self.instr_limit?;
        let finish = self.finish_cycle?;
        (finish.raw() > 0).then(|| limit as f64 / finish.raw() as f64)
    }

    /// Simulates one cycle: commits from the window head, then issues new
    /// µops. Demand misses and prefetches are appended to `requests` for
    /// the owner to route to the L2.
    pub fn cycle(&mut self, now: Cycle, requests: &mut Vec<CoreRequest>) {
        self.activity_bound.set(None);
        self.commit(now);
        self.issue(now, requests);
    }

    fn commit(&mut self, now: Cycle) {
        for _ in 0..self.config.commit_width {
            let ready = match self.window.front() {
                Some(Slot::Done) => true,
                Some(Slot::ReadyAt(t)) => *t <= now,
                _ => false,
            };
            if !ready {
                break;
            }
            self.window.pop_front();
            self.committed += 1;
            if self.finish_cycle.is_none() && self.instr_limit.is_some_and(|l| self.committed >= l)
            {
                self.finish_cycle = Some(now);
            }
        }
    }

    /// Replays the commits the per-cycle loop would have performed over the
    /// `n` fetch-stalled cycles starting at `from`. With issue silenced the
    /// window evolves only through [`commit`](Core::commit), a pure function
    /// of the window itself, so walking the poppable cycles reproduces the
    /// committed count and `finish_cycle` bit-identically. Cycles whose head
    /// is not yet ready are stepped over in one bound.
    fn replay_commits(&mut self, from: Cycle, n: u64) {
        let mut c = 0;
        let mut popped = false;
        while c < n {
            match self.window.front() {
                Some(Slot::Done) => {}
                Some(Slot::ReadyAt(t)) if t.raw() <= from.raw() + c => {}
                Some(Slot::ReadyAt(t)) if t.raw() < from.raw() + n => {
                    c = t.raw() - from.raw();
                    continue;
                }
                _ => break,
            }
            self.commit(Cycle::new(from.raw() + c));
            popped = true;
            c += 1;
        }
        if popped {
            self.activity_bound.set(None);
        }
    }

    fn issue(&mut self, now: Cycle, requests: &mut Vec<CoreRequest>) {
        if now < self.fetch_stall_until {
            // The front-end is refilling after a branch misprediction.
            self.branch_stall_cycles += 1;
            return;
        }
        for _ in 0..self.config.issue_width {
            if self.window.len() >= self.config.window {
                self.window_stall_cycles += 1;
                return;
            }
            let resumed = self.stalled_instr.is_some();
            let (instr, stalled_line) = match self.stalled_instr.take() {
                Some((i, line)) => (i, Some(line)),
                None => {
                    let instr = match self.block.take() {
                        Some(i) => i,
                        None => {
                            self.refill_block();
                            // simlint::allow(P002, reason = "refill fills the block to its capacity, which is validated non-zero at construction")
                            self.block.take().expect("a refilled block is non-empty")
                        }
                    };
                    (instr, None)
                }
            };
            match instr {
                Instr::Compute => self.window.push_back(Slot::Done),
                Instr::Branch { .. } => {
                    let Some(tage) = &mut self.tage else {
                        self.window.push_back(Slot::Done);
                        continue;
                    };
                    // The verdict was resolved in block order at refill
                    // time; consume it and charge the statistics now, at
                    // the cycle the per-µop walk would have.
                    let mispredicted = self.branch_flags[self.branch_cursor];
                    self.branch_cursor += 1;
                    tage.note_outcome(mispredicted);
                    if mispredicted {
                        // Mispredicted: the branch resolves after the
                        // pipeline refill, and fetch stalls until then.
                        let resolve = now + Cycles::new(tage.penalty());
                        self.window.push_back(Slot::ReadyAt(resolve));
                        self.fetch_stall_until = resolve;
                        return;
                    }
                    self.window.push_back(Slot::Done);
                }
                Instr::Load { pc, addr } | Instr::Store { pc, addr } => {
                    let is_write = instr.is_store();
                    if resumed {
                        // A µop retrying after an MSHR-full stall: it was
                        // already counted, translated, and already trained
                        // the prefetchers; probe quietly.
                        let line = stalled_line.expect("stalled memory op kept its line"); // simlint::allow(P002, reason = "a resumed uop is re-probed only after an MSHR-full stall recorded its line")
                        if self.dl1.contains(line) {
                            self.window.push_back(Slot::Done);
                        } else if !self.try_miss(line, pc, is_write, requests) {
                            self.stalled_instr = Some((instr, line));
                            self.mshr_stall_cycles += 1;
                            return;
                        }
                        continue;
                    }
                    // Translate (virtual machines only); caches are
                    // physically tagged.
                    let (line, walk) = self.translate(addr);
                    match self.dl1.access(line, is_write) {
                        AccessOutcome::Hit => match walk {
                            // The page walk is the critical path of an
                            // L1 hit; longer-latency misses overlap it.
                            Some(w) => self.window.push_back(Slot::ReadyAt(now + w)),
                            None => self.window.push_back(Slot::Done),
                        },
                        AccessOutcome::Miss => {
                            if !self.try_miss(line, pc, is_write, requests) {
                                // L1 MSHRs exhausted: hold the µop and stop
                                // issuing for this cycle.
                                self.stalled_instr = Some((instr, line));
                                self.mshr_stall_cycles += 1;
                                return;
                            }
                        }
                    }
                    self.train_prefetchers(pc, line, requests);
                }
            }
        }
    }

    /// Refills the fetch block and resolves its branches through TAGE in
    /// one pass. Branches are consumed strictly in block order (a branch
    /// never parks in `stalled_instr`), and the predictor's tables are a
    /// pure function of the branch sequence, so resolving a whole block
    /// ahead of issue yields bit-identical verdicts while paying the
    /// table-walk cost once per block instead of once per µop. Statistics
    /// are charged per *issued* branch in `issue`, keeping counts exact
    /// even when a run ends mid-block.
    fn refill_block(&mut self) {
        self.generator.refill(&mut self.block);
        let Some(tage) = &mut self.tage else {
            return;
        };
        self.branch_flags.clear();
        self.branch_cursor = 0;
        for instr in self.block.pending() {
            if let Instr::Branch { pc, taken } = *instr {
                self.branch_flags.push(tage.process(pc, taken));
            }
        }
    }

    /// Translates a program address to a physical line. Returns the page
    /// walk penalty when the DTLB missed.
    ///
    /// # Panics
    ///
    /// Panics if physical memory is exhausted (the configured footprints
    /// are validated to fit).
    fn translate(&mut self, addr: stacksim_types::PhysAddr) -> (LineAddr, Option<Cycles>) {
        let Some(vm) = &mut self.vm else {
            return (addr.line(), None);
        };
        let vaddr = VirtAddr::new(addr.raw());
        let walk = match vm.tlb.access(vaddr.vpage()) {
            TlbOutcome::Hit => None,
            TlbOutcome::Miss { walk } => Some(walk),
        };
        let paddr = vm
            .allocator
            .borrow_mut()
            .translate(vm.asid, vaddr)
            .expect("physical memory exhausted; grow the machine's memory"); // simlint::allow(P002, reason = "physical memory is sized to cover every mix footprint; exhaustion is a config bug worth stopping on")
        (paddr.line(), walk)
    }

    /// Records a demand miss. Returns `false` if the MSHR file is full.
    fn try_miss(
        &mut self,
        line: LineAddr,
        pc: u64,
        is_write: bool,
        requests: &mut Vec<CoreRequest>,
    ) -> bool {
        // Encode write intent in the token's low bit so the eventual fill
        // knows whether to install the line dirty.
        self.token += 1;
        let token = (self.token << 1) | u64::from(is_write);
        let target = MissTarget::demand(self.id, token);
        let kind = if is_write {
            MissKind::Write
        } else {
            MissKind::Read
        };
        match self.mshr.allocate(line, target, kind, Cycle::ZERO) {
            Ok(outcome) => {
                self.window.push_back(Slot::Waiting(line));
                if outcome.is_primary() {
                    requests.push(CoreRequest::demand(self.id, line, pc, is_write));
                }
                true
            }
            Err(_) => false,
        }
    }

    fn train_prefetchers(&mut self, pc: u64, line: LineAddr, requests: &mut Vec<CoreRequest>) {
        let mut candidates = std::mem::take(&mut self.pf_buf);
        candidates.clear();
        if let Some(pf) = &mut self.nextline {
            pf.observe_into(pc, line, &mut candidates);
        }
        if let Some(pf) = &mut self.stride {
            pf.observe_into(pc, line, &mut candidates);
        }
        for target_line in candidates.drain(..) {
            if self.dl1.contains(target_line) || self.mshr.lookup(target_line).found {
                continue;
            }
            if self.mshr.is_full() {
                self.prefetches_dropped += 1;
                continue;
            }
            self.token += 1;
            let target = MissTarget::prefetch(self.id, self.token << 1);
            self.mshr
                .allocate(target_line, target, MissKind::Read, Cycle::ZERO)
                .expect("mshr has room"); // simlint::allow(P002, reason = "prefetch issue is gated on MSHR headroom checked just above")
            requests.push(CoreRequest::prefetch(self.id, target_line));
            self.prefetches_issued += 1;
        }
        self.pf_buf = candidates;
    }

    /// Delivers a line fill from the memory system: wakes every waiting
    /// window slot, installs the line into the DL1, and — if a dirty victim
    /// was evicted — returns the writeback request the owner must route to
    /// the L2.
    pub fn fill(&mut self, line: LineAddr) -> Option<CoreRequest> {
        self.activity_bound.set(None);
        let Some((entry, _)) = self.mshr.deallocate(line) else {
            self.spurious_fills += 1;
            return None;
        };
        self.window.for_each_mut(|slot| {
            if *slot == Slot::Waiting(line) {
                *slot = Slot::Done;
            }
        });
        let dirty = entry.targets().iter().any(|t| t.token & 1 == 1);
        let victim = self.dl1.fill(line, dirty)?;
        victim
            .dirty
            .then(|| CoreRequest::writeback(self.id, victim.line))
    }

    /// The earliest cycle at or after `now` at which this core can make
    /// progress (commit or issue anything), or `None` if it is blocked
    /// until a [`fill`](Core::fill) arrives. `Some(now)` means the core is
    /// active this cycle and its owner must not fast-forward past it.
    ///
    /// Mirrors the order of checks in the cycle loop exactly: a `Done` or
    /// due `ReadyAt` head commits; a non-full window with no stalled µop
    /// always fetches fresh work once any fetch stall expires; a µop
    /// stalled on a full L1 MSHR resumes only when its line arrived, its
    /// line gained an entry, or an entry freed up — all of which happen in
    /// `fill`, so a blocked verdict stays valid until then.
    ///
    /// The answer is memoized as an absolute (un-clamped) bound: every
    /// input is mutated only by [`cycle`](Core::cycle) and
    /// [`fill`](Core::fill), which invalidate it, so the owner's per-cycle
    /// probes between those events cost one cached read. Clamping commutes
    /// with the merge (`max(min(a, b), now) == min(max(a, now),
    /// max(b, now))`), so the clamped-per-source original and this
    /// clamp-once form agree everywhere.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        let bound = match self.activity_bound.get() {
            Some(b) => b,
            None => {
                let b = self.activity_bound_uncached();
                self.activity_bound.set(Some(b));
                b
            }
        };
        bound.map(|t| t.max(now))
    }

    /// The earliest cycle at which anything can happen, un-clamped (a
    /// bound in the past means "active whenever asked").
    fn activity_bound_uncached(&self) -> Option<Cycle> {
        let commit_at = match self.window.front() {
            Some(Slot::Done) => Some(Cycle::ZERO),
            Some(Slot::ReadyAt(t)) => Some(*t),
            Some(Slot::Waiting(_)) | None => None,
        };
        let issue_at = if self.window.len() >= self.config.window {
            None // issue is gated on commit draining the window
        } else if let Some((_, line)) = &self.stalled_instr {
            let unblocked = self.dl1.contains(*line)
                || self.mshr.entry(*line).is_some()
                || !self.mshr.is_full();
            unblocked.then_some(self.fetch_stall_until)
        } else {
            Some(self.fetch_stall_until) // the generator always has another µop
        };
        match (commit_at, issue_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(t), None) | (None, Some(t)) => Some(t),
            (None, None) => None,
        }
    }

    /// The cycle until which fetch stalls refilling after a mispredict
    /// (`<= now` means fetch is live). While this lies in the future the
    /// core cannot issue, so its only possible activity is committing —
    /// a pure function of its own window that
    /// [`note_skipped`](Core::note_skipped) replays exactly.
    pub const fn fetch_stall_until(&self) -> Cycle {
        self.fetch_stall_until
    }

    /// Accounts for `n` skipped cycles starting at `from`, during which the
    /// owner proved (via [`next_activity`](Core::next_activity)) that this
    /// core could not issue — though it may still commit while
    /// fetch-stalled, which is replayed here cycle-exactly. Replays the
    /// stall counters the per-cycle loop would have incremented: `issue`
    /// charges a branch stall while the front-end refills, otherwise a
    /// window stall when the window is full, otherwise an MSHR stall on
    /// the held µop.
    pub fn note_skipped(&mut self, from: Cycle, n: u64) {
        let from_raw = from.raw();
        let branch = self.fetch_stall_until.raw().clamp(from_raw, from_raw + n) - from_raw;
        self.branch_stall_cycles += branch;
        if branch > 0 {
            self.replay_commits(from, branch);
        }
        let rest = n - branch;
        if rest == 0 {
            return;
        }
        if self.window.len() >= self.config.window {
            self.window_stall_cycles += rest;
        } else {
            debug_assert!(
                self.stalled_instr.is_some(),
                "a skipped core must be fetch-stalled, window-full or MSHR-stalled"
            );
            self.mshr_stall_cycles += rest;
        }
    }

    /// Cycles issue stalled on a full L1 MSHR file.
    pub const fn mshr_stall_cycles(&self) -> u64 {
        self.mshr_stall_cycles
    }

    /// Cycles issue stalled on a full reorder window.
    pub const fn window_stall_cycles(&self) -> u64 {
        self.window_stall_cycles
    }

    /// Cycles fetch stalled refilling after a branch misprediction.
    pub const fn branch_stall_cycles(&self) -> u64 {
        self.branch_stall_cycles
    }

    /// Outstanding L1 misses.
    pub fn outstanding_misses(&self) -> usize {
        self.mshr.occupancy()
    }

    /// Occupied reorder-window slots.
    pub fn window_occupancy(&self) -> usize {
        self.window.len()
    }

    /// Whether the core is completely drained (useful in tests).
    pub fn is_idle(&self) -> bool {
        self.window.is_empty() && self.mshr.occupancy() == 0
    }

    /// Exports per-core statistics.
    pub fn stats(&self) -> StatRecord {
        let mut r = StatRecord::new(format!("core{}", self.id.index()));
        r.set("committed", self.committed as f64);
        r.set("mshr_stall_cycles", self.mshr_stall_cycles as f64);
        r.set("window_stall_cycles", self.window_stall_cycles as f64);
        r.set("prefetches_issued", self.prefetches_issued as f64);
        r.set("prefetches_dropped", self.prefetches_dropped as f64);
        r.set("spurious_fills", self.spurious_fills as f64);
        let mut dl1 = StatRecord::new("dl1");
        for (name, value) in self.dl1.stats().iter() {
            dl1.set(name, value);
        }
        r.absorb(&dl1);
        r.set("branch_stall_cycles", self.branch_stall_cycles as f64);
        if let Some(vm) = &self.vm {
            r.absorb(&vm.tlb.stats());
        }
        if let Some(tage) = &self.tage {
            r.absorb(&tage.stats());
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_types::Cycles;

    /// A scripted generator for deterministic core tests.
    struct Script {
        instrs: Vec<Instr>,
        pos: usize,
    }

    impl Script {
        fn new(instrs: Vec<Instr>) -> Self {
            Script { instrs, pos: 0 }
        }
    }

    impl TraceGenerator for Script {
        fn next_instr(&mut self) -> Instr {
            let i = self.instrs[self.pos % self.instrs.len()];
            self.pos += 1;
            i
        }

        fn name(&self) -> &str {
            "script"
        }
    }

    fn load(line: u64) -> Instr {
        Instr::Load {
            pc: 0x100,
            addr: stacksim_types::LineAddr::new(line).base(),
        }
    }

    fn store(line: u64) -> Instr {
        Instr::Store {
            pc: 0x200,
            addr: stacksim_types::LineAddr::new(line).base(),
        }
    }

    fn bare_core(instrs: Vec<Instr>) -> Core {
        let cfg = CoreConfig::penryn().without_prefetchers();
        Core::new(CoreId::new(0), cfg, Box::new(Script::new(instrs)))
    }

    #[test]
    fn compute_only_commits_at_full_width() {
        let mut core = bare_core(vec![Instr::Compute]);
        let mut reqs = Vec::new();
        let mut now = Cycle::ZERO;
        for _ in 0..100 {
            core.cycle(now, &mut reqs);
            now += Cycles::new(1);
        }
        // Width 4, but commit trails issue by one cycle.
        assert!(core.committed() >= 4 * 99 - 4);
        assert!(reqs.is_empty());
    }

    #[test]
    fn miss_emits_one_demand_request_and_blocks_commit() {
        let mut core = bare_core(vec![load(5), Instr::Compute]);
        let mut reqs = Vec::new();
        core.cycle(Cycle::ZERO, &mut reqs);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].line, LineAddr::new(5));
        assert!(!reqs[0].is_prefetch);
        // Until the fill arrives, nothing commits (the miss is at the head).
        for c in 1..50u64 {
            core.cycle(Cycle::new(c), &mut reqs);
        }
        assert_eq!(core.committed(), 0);
        // Fill: the window drains.
        assert!(core.fill(LineAddr::new(5)).is_none());
        core.cycle(Cycle::new(50), &mut reqs);
        assert!(core.committed() > 0);
    }

    #[test]
    fn secondary_miss_merges_without_new_request() {
        // Two loads to the same line back to back.
        let mut core = bare_core(vec![load(7), load(7), Instr::Compute]);
        let mut reqs = Vec::new();
        core.cycle(Cycle::ZERO, &mut reqs);
        let demand: Vec<_> = reqs.iter().filter(|r| !r.is_prefetch).collect();
        assert_eq!(demand.len(), 1, "secondary miss must merge");
        assert_eq!(core.outstanding_misses(), 1);
    }

    #[test]
    fn mshr_exhaustion_stalls_issue() {
        // Endless stream of misses to distinct lines.
        let instrs: Vec<Instr> = (0..4096).map(|i| load(i * 2)).collect();
        let mut core = bare_core(instrs);
        let mut reqs = Vec::new();
        for c in 0..100u64 {
            core.cycle(Cycle::new(c), &mut reqs);
        }
        // Exactly 8 L1 MSHRs: never more outstanding, and requests stop.
        assert_eq!(core.outstanding_misses(), 8);
        assert_eq!(reqs.iter().filter(|r| !r.is_prefetch).count(), 8);
        let s = core.stats();
        assert!(s.get("mshr_stall_cycles").unwrap() > 0.0);
    }

    #[test]
    fn window_fills_behind_long_miss() {
        // One miss, then endless compute: the window fills to capacity and
        // issue stalls (in-order commit blocks behind the miss).
        let mut instrs = vec![load(3)];
        instrs.extend(std::iter::repeat_n(Instr::Compute, 500));
        let mut core = bare_core(instrs);
        let mut reqs = Vec::new();
        for c in 0..200u64 {
            core.cycle(Cycle::new(c), &mut reqs);
        }
        assert_eq!(core.window_occupancy(), 96);
        assert!(core.stats().get("window_stall_cycles").unwrap() > 0.0);
        assert_eq!(core.committed(), 0);
    }

    #[test]
    fn store_miss_installs_dirty_and_writes_back() {
        let mut core = bare_core(vec![store(1), Instr::Compute]);
        let mut reqs = Vec::new();
        core.cycle(Cycle::ZERO, &mut reqs);
        assert!(core.fill(LineAddr::new(1)).is_none());
        // Evict line 1 by filling its set with conflicting lines; the DL1
        // has 32 sets, so lines 1 + 32k conflict. 12 ways -> fill 12 more.
        for k in 1..=12u64 {
            let victim = core.fill_for_test(LineAddr::new(1 + 32 * k));
            if let Some(wb) = victim {
                assert!(wb.is_writeback);
                assert_eq!(wb.line, LineAddr::new(1));
                return;
            }
        }
        panic!("dirty line was never evicted");
    }

    #[test]
    fn frozen_ipc_records_finish_cycle() {
        let mut core = bare_core(vec![Instr::Compute]);
        core.set_instr_limit(40);
        let mut reqs = Vec::new();
        let mut now = Cycle::ZERO;
        while core.finish_cycle().is_none() {
            now += Cycles::new(1);
            core.cycle(now, &mut reqs);
        }
        let ipc = core.frozen_ipc().unwrap();
        assert!(
            ipc > 2.0 && ipc <= 4.0,
            "compute-bound IPC near width: {ipc}"
        );
        // The core keeps running past the freeze point.
        let before = core.committed();
        core.cycle(now + Cycles::new(1), &mut reqs);
        assert!(core.committed() > before);
    }

    #[test]
    fn prefetcher_emits_nextline_requests() {
        let cfg = CoreConfig::penryn(); // prefetchers on
        let instrs: Vec<Instr> = (0..64).map(load).collect();
        let mut core = Core::new(CoreId::new(0), cfg, Box::new(Script::new(instrs)));
        let mut reqs = Vec::new();
        core.cycle(Cycle::ZERO, &mut reqs);
        assert!(
            reqs.iter().any(|r| r.is_prefetch),
            "next-line prefetch expected"
        );
    }

    #[test]
    fn spurious_fill_is_counted_not_fatal() {
        let mut core = bare_core(vec![Instr::Compute]);
        assert!(core.fill(LineAddr::new(42)).is_none());
        assert_eq!(core.stats().get("spurious_fills"), Some(1.0));
    }

    impl Core {
        /// Test helper: force-fill a line as if a prefetch returned.
        fn fill_for_test(&mut self, line: LineAddr) -> Option<CoreRequest> {
            self.activity_bound.set(None);
            let victim = self.dl1.fill(line, false)?;
            victim
                .dirty
                .then(|| CoreRequest::writeback(self.id, victim.line))
        }
    }
}
