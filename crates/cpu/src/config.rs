//! Core configuration (Table 1 of the paper).

use stacksim_cache::CacheConfig;

use crate::branch::TageConfig;

/// Static configuration of one core.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CoreConfig {
    /// µops dispatched per cycle (4 in the paper).
    pub issue_width: usize,
    /// µops committed per cycle (4 in the paper).
    pub commit_width: usize,
    /// Reorder-window capacity (96-entry ROB in the paper).
    pub window: usize,
    /// Private DL1 geometry (24 KB / 12-way in the paper).
    pub dl1: CacheConfig,
    /// DL1 MSHR entries (8 in the paper) — the core's MLP limit.
    pub l1_mshrs: usize,
    /// Next-line prefetch degree at the DL1 (0 disables).
    pub nextline_degree: usize,
    /// IP-stride prefetcher table entries at the DL1 (0 disables).
    pub stride_entries: usize,
    /// Branch predictor; `None` models perfect prediction (Table 1: TAGE
    /// 4 KB / 5 tables, 14-cycle minimum misprediction penalty).
    pub branch: Option<TageConfig>,
}

impl CoreConfig {
    /// The paper's 45 nm "Penryn"-class core (Table 1).
    pub fn penryn() -> CoreConfig {
        CoreConfig {
            issue_width: 4,
            commit_width: 4,
            window: 96,
            dl1: CacheConfig::dl1_penryn(),
            l1_mshrs: 8,
            nextline_degree: 1,
            stride_entries: 64,
            branch: Some(TageConfig::penryn_4kb()),
        }
    }

    /// Disables both DL1 prefetchers (for workload characterization runs).
    pub fn without_prefetchers(self) -> CoreConfig {
        CoreConfig {
            nextline_degree: 0,
            stride_entries: 0,
            ..self
        }
    }

    /// Disables the branch predictor (perfect prediction).
    pub fn without_branch_predictor(self) -> CoreConfig {
        CoreConfig {
            branch: None,
            ..self
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any width or the window is zero, or the window is smaller
    /// than the issue width.
    pub fn validate(&self) {
        if let Err(msg) = self.check() {
            panic!("{msg}"); // simlint::allow(P003, reason = "documented panicking validator; `check` is the typed-error path")
        }
    }

    /// Non-panicking counterpart of [`validate`](CoreConfig::validate), for
    /// callers assembling configurations from untrusted data (the scenario
    /// loader's heterogeneous `per_core` entries).
    ///
    /// # Errors
    ///
    /// Returns the first consistency problem as a message.
    ///
    /// # Examples
    ///
    /// ```
    /// use stacksim_cpu::CoreConfig;
    ///
    /// assert!(CoreConfig::penryn().check().is_ok());
    /// let narrow = CoreConfig { window: 2, ..CoreConfig::penryn() };
    /// assert!(narrow.check().is_err());
    /// ```
    pub fn check(&self) -> Result<(), String> {
        if self.issue_width == 0 {
            return Err("issue width must be non-zero".into());
        }
        if self.commit_width == 0 {
            return Err("commit width must be non-zero".into());
        }
        if self.window < self.issue_width {
            return Err("window smaller than issue width".into());
        }
        if self.l1_mshrs == 0 {
            return Err("core needs at least one L1 MSHR".into());
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::penryn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penryn_matches_table1() {
        let c = CoreConfig::penryn();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.window, 96);
        assert_eq!(c.l1_mshrs, 8);
        assert_eq!(c.dl1.size_bytes, 24 << 10);
        assert_eq!(c.dl1.associativity, 12);
        assert!(c.branch.is_some());
        c.validate();
    }

    #[test]
    fn without_prefetchers_clears_both() {
        let c = CoreConfig::penryn().without_prefetchers();
        assert_eq!(c.nextline_degree, 0);
        assert_eq!(c.stride_entries, 0);
    }

    #[test]
    #[should_panic(expected = "window smaller")]
    fn validate_rejects_tiny_window() {
        let c = CoreConfig {
            window: 2,
            ..CoreConfig::penryn()
        };
        c.validate();
    }
}
