//! The TAGE branch predictor (Table 1: "TAGE (4KB, 5 tables)", after
//! Seznec & Michaud).
//!
//! A base bimodal table backs a set of tagged tables indexed by
//! geometrically growing global-history lengths; the longest-history
//! tagged hit provides the prediction, and allocation on mispredictions
//! migrates hard branches to longer histories.

use stacksim_stats::StatRecord;

/// Geometry of the TAGE predictor.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TageConfig {
    /// Entries in the base bimodal table.
    pub base_entries: usize,
    /// Per tagged table: `(history_bits, entries, tag_bits)`.
    pub tagged: Vec<(u32, usize, u32)>,
    /// Pipeline refill penalty on a misprediction, in cycles (Table 1:
    /// 14-stage minimum).
    pub mispredict_penalty: u64,
}

impl TageConfig {
    /// The paper's 4 KB, 5-table configuration: a 2-bit bimodal base plus
    /// four tagged tables on a geometric history series (5, 15, 44, 130),
    /// sized to ~4 KB of state total.
    pub fn penryn_4kb() -> TageConfig {
        TageConfig {
            base_entries: 4096, // 4096 x 2b = 1 KB
            tagged: vec![
                (5, 1024, 8), // ~1.4 KB across the
                (15, 512, 9), //  four tagged tables
                (44, 512, 10),
                (130, 256, 11),
            ],
            mispredict_penalty: 14,
        }
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if any table is empty, not a power of two, or history lengths
    /// are not strictly increasing.
    pub fn validate(&self) {
        assert!(
            self.base_entries.is_power_of_two() && self.base_entries > 0,
            "base table size"
        );
        let mut prev = 0;
        for &(hist, entries, tag) in &self.tagged {
            assert!(hist > prev, "history lengths must strictly increase");
            assert!(
                entries.is_power_of_two() && entries > 0,
                "tagged table size"
            );
            assert!(tag > 0 && tag <= 16, "tag width");
            prev = hist;
        }
    }
}

impl Default for TageConfig {
    fn default() -> Self {
        TageConfig::penryn_4kb()
    }
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct TaggedEntry {
    tag: u16,
    /// 3-bit signed counter, taken when >= 0 is encoded as value >= 4.
    counter: u8,
    useful: u8,
}

/// An incrementally maintained XOR-fold of the global history: the value
/// equals folding the low `hist_bits` bits of the history register down to
/// `out_bits` by XOR, but each history shift updates it in O(1) (a rotate,
/// the incoming bit, and the outgoing bit re-injected at `hist_bits %
/// out_bits`) instead of re-walking the whole register. This is the
/// classic TAGE circular-shift-register construction; equivalence with the
/// direct fold is asserted by `incremental_fold_matches_direct`.
#[derive(Clone, Copy, Debug)]
struct FoldedHistory {
    value: u64,
    out_bits: u32,
    hist_bits: u32,
}

impl FoldedHistory {
    fn new(hist_bits: u32, out_bits: u32) -> FoldedHistory {
        FoldedHistory {
            value: 0,
            out_bits,
            hist_bits,
        }
    }

    /// Advances the fold for a history shift that inserts `inbit` at bit 0
    /// and drops `outbit` (bit `hist_bits - 1` of the pre-shift history).
    #[inline]
    fn push(&mut self, inbit: bool, outbit: bool) {
        let b = self.out_bits;
        let mask = (1u64 << b) - 1;
        let rotated = ((self.value << 1) | (self.value >> (b - 1))) & mask;
        self.value = rotated ^ u64::from(inbit) ^ (u64::from(outbit) << (self.hist_bits % b));
    }
}

/// The predictor state.
#[derive(Clone, Debug)]
pub struct Tage {
    config: TageConfig,
    base: Vec<u8>,
    tables: Vec<Vec<TaggedEntry>>,
    history: u128,
    /// Per tagged table: the folded history feeding its index hash.
    folded_index: Vec<FoldedHistory>,
    /// Per tagged table: the folded history feeding its tag hash.
    folded_tag: Vec<FoldedHistory>,
    // Statistics.
    predictions: u64,
    mispredictions: u64,
}

/// Which component provided a prediction (needed for the update).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// The predicted direction.
    pub taken: bool,
    /// Index of the providing tagged table, or `None` for the base table.
    provider: Option<usize>,
}

impl Tage {
    /// Creates a predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`TageConfig::validate`]).
    pub fn new(config: TageConfig) -> Self {
        config.validate();
        // The direct fold masks history to at most 127 bits (the register
        // is a u128 shifted once per branch), so the incremental registers
        // use the same effective length.
        let folded_index = config
            .tagged
            .iter()
            .map(|&(hist, entries, _)| {
                FoldedHistory::new(hist.min(127), (entries.trailing_zeros()).max(1))
            })
            .collect();
        let folded_tag = config
            .tagged
            .iter()
            .map(|&(hist, _, tag_bits)| FoldedHistory::new(hist.min(127), tag_bits.max(1)))
            .collect();
        Tage {
            base: vec![1; config.base_entries], // weakly not-taken
            tables: config
                .tagged
                .iter()
                .map(|&(_, n, _)| vec![TaggedEntry::default(); n])
                .collect(),
            config,
            history: 0,
            folded_index,
            folded_tag,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Folds `bits` of global history down to `out_bits` by XOR, walking
    /// the whole register. The hot path reads the incrementally maintained
    /// [`FoldedHistory`] registers instead; this direct version remains as
    /// the equivalence oracle for them.
    #[cfg(test)]
    fn fold_history(&self, bits: u32, out_bits: u32) -> u64 {
        let mut h = self.history & ((1u128 << bits.min(127)) - 1);
        let mut folded: u64 = 0;
        while h != 0 {
            folded ^= (h as u64) & ((1u64 << out_bits) - 1);
            h >>= out_bits;
        }
        folded
    }

    #[inline]
    fn tagged_index(&self, table: usize, pc: u64) -> (usize, u16) {
        let (_, entries, tag_bits) = self.config.tagged[table];
        let folded = self.folded_index[table].value;
        let index = ((pc >> 2) ^ (pc >> 7) ^ folded) as usize & (entries - 1);
        let tag_fold = self.folded_tag[table].value;
        let tag = (((pc >> 2) ^ (pc >> 11) ^ (tag_fold << 1)) & ((1 << tag_bits) - 1)) as u16;
        (index, tag)
    }

    fn base_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.config.base_entries - 1)
    }

    /// Shifts the resolved outcome into the global history, advancing every
    /// folded register in lockstep.
    fn push_history(&mut self, taken: bool) {
        for table in 0..self.folded_index.len() {
            let h_eff = self.folded_index[table].hist_bits;
            let outbit = (self.history >> (h_eff - 1)) & 1 == 1;
            self.folded_index[table].push(taken, outbit);
            self.folded_tag[table].push(taken, outbit);
        }
        self.history = (self.history << 1) | u128::from(taken);
    }

    /// The prediction walk without statistics: longest matching tagged
    /// table wins, the bimodal base backs everything.
    fn predict_quiet(&self, pc: u64) -> Prediction {
        for table in (0..self.tables.len()).rev() {
            let (index, tag) = self.tagged_index(table, pc);
            let e = &self.tables[table][index];
            if e.tag == tag && e.useful != u8::MAX {
                return Prediction {
                    taken: e.counter >= 4,
                    provider: Some(table),
                };
            }
        }
        Prediction {
            taken: self.base[self.base_index(pc)] >= 2,
            provider: None,
        }
    }

    /// The update walk without statistics: trains the provider, allocates
    /// on a misprediction, shifts the history. Returns whether the
    /// prediction was wrong.
    fn update_quiet(&mut self, pc: u64, prediction: Prediction, taken: bool) -> bool {
        let mispredicted = prediction.taken != taken;
        match prediction.provider {
            Some(table) => {
                let (index, tag) = self.tagged_index(table, pc);
                let e = &mut self.tables[table][index];
                if e.tag == tag {
                    e.counter = bump3(e.counter, taken);
                    if !mispredicted {
                        e.useful = e.useful.saturating_add(1).min(3);
                    } else if e.useful > 0 {
                        e.useful -= 1;
                    }
                }
            }
            None => {
                let i = self.base_index(pc);
                self.base[i] = bump2(self.base[i], taken);
            }
        }
        // On a misprediction, allocate in a longer-history table so the
        // branch can be captured with more context.
        if mispredicted {
            let start = prediction.provider.map_or(0, |t| t + 1);
            for table in start..self.tables.len() {
                let (index, tag) = self.tagged_index(table, pc);
                let e = &mut self.tables[table][index];
                if e.useful == 0 {
                    *e = TaggedEntry {
                        tag,
                        counter: if taken { 4 } else { 3 },
                        useful: 0,
                    };
                    break;
                }
                // Age the blocker so allocation eventually succeeds.
                e.useful -= 1;
            }
        }
        self.push_history(taken);
        mispredicted
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&mut self, pc: u64) -> Prediction {
        self.predictions += 1;
        self.predict_quiet(pc)
    }

    /// Updates the predictor with the resolved outcome. Returns whether the
    /// earlier prediction was wrong.
    pub fn update(&mut self, pc: u64, prediction: Prediction, taken: bool) -> bool {
        let mispredicted = prediction.taken != taken;
        if mispredicted {
            self.mispredictions += 1;
        }
        self.update_quiet(pc, prediction, taken)
    }

    /// Runs one branch through the predictor — predict, train, history
    /// shift — without touching the prediction counters. The batched front
    /// end resolves whole blocks of branches ahead of issue with this, then
    /// charges statistics per *issued* branch via
    /// [`note_outcome`](Tage::note_outcome), so counts stay identical to
    /// the per-µop path no matter how far the block cursor has run ahead.
    pub fn process(&mut self, pc: u64, taken: bool) -> bool {
        let prediction = self.predict_quiet(pc);
        self.update_quiet(pc, prediction, taken)
    }

    /// Charges the statistics for one consumed branch outcome previously
    /// computed by [`process`](Tage::process).
    pub fn note_outcome(&mut self, mispredicted: bool) {
        self.predictions += 1;
        if mispredicted {
            self.mispredictions += 1;
        }
    }

    /// Refill penalty charged per misprediction.
    pub const fn penalty(&self) -> u64 {
        self.config.mispredict_penalty
    }

    /// Mispredictions per kilo-prediction so far.
    pub fn mpki(&self) -> Option<f64> {
        (self.predictions > 0)
            .then(|| self.mispredictions as f64 / self.predictions as f64 * 1000.0)
    }

    /// Exports statistics.
    pub fn stats(&self) -> StatRecord {
        let mut r = StatRecord::new("tage");
        r.set("predictions", self.predictions as f64);
        r.set("mispredictions", self.mispredictions as f64);
        if let Some(m) = self.mpki() {
            r.set("mispredicts_per_kilo", m);
        }
        r
    }
}

fn bump2(counter: u8, up: bool) -> u8 {
    if up {
        (counter + 1).min(3)
    } else {
        counter.saturating_sub(1)
    }
}

fn bump3(counter: u8, up: bool) -> u8 {
    if up {
        (counter + 1).min(7)
    } else {
        counter.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(tage: &mut Tage, pc: u64, outcomes: &[bool]) -> u64 {
        let mut wrong = 0;
        for &taken in outcomes {
            let p = tage.predict(pc);
            if tage.update(pc, p, taken) {
                wrong += 1;
            }
        }
        wrong
    }

    #[test]
    fn learns_strongly_biased_branches() {
        let mut tage = Tage::new(TageConfig::penryn_4kb());
        let outcomes = vec![true; 200];
        let wrong = train(&mut tage, 0x400, &outcomes);
        assert!(
            wrong <= 3,
            "always-taken should be learned quickly: {wrong} wrong"
        );
    }

    #[test]
    fn learns_periodic_patterns_through_history() {
        // taken,taken,taken,not — a loop of trip count 4. A bimodal
        // predictor mispredicts every 4th; TAGE's history tables learn it.
        let mut tage = Tage::new(TageConfig::penryn_4kb());
        let outcomes: Vec<bool> = (0..2000).map(|i| i % 4 != 3).collect();
        let early = train(&mut tage, 0x500, &outcomes[..1000]);
        let late = train(&mut tage, 0x500, &outcomes[1000..]);
        assert!(
            late * 2 < early.max(1) * 2,
            "accuracy must improve with training"
        );
        assert!(
            late < 60,
            "a period-4 loop should be nearly perfect after warmup: {late} wrong in 1000"
        );
    }

    #[test]
    fn random_branches_stay_hard() {
        let mut tage = Tage::new(TageConfig::penryn_4kb());
        // A fixed sequence with full avalanche mixing (splitmix64 finalizer)
        // — statistically random, unlike simple multiplicative patterns
        // which TAGE's history tables can actually learn.
        let outcomes: Vec<bool> = (0u64..1000)
            .map(|i| {
                let mut x = i;
                x ^= x >> 30;
                x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                x & 1 == 1
            })
            .collect();
        let wrong = train(&mut tage, 0x600, &outcomes);
        assert!(
            wrong > 200,
            "near-random outcomes cannot be predicted: {wrong}"
        );
    }

    #[test]
    fn distinct_pcs_do_not_destroy_each_other() {
        let mut tage = Tage::new(TageConfig::penryn_4kb());
        for _ in 0..300 {
            let p = tage.predict(0x700);
            tage.update(0x700, p, true);
            let p = tage.predict(0x704);
            tage.update(0x704, p, false);
        }
        let p1 = tage.predict(0x700);
        let p2 = tage.predict(0x704);
        assert!(p1.taken);
        assert!(!p2.taken);
    }

    #[test]
    fn stats_track_rates() {
        let mut tage = Tage::new(TageConfig::penryn_4kb());
        train(&mut tage, 0x800, &[true, true, false, true]);
        let s = tage.stats();
        assert_eq!(s.get("predictions"), Some(4.0));
        assert!(s.get("mispredicts_per_kilo").unwrap() > 0.0);
        assert_eq!(tage.penalty(), 14);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn bad_geometry_rejected() {
        let mut cfg = TageConfig::penryn_4kb();
        cfg.tagged[1].0 = 2;
        let _ = Tage::new(cfg);
    }

    #[test]
    fn incremental_fold_matches_direct() {
        // The O(1) circular-shift registers must track the direct
        // XOR-fold of the history at every step of a long, irregular
        // branch sequence — including after the history saturates its
        // 127-bit window.
        let mut tage = Tage::new(TageConfig::penryn_4kb());
        for i in 0u64..600 {
            let mut x = i;
            x ^= x >> 33;
            x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
            x ^= x >> 33;
            let p = tage.predict(0x900 + (x % 7) * 4);
            tage.update(0x900 + (x % 7) * 4, p, x & 2 == 2);
            for (t, &(hist, entries, tag_bits)) in tage.config.tagged.iter().enumerate() {
                let index_bits = entries.trailing_zeros().max(1);
                assert_eq!(
                    tage.folded_index[t].value,
                    tage.fold_history(hist, index_bits),
                    "index fold diverged at step {i}, table {t}"
                );
                assert_eq!(
                    tage.folded_tag[t].value,
                    tage.fold_history(hist, tag_bits.max(1)),
                    "tag fold diverged at step {i}, table {t}"
                );
            }
        }
    }

    #[test]
    fn process_matches_predict_update_bit_identically() {
        // The quiet batched path must leave the predictor in exactly the
        // state the counted path would, and report the same outcomes.
        let mut counted = Tage::new(TageConfig::penryn_4kb());
        let mut quiet = Tage::new(TageConfig::penryn_4kb());
        for i in 0u64..500 {
            let pc = 0xa00 + (i % 5) * 4;
            let taken = (i * 7) % 3 != 0;
            let p = counted.predict(pc);
            let wrong_counted = counted.update(pc, p, taken);
            let wrong_quiet = quiet.process(pc, taken);
            quiet.note_outcome(wrong_quiet);
            assert_eq!(wrong_counted, wrong_quiet, "outcome diverged at step {i}");
        }
        assert_eq!(counted.history, quiet.history);
        assert_eq!(counted.base, quiet.base);
        assert_eq!(counted.predictions, quiet.predictions);
        assert_eq!(counted.mispredictions, quiet.mispredictions);
        for t in 0..counted.tables.len() {
            assert_eq!(counted.tables[t], quiet.tables[t], "table {t} diverged");
        }
    }
}
