//! The trace-driven CPU core model of the `stacksim` simulator.
//!
//! The paper extends SimpleScalar/x86 into a cycle-level multi-core model;
//! what its memory-system conclusions rest on is not pipeline microdetail
//! but the *throughput shape* of each core: a bounded issue width, a bounded
//! reorder window that drains in order, a private DL1 with a handful of
//! MSHRs, and hardware prefetchers — together these decide how much memory-
//! level parallelism a core can expose and how hard memory backpressure
//! throttles IPC (the substitution is documented in `DESIGN.md`).
//!
//! [`Core`] implements exactly that: each cycle it issues up to
//! `issue_width` µops from its [`TraceGenerator`](stacksim_workload::TraceGenerator)
//! into a reorder window,
//! probes the DL1 for memory µops, allocates L1 MSHR entries on misses
//! (merging secondaries, stalling when full), emits [`CoreRequest`]s toward
//! the shared L2, and commits completed µops in order from the window head.
//! Fills arriving from the memory system wake the waiting window slots.
//!
//! # Examples
//!
//! ```
//! use stacksim_cpu::{Core, CoreConfig};
//! use stacksim_types::{CoreId, Cycle};
//! use stacksim_workload::{Benchmark, SyntheticWorkload};
//!
//! let spec = Benchmark::by_name("mcf").unwrap();
//! let gen = SyntheticWorkload::new(spec, 1, 0);
//! let mut core = Core::new(CoreId::new(0), CoreConfig::penryn(), Box::new(gen));
//! let mut requests = Vec::new();
//! core.cycle(Cycle::ZERO, &mut requests);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod config;
mod core_model;
mod request;

pub use branch::{Prediction, Tage, TageConfig};
pub use config::CoreConfig;
pub use core_model::Core;
pub use request::CoreRequest;
