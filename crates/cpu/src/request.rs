//! Requests a core sends toward the shared L2.

use core::fmt;
use stacksim_types::{CoreId, LineAddr};

/// One line-granularity request leaving a core for the L2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreRequest {
    /// Issuing core.
    pub core: CoreId,
    /// Requested line.
    pub line: LineAddr,
    /// Instruction pointer of the triggering µop (trains the L2 stride
    /// prefetcher); zero for prefetches and writebacks.
    pub pc: u64,
    /// Whether the line will be written (write-allocate intent).
    pub is_write: bool,
    /// Whether this is a hardware prefetch (no µop waits on it).
    pub is_prefetch: bool,
    /// Whether this is a dirty-line writeback from the DL1 (no fill needed;
    /// the line is written into the L2).
    pub is_writeback: bool,
}

impl CoreRequest {
    /// A demand fetch.
    pub const fn demand(core: CoreId, line: LineAddr, pc: u64, is_write: bool) -> Self {
        CoreRequest {
            core,
            line,
            pc,
            is_write,
            is_prefetch: false,
            is_writeback: false,
        }
    }

    /// A hardware prefetch.
    pub const fn prefetch(core: CoreId, line: LineAddr) -> Self {
        CoreRequest {
            core,
            line,
            pc: 0,
            is_write: false,
            is_prefetch: true,
            is_writeback: false,
        }
    }

    /// A dirty writeback.
    pub const fn writeback(core: CoreId, line: LineAddr) -> Self {
        CoreRequest {
            core,
            line,
            pc: 0,
            is_write: true,
            is_prefetch: false,
            is_writeback: true,
        }
    }
}

impl fmt::Display for CoreRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_writeback {
            "wb"
        } else if self.is_prefetch {
            "pf"
        } else if self.is_write {
            "st"
        } else {
            "ld"
        };
        write!(f, "{} {} {}", self.core, kind, self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        let c = CoreId::new(1);
        let l = LineAddr::new(9);
        let d = CoreRequest::demand(c, l, 0x40, true);
        assert!(d.is_write && !d.is_prefetch && !d.is_writeback);
        let p = CoreRequest::prefetch(c, l);
        assert!(p.is_prefetch && !p.is_write);
        let w = CoreRequest::writeback(c, l);
        assert!(w.is_writeback && w.is_write);
    }

    #[test]
    fn display_kinds() {
        let c = CoreId::new(0);
        let l = LineAddr::new(1);
        assert!(CoreRequest::demand(c, l, 0, false)
            .to_string()
            .contains("ld"));
        assert!(CoreRequest::demand(c, l, 0, true)
            .to_string()
            .contains("st"));
        assert!(CoreRequest::prefetch(c, l).to_string().contains("pf"));
        assert!(CoreRequest::writeback(c, l).to_string().contains("wb"));
    }
}
