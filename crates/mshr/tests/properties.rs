//! Property-based tests: every MSHR organization must agree with a simple
//! reference model (a map from line to target count) on *semantics*, while
//! differing only in probe counts.

use proptest::prelude::*;
use std::collections::HashMap;

use stacksim_mshr::{
    CamMshr, DirectMappedMshr, HierarchicalMshr, MissHandler, MissKind, MissTarget, ProbeScheme,
    VbfMshr,
};
use stacksim_types::{CoreId, Cycle, LineAddr};

/// Operations applied to both the model and the implementation.
#[derive(Clone, Debug)]
enum Op {
    Allocate(u64),
    Deallocate(u64),
    Lookup(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small line-address universe forces collisions and full structures.
    let line = 0u64..48;
    prop_oneof![
        line.clone().prop_map(Op::Allocate),
        line.clone().prop_map(Op::Deallocate),
        line.prop_map(Op::Lookup),
    ]
}

fn run_against_model<M: MissHandler>(mut mshr: M, ops: &[Op]) {
    let mut model: HashMap<u64, usize> = HashMap::new();
    let capacity = mshr.capacity();
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Allocate(line) => {
                let target = MissTarget::demand(CoreId::new(0), step as u64);
                let existed = model.contains_key(&line);
                let result =
                    mshr.allocate(LineAddr::new(line), target, MissKind::Read, Cycle::ZERO);
                if existed {
                    // Secondary misses always merge, even when full.
                    let out = result.expect("merge must succeed");
                    assert!(!out.is_primary(), "step {step}: expected merge");
                    *model.get_mut(&line).unwrap() += 1;
                } else if model.len() < mshr.capacity_limit() {
                    let out = result.expect("allocation with free space must succeed");
                    assert!(out.is_primary(), "step {step}: expected primary");
                    model.insert(line, 1);
                } else {
                    result.expect_err("allocation without free space must fail");
                }
            }
            Op::Deallocate(line) => {
                let removed = mshr.deallocate(LineAddr::new(line));
                match model.remove(&line) {
                    Some(targets) => {
                        let (entry, _) = removed.expect("model says entry exists");
                        assert_eq!(entry.line(), LineAddr::new(line));
                        assert_eq!(entry.target_count(), targets, "step {step}: target count");
                    }
                    None => assert!(removed.is_none(), "step {step}: spurious entry"),
                }
            }
            Op::Lookup(line) => {
                let r = mshr.lookup(LineAddr::new(line));
                assert_eq!(
                    r.found,
                    model.contains_key(&line),
                    "step {step}: lookup {line}"
                );
                assert!(r.probes >= 1, "first probe is mandatory");
                assert!(
                    r.probes as usize <= capacity.max(2),
                    "probes bounded by capacity"
                );
            }
        }
        assert_eq!(mshr.occupancy(), model.len(), "step {step}: occupancy");
        assert!(mshr.occupancy() <= mshr.capacity());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cam_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        run_against_model(CamMshr::new(16), &ops);
    }

    #[test]
    fn direct_linear_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        run_against_model(DirectMappedMshr::new(16, ProbeScheme::Linear), &ops);
    }

    #[test]
    fn direct_quadratic_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        run_against_model(DirectMappedMshr::new(16, ProbeScheme::Quadratic), &ops);
    }

    #[test]
    fn vbf_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        run_against_model(VbfMshr::new(16), &ops);
    }

    #[test]
    fn vbf_probes_never_exceed_linear(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        // Run identical op streams through both organizations; the VBF's
        // entire point is that it only removes probes, never adds them.
        let mut vbf = VbfMshr::new(16);
        let mut lin = DirectMappedMshr::new(16, ProbeScheme::Linear);
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Allocate(line) => {
                    let t = MissTarget::demand(CoreId::new(0), step as u64);
                    let a = vbf.allocate(LineAddr::new(line), t, MissKind::Read, Cycle::ZERO);
                    let b = lin.allocate(LineAddr::new(line), t, MissKind::Read, Cycle::ZERO);
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                }
                Op::Deallocate(line) => {
                    let a = vbf.deallocate(LineAddr::new(line));
                    let b = lin.deallocate(LineAddr::new(line));
                    prop_assert_eq!(a.is_some(), b.is_some());
                    if let (Some((_, pa)), Some((_, pb))) = (a, b) {
                        prop_assert!(pa <= pb, "dealloc probes {} > {}", pa, pb);
                    }
                }
                Op::Lookup(line) => {
                    let a = vbf.lookup(LineAddr::new(line));
                    let b = lin.lookup(LineAddr::new(line));
                    prop_assert_eq!(a.found, b.found);
                    prop_assert!(a.probes <= b.probes, "lookup probes {} > {}", a.probes, b.probes);
                }
            }
        }
    }

    #[test]
    fn hierarchical_never_loses_entries(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        // The hierarchical MSHR can reject a new line while space remains in
        // other banks, so it does not match the flat model exactly; instead
        // check it never loses or duplicates entries.
        let mut mshr = HierarchicalMshr::new(4, 2, 4);
        let mut present: HashMap<u64, usize> = HashMap::new();
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Allocate(line) => {
                    let t = MissTarget::demand(CoreId::new(0), step as u64);
                    match mshr.allocate(LineAddr::new(line), t, MissKind::Read, Cycle::ZERO) {
                        Ok(out) if out.is_primary() => {
                            prop_assert!(!present.contains_key(&line));
                            present.insert(line, 1);
                        }
                        Ok(_) => {
                            *present.get_mut(&line).expect("merge implies present") += 1;
                        }
                        Err(_) => prop_assert!(!present.contains_key(&line)),
                    }
                }
                Op::Deallocate(line) => {
                    let removed = mshr.deallocate(LineAddr::new(line));
                    match present.remove(&line) {
                        Some(n) => {
                            let (e, _) = removed.expect("present entry must deallocate");
                            prop_assert_eq!(e.target_count(), n);
                        }
                        None => prop_assert!(removed.is_none()),
                    }
                }
                Op::Lookup(line) => {
                    prop_assert_eq!(
                        mshr.lookup(LineAddr::new(line)).found,
                        present.contains_key(&line)
                    );
                }
            }
            prop_assert_eq!(mshr.occupancy(), present.len());
        }
    }
}
