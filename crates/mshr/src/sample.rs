//! MSHR occupancy trace samples.

use core::fmt;

use stacksim_types::Cycle;

use crate::MissHandler;

/// A point-in-time snapshot of one MSHR bank's occupancy, recorded by the
/// system's tracing hooks at a fixed sampling interval.
///
/// # Examples
///
/// ```
/// use stacksim_mshr::{MissHandler, OccupancySample, VbfMshr};
/// use stacksim_types::Cycle;
///
/// let mshr = VbfMshr::new(8);
/// let s = OccupancySample::of(Cycle::new(100), 0, &mshr);
/// assert_eq!(s.occupancy, 0);
/// assert_eq!(s.limit, 8);
/// assert_eq!(s.to_string(), "100 mshr0 0/8");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OccupancySample {
    /// Core-clock cycle of the sample.
    pub at: Cycle,
    /// Which MSHR bank was sampled.
    pub bank: usize,
    /// Entries allocated at the sample point.
    pub occupancy: usize,
    /// Capacity limit in force at the sample point (tracks the dynamic
    /// tuner, so a time series shows limit changes).
    pub limit: usize,
}

impl OccupancySample {
    /// Snapshots a handler's current occupancy.
    pub fn of(at: Cycle, bank: usize, handler: &dyn MissHandler) -> Self {
        OccupancySample {
            at,
            bank,
            occupancy: handler.occupancy(),
            limit: handler.capacity_limit(),
        }
    }

    /// Occupancy as a fraction of the in-force limit (0 when the limit is 0).
    pub fn utilization(&self) -> f64 {
        if self.limit == 0 {
            0.0
        } else {
            self.occupancy as f64 / self.limit as f64
        }
    }
}

impl fmt::Display for OccupancySample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} mshr{} {}/{}",
            self.at.raw(),
            self.bank,
            self.occupancy,
            self.limit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CamMshr;
    use crate::{MissKind, MissTarget};
    use stacksim_types::{CoreId, LineAddr};

    #[test]
    fn snapshots_live_handler() {
        let mut m = CamMshr::new(4);
        m.allocate(
            LineAddr::new(1),
            MissTarget::demand(CoreId::new(0), 0),
            MissKind::Read,
            Cycle::ZERO,
        )
        .unwrap();
        let s = OccupancySample::of(Cycle::new(5), 2, &m);
        assert_eq!(s.occupancy, 1);
        assert_eq!(s.limit, 4);
        assert_eq!(s.bank, 2);
        assert!((s.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_limit_utilization() {
        let s = OccupancySample {
            at: Cycle::ZERO,
            bank: 0,
            occupancy: 0,
            limit: 0,
        };
        assert_eq!(s.utilization(), 0.0);
    }
}
