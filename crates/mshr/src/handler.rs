//! The common miss-handler interface.

use core::fmt;
use stacksim_types::{Cycle, LineAddr};

use crate::entry::{MissKind, MissTarget, MshrEntry};

/// Which MSHR organization a handler implements (for reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MshrKind {
    /// Ideal fully-associative CAM.
    Cam,
    /// Direct-mapped with linear probing.
    DirectLinear,
    /// Direct-mapped with quadratic probing.
    DirectQuadratic,
    /// Direct-mapped with linear probing plus the Vector Bloom Filter.
    Vbf,
    /// Banked first level with a shared second level (Tuck et al.).
    Hierarchical,
}

impl MshrKind {
    /// Parses the [`Display`](fmt::Display) name back into a kind (the
    /// scenario-file spelling). `None` for an unknown name.
    ///
    /// # Examples
    ///
    /// ```
    /// use stacksim_mshr::MshrKind;
    ///
    /// assert_eq!(MshrKind::from_name("vbf"), Some(MshrKind::Vbf));
    /// assert_eq!(MshrKind::from_name("fully-assoc"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<MshrKind> {
        match name {
            "cam" => Some(MshrKind::Cam),
            "direct-linear" => Some(MshrKind::DirectLinear),
            "direct-quadratic" => Some(MshrKind::DirectQuadratic),
            "vbf" => Some(MshrKind::Vbf),
            "hierarchical" => Some(MshrKind::Hierarchical),
            _ => None,
        }
    }
}

impl fmt::Display for MshrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MshrKind::Cam => "cam",
            MshrKind::DirectLinear => "direct-linear",
            MshrKind::DirectQuadratic => "direct-quadratic",
            MshrKind::Vbf => "vbf",
            MshrKind::Hierarchical => "hierarchical",
        };
        f.write_str(s)
    }
}

/// Result of a lookup: whether the line has an outstanding miss, and how
/// many sequential structure probes answering the question required.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LookupResult {
    /// Whether an entry for the line exists.
    pub found: bool,
    /// Sequential probes performed (≥ 1; the first probe is mandatory).
    pub probes: u32,
}

/// Result of a successful allocate call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocOutcome {
    /// A new entry was allocated for a primary miss.
    Primary {
        /// Probes spent finding the slot.
        probes: u32,
    },
    /// The miss merged into an existing entry (secondary miss).
    Merged {
        /// Probes spent finding the existing entry.
        probes: u32,
        /// Targets now merged on the entry, including this one.
        targets: usize,
    },
}

impl AllocOutcome {
    /// Whether the call allocated a fresh entry.
    pub const fn is_primary(&self) -> bool {
        matches!(self, AllocOutcome::Primary { .. })
    }

    /// Probes the call performed.
    pub const fn probes(&self) -> u32 {
        match self {
            AllocOutcome::Primary { probes } | AllocOutcome::Merged { probes, .. } => *probes,
        }
    }
}

/// Why an allocation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// No free entry is available (structure full, or dynamic limit
    /// reached); the requester must stall and retry.
    Full {
        /// Probes spent discovering fullness.
        probes: u32,
    },
}

impl AllocError {
    /// Probes the failed call performed.
    pub const fn probes(&self) -> u32 {
        match self {
            AllocError::Full { probes } => *probes,
        }
    }
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Full { .. } => write!(f, "mshr full"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A miss-status handling register file.
///
/// Implementations differ in *how* entries are located (and therefore in
/// probe counts and scalability), not in *what* they store: every handler
/// tracks at most one entry per outstanding line, merges secondary misses,
/// and frees the entry when the fill completes.
pub trait MissHandler {
    /// The organization implemented.
    fn kind(&self) -> MshrKind;

    /// Checks whether `line` has an outstanding miss.
    fn lookup(&mut self, line: LineAddr) -> LookupResult;

    /// Records a miss: merges into an existing entry for `line` or
    /// allocates a new one.
    ///
    /// # Errors
    ///
    /// [`AllocError::Full`] if a new entry is needed but none is free
    /// (including when the dynamic capacity limit is reached).
    fn allocate(
        &mut self,
        line: LineAddr,
        target: MissTarget,
        kind: MissKind,
        now: Cycle,
    ) -> Result<AllocOutcome, AllocError>;

    /// Completes the miss for `line`, removing and returning its entry and
    /// the probes spent locating it. Returns `None` if no entry exists.
    fn deallocate(&mut self, line: LineAddr) -> Option<(MshrEntry, u32)>;

    /// A shared view of the entry for `line`, if outstanding.
    fn entry(&self, line: LineAddr) -> Option<&MshrEntry>;

    /// Currently allocated entries.
    fn occupancy(&self) -> usize;

    /// Physical entry count.
    fn capacity(&self) -> usize;

    /// Upper bound on simultaneously allocated entries currently in force.
    /// Equal to [`capacity`](Self::capacity) unless a dynamic limit was set.
    fn capacity_limit(&self) -> usize;

    /// Restricts the number of simultaneously allocated entries to
    /// `limit.min(capacity)`. Already-allocated entries above the limit are
    /// not evicted; new allocations simply wait for occupancy to drop.
    ///
    /// # Panics
    ///
    /// Implementations panic if `limit` is zero.
    fn set_capacity_limit(&mut self, limit: usize);

    /// Whether an allocation of a *new* entry would currently fail.
    fn is_full(&self) -> bool {
        self.occupancy() >= self.capacity_limit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let p = AllocOutcome::Primary { probes: 2 };
        assert!(p.is_primary());
        assert_eq!(p.probes(), 2);
        let m = AllocOutcome::Merged {
            probes: 3,
            targets: 2,
        };
        assert!(!m.is_primary());
        assert_eq!(m.probes(), 3);
    }

    #[test]
    fn error_display() {
        let e = AllocError::Full { probes: 4 };
        assert_eq!(e.to_string(), "mshr full");
        assert_eq!(e.probes(), 4);
    }

    #[test]
    fn kind_display() {
        assert_eq!(MshrKind::Vbf.to_string(), "vbf");
        assert_eq!(MshrKind::Cam.to_string(), "cam");
        assert_eq!(MshrKind::DirectLinear.to_string(), "direct-linear");
    }
}
