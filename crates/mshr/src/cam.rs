//! The idealized fully-associative CAM MSHR.

use std::collections::HashMap;

use stacksim_types::{Cycle, FastBuildHasher, LineAddr};

use crate::entry::{MissKind, MissTarget, MshrEntry};
use crate::handler::{AllocError, AllocOutcome, LookupResult, MissHandler, MshrKind};

/// A fully-associative, single-cycle content-addressable MSHR.
///
/// This is the traditional organization and the paper's *ideal* reference
/// point: every operation completes in one probe regardless of capacity. It
/// is "ideal (and impractical)" (§5.2) because real CAMs do not scale to the
/// large capacities the 3D memory system wants — which is exactly the gap
/// the [`VbfMshr`](crate::VbfMshr) closes.
///
/// # Examples
///
/// ```
/// use stacksim_mshr::{CamMshr, MissHandler, MissKind, MissTarget};
/// use stacksim_types::{CoreId, Cycle, LineAddr};
///
/// let mut m = CamMshr::new(8);
/// m.allocate(LineAddr::new(7), MissTarget::demand(CoreId::new(0), 0), MissKind::Read, Cycle::ZERO)
///     .unwrap();
/// assert_eq!(m.lookup(LineAddr::new(7)).probes, 1);
/// ```
#[derive(Clone, Debug)]
pub struct CamMshr {
    // Keyed with a deterministic multiplicative hasher: SipHash is the
    // dominant cost of single-u64-key operations, and nothing iterates
    // this map, so the hash function is unobservable in results.
    entries: HashMap<LineAddr, MshrEntry, FastBuildHasher>,
    capacity: usize,
    limit: usize,
}

impl CamMshr {
    /// Creates a CAM MSHR with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mshr capacity must be non-zero");
        CamMshr {
            entries: HashMap::with_capacity_and_hasher(capacity, FastBuildHasher),
            capacity,
            limit: capacity,
        }
    }
}

impl MissHandler for CamMshr {
    fn kind(&self) -> MshrKind {
        MshrKind::Cam
    }

    fn lookup(&mut self, line: LineAddr) -> LookupResult {
        LookupResult {
            found: self.entries.contains_key(&line),
            probes: 1,
        }
    }

    fn allocate(
        &mut self,
        line: LineAddr,
        target: MissTarget,
        kind: MissKind,
        now: Cycle,
    ) -> Result<AllocOutcome, AllocError> {
        if let Some(e) = self.entries.get_mut(&line) {
            e.merge(target);
            return Ok(AllocOutcome::Merged {
                probes: 1,
                targets: e.target_count(),
            });
        }
        if self.entries.len() >= self.limit {
            return Err(AllocError::Full { probes: 1 });
        }
        self.entries
            .insert(line, MshrEntry::new(line, target, kind, now));
        Ok(AllocOutcome::Primary { probes: 1 })
    }

    fn deallocate(&mut self, line: LineAddr) -> Option<(MshrEntry, u32)> {
        self.entries.remove(&line).map(|e| (e, 1))
    }

    fn entry(&self, line: LineAddr) -> Option<&MshrEntry> {
        self.entries.get(&line)
    }

    fn occupancy(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn capacity_limit(&self) -> usize {
        self.limit
    }

    fn set_capacity_limit(&mut self, limit: usize) {
        assert!(limit > 0, "capacity limit must be non-zero");
        self.limit = limit.min(self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_types::CoreId;

    fn target(token: u64) -> MissTarget {
        MissTarget::demand(CoreId::new(0), token)
    }

    #[test]
    fn allocate_lookup_deallocate() {
        let mut m = CamMshr::new(2);
        let out = m
            .allocate(LineAddr::new(1), target(0), MissKind::Read, Cycle::ZERO)
            .unwrap();
        assert!(out.is_primary());
        assert!(m.lookup(LineAddr::new(1)).found);
        assert!(!m.lookup(LineAddr::new(2)).found);
        let (e, probes) = m.deallocate(LineAddr::new(1)).unwrap();
        assert_eq!(e.line(), LineAddr::new(1));
        assert_eq!(probes, 1);
        assert_eq!(m.occupancy(), 0);
        assert!(m.deallocate(LineAddr::new(1)).is_none());
    }

    #[test]
    fn secondary_misses_merge() {
        let mut m = CamMshr::new(1);
        m.allocate(LineAddr::new(9), target(0), MissKind::Read, Cycle::ZERO)
            .unwrap();
        // A second miss to the same line merges even though the CAM is full.
        let out = m
            .allocate(LineAddr::new(9), target(1), MissKind::Read, Cycle::new(5))
            .unwrap();
        assert_eq!(
            out,
            AllocOutcome::Merged {
                probes: 1,
                targets: 2
            }
        );
        assert_eq!(m.entry(LineAddr::new(9)).unwrap().target_count(), 2);
    }

    #[test]
    fn full_rejects_new_lines() {
        let mut m = CamMshr::new(1);
        m.allocate(LineAddr::new(1), target(0), MissKind::Read, Cycle::ZERO)
            .unwrap();
        let err = m
            .allocate(LineAddr::new(2), target(1), MissKind::Read, Cycle::ZERO)
            .unwrap_err();
        assert_eq!(err, AllocError::Full { probes: 1 });
        assert!(m.is_full());
    }

    #[test]
    fn dynamic_limit_restricts_allocations() {
        let mut m = CamMshr::new(8);
        m.set_capacity_limit(2);
        assert_eq!(m.capacity_limit(), 2);
        m.allocate(LineAddr::new(1), target(0), MissKind::Read, Cycle::ZERO)
            .unwrap();
        m.allocate(LineAddr::new(2), target(1), MissKind::Read, Cycle::ZERO)
            .unwrap();
        assert!(m
            .allocate(LineAddr::new(3), target(2), MissKind::Read, Cycle::ZERO)
            .is_err());
        // Raising the limit allows the allocation again.
        m.set_capacity_limit(100);
        assert_eq!(m.capacity_limit(), 8); // clamped to capacity
        m.allocate(LineAddr::new(3), target(2), MissKind::Read, Cycle::ZERO)
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = CamMshr::new(0);
    }

    #[test]
    fn every_operation_is_single_probe() {
        let mut m = CamMshr::new(32);
        for i in 0..32 {
            let out = m
                .allocate(LineAddr::new(i), target(i), MissKind::Read, Cycle::ZERO)
                .unwrap();
            assert_eq!(out.probes(), 1);
        }
        for i in 0..32 {
            assert_eq!(m.lookup(LineAddr::new(i)).probes, 1);
        }
    }
}
