//! Hierarchical (banked + shared) MSHRs, after Tuck et al. (MICRO 2006).
//!
//! The paper uses this organization as the high-bandwidth L1 reference
//! design and explains why it is a poor fit for the banked-MC L2 floorplan
//! (§5.2): every bank would have to route to the shared second level and
//! back. It is implemented here both as a comparison point and because a
//! complete MSHR library should have it.

use stacksim_types::{Cycle, LineAddr};

use crate::cam::CamMshr;
use crate::entry::{MissKind, MissTarget, MshrEntry};
use crate::handler::{AllocError, AllocOutcome, LookupResult, MissHandler, MshrKind};

/// A two-level MSHR: several small banked CAMs in front of one shared
/// overflow CAM that supplies "spare" capacity when a bank fills up.
///
/// Bank selection hashes the line address; a lookup probes the home bank
/// and, when unsuccessful, the shared level (one extra probe). Allocations
/// prefer the home bank and spill into the shared level.
///
/// # Examples
///
/// ```
/// use stacksim_mshr::{HierarchicalMshr, MissHandler, MissKind, MissTarget};
/// use stacksim_types::{CoreId, Cycle, LineAddr};
///
/// let mut m = HierarchicalMshr::new(4, 2, 8);
/// let out = m
///     .allocate(LineAddr::new(3), MissTarget::demand(CoreId::new(0), 0), MissKind::Read, Cycle::ZERO)
///     .unwrap();
/// assert!(out.is_primary());
/// assert_eq!(m.capacity(), 4 * 2 + 8);
/// ```
#[derive(Clone, Debug)]
pub struct HierarchicalMshr {
    banks: Vec<CamMshr>,
    shared: CamMshr,
    limit: usize,
}

impl HierarchicalMshr {
    /// Creates a hierarchical MSHR with `banks` first-level banks of
    /// `entries_per_bank` entries each, plus a `shared_entries` second level.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn new(banks: usize, entries_per_bank: usize, shared_entries: usize) -> Self {
        assert!(
            banks > 0 && entries_per_bank > 0 && shared_entries > 0,
            "counts must be non-zero"
        );
        let capacity = banks * entries_per_bank + shared_entries;
        HierarchicalMshr {
            banks: (0..banks).map(|_| CamMshr::new(entries_per_bank)).collect(),
            shared: CamMshr::new(shared_entries),
            limit: capacity,
        }
    }

    /// Number of first-level banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    #[inline]
    fn bank_of(&self, line: LineAddr) -> usize {
        (line.index() % self.banks.len() as u64) as usize
    }
}

impl MissHandler for HierarchicalMshr {
    fn kind(&self) -> MshrKind {
        MshrKind::Hierarchical
    }

    fn lookup(&mut self, line: LineAddr) -> LookupResult {
        let b = self.bank_of(line);
        if self.banks[b].lookup(line).found {
            return LookupResult {
                found: true,
                probes: 1,
            };
        }
        LookupResult {
            found: self.shared.lookup(line).found,
            probes: 2,
        }
    }

    fn allocate(
        &mut self,
        line: LineAddr,
        target: MissTarget,
        kind: MissKind,
        now: Cycle,
    ) -> Result<AllocOutcome, AllocError> {
        if self.occupancy() >= self.limit {
            // Probe cost of discovering fullness: bank plus shared check.
            if self.entry(line).is_none() {
                return Err(AllocError::Full { probes: 2 });
            }
        }
        let b = self.bank_of(line);
        // Merge into whichever level already tracks the line.
        if self.banks[b].entry(line).is_some() {
            return self.banks[b].allocate(line, target, kind, now);
        }
        if self.shared.entry(line).is_some() {
            return match self.shared.allocate(line, target, kind, now) {
                Ok(AllocOutcome::Merged { targets, .. }) => {
                    Ok(AllocOutcome::Merged { probes: 2, targets })
                }
                other => other,
            };
        }
        // Fresh entry: home bank first, then spill to the shared level.
        match self.banks[b].allocate(line, target, kind, now) {
            Ok(out) => Ok(out),
            Err(_) => match self.shared.allocate(line, target, kind, now) {
                Ok(AllocOutcome::Primary { .. }) => Ok(AllocOutcome::Primary { probes: 2 }),
                Ok(merged) => Ok(merged),
                Err(_) => Err(AllocError::Full { probes: 2 }),
            },
        }
    }

    fn deallocate(&mut self, line: LineAddr) -> Option<(MshrEntry, u32)> {
        let b = self.bank_of(line);
        if let Some((e, _)) = self.banks[b].deallocate(line) {
            return Some((e, 1));
        }
        self.shared.deallocate(line).map(|(e, _)| (e, 2))
    }

    fn entry(&self, line: LineAddr) -> Option<&MshrEntry> {
        let b = self.bank_of(line);
        self.banks[b]
            .entry(line)
            .or_else(|| self.shared.entry(line))
    }

    fn occupancy(&self) -> usize {
        self.banks.iter().map(CamMshr::occupancy).sum::<usize>() + self.shared.occupancy()
    }

    fn capacity(&self) -> usize {
        self.banks.iter().map(CamMshr::capacity).sum::<usize>() + self.shared.capacity()
    }

    fn capacity_limit(&self) -> usize {
        self.limit
    }

    fn set_capacity_limit(&mut self, limit: usize) {
        assert!(limit > 0, "capacity limit must be non-zero");
        self.limit = limit.min(self.capacity());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_types::CoreId;

    fn target(token: u64) -> MissTarget {
        MissTarget::demand(CoreId::new(0), token)
    }

    #[test]
    fn spills_into_shared_level() {
        let mut m = HierarchicalMshr::new(2, 1, 2);
        // Lines 0 and 2 both hash to bank 0 (even lines).
        m.allocate(LineAddr::new(0), target(0), MissKind::Read, Cycle::ZERO)
            .unwrap();
        let out = m
            .allocate(LineAddr::new(2), target(1), MissKind::Read, Cycle::ZERO)
            .unwrap();
        assert_eq!(out, AllocOutcome::Primary { probes: 2 });
        // Found in the shared level: two probes.
        assert_eq!(
            m.lookup(LineAddr::new(2)),
            LookupResult {
                found: true,
                probes: 2
            }
        );
        // Found in the bank: one probe.
        assert_eq!(
            m.lookup(LineAddr::new(0)),
            LookupResult {
                found: true,
                probes: 1
            }
        );
    }

    #[test]
    fn merges_wherever_the_entry_lives() {
        let mut m = HierarchicalMshr::new(2, 1, 2);
        m.allocate(LineAddr::new(0), target(0), MissKind::Read, Cycle::ZERO)
            .unwrap();
        m.allocate(LineAddr::new(2), target(1), MissKind::Read, Cycle::ZERO)
            .unwrap();
        // Secondary miss on the spilled entry merges in the shared level.
        let out = m
            .allocate(LineAddr::new(2), target(2), MissKind::Read, Cycle::ZERO)
            .unwrap();
        assert_eq!(
            out,
            AllocOutcome::Merged {
                probes: 2,
                targets: 2
            }
        );
    }

    #[test]
    fn full_when_bank_and_shared_full() {
        let mut m = HierarchicalMshr::new(1, 1, 1);
        m.allocate(LineAddr::new(0), target(0), MissKind::Read, Cycle::ZERO)
            .unwrap();
        m.allocate(LineAddr::new(1), target(1), MissKind::Read, Cycle::ZERO)
            .unwrap();
        assert!(m
            .allocate(LineAddr::new(2), target(2), MissKind::Read, Cycle::ZERO)
            .is_err());
        assert_eq!(m.occupancy(), 2);
    }

    #[test]
    fn deallocate_finds_both_levels() {
        let mut m = HierarchicalMshr::new(2, 1, 2);
        m.allocate(LineAddr::new(0), target(0), MissKind::Read, Cycle::ZERO)
            .unwrap();
        m.allocate(LineAddr::new(2), target(1), MissKind::Read, Cycle::ZERO)
            .unwrap();
        let (_, probes_shared) = m.deallocate(LineAddr::new(2)).unwrap();
        assert_eq!(probes_shared, 2);
        let (_, probes_bank) = m.deallocate(LineAddr::new(0)).unwrap();
        assert_eq!(probes_bank, 1);
        assert!(m.deallocate(LineAddr::new(4)).is_none());
    }

    #[test]
    fn capacity_limit_applies_globally() {
        let mut m = HierarchicalMshr::new(2, 2, 4);
        assert_eq!(m.capacity(), 8);
        m.set_capacity_limit(1);
        m.allocate(LineAddr::new(0), target(0), MissKind::Read, Cycle::ZERO)
            .unwrap();
        assert!(m
            .allocate(LineAddr::new(1), target(1), MissKind::Read, Cycle::ZERO)
            .is_err());
    }
}
