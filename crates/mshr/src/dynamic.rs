//! Dynamic MSHR capacity tuning (§5.1).
//!
//! Large MSHRs help memory-hungry mixes but can hurt others by increasing
//! L2 "churn" (useful lines evicted by the flood of in-flight fills). The
//! paper's fix is a sampling controller: briefly run with each candidate
//! capacity limit, record the committed µops under each, then lock in the
//! best-performing limit until the next sampling period.

use stacksim_types::Cycle;

/// Configuration of the [`DynamicTuner`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TunerConfig {
    /// Cycles each candidate limit is sampled for.
    pub sample_cycles: u64,
    /// Cycles the winning limit stays in force before the next training
    /// phase.
    pub apply_cycles: u64,
    /// Candidate limits as fractions of maximum capacity, expressed as
    /// divisors: the paper uses `[1, 2, 4]` for 1×, ½× and ¼×.
    pub divisors: Vec<usize>,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            sample_cycles: 50_000,
            apply_cycles: 2_000_000,
            divisors: vec![1, 2, 4],
        }
    }
}

/// Which phase the tuner is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TunerPhase {
    /// Sampling candidate number `candidate` (an index into the divisor
    /// list).
    Sampling {
        /// Index of the candidate currently being sampled.
        candidate: usize,
    },
    /// The winning limit is locked in until the next training phase.
    Applying,
}

/// The sampling-based dynamic MSHR capacity controller.
///
/// Drive it with [`DynamicTuner::tick`] once per cycle (or any coarser,
/// regular interval), passing the machine's cumulative committed-µop count;
/// apply the returned limit to the MSHR via
/// [`MissHandler::set_capacity_limit`](crate::MissHandler::set_capacity_limit).
///
/// # Examples
///
/// ```
/// use stacksim_mshr::{DynamicTuner, TunerConfig};
/// use stacksim_types::Cycle;
///
/// let cfg = TunerConfig { sample_cycles: 10, apply_cycles: 100, divisors: vec![1, 2, 4] };
/// let mut tuner = DynamicTuner::new(64, cfg);
/// assert_eq!(tuner.current_limit(), 64); // starts sampling full capacity
/// ```
#[derive(Clone, Debug)]
pub struct DynamicTuner {
    max_capacity: usize,
    config: TunerConfig,
    phase: TunerPhase,
    phase_start: Cycle,
    committed_at_phase_start: u64,
    scores: Vec<u64>,
    chosen: usize,
}

impl DynamicTuner {
    /// Creates a tuner over an MSHR of `max_capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `max_capacity` is zero, the divisor list is empty, any
    /// divisor is zero, or any divisor exceeds `max_capacity` (which would
    /// produce a zero-entry limit).
    pub fn new(max_capacity: usize, config: TunerConfig) -> Self {
        assert!(max_capacity > 0, "mshr capacity must be non-zero");
        assert!(
            !config.divisors.is_empty(),
            "tuner needs at least one candidate"
        );
        assert!(
            config.divisors.iter().all(|&d| d > 0 && d <= max_capacity),
            "divisors must be in 1..=capacity"
        );
        let scores = vec![0; config.divisors.len()];
        DynamicTuner {
            max_capacity,
            config,
            phase: TunerPhase::Sampling { candidate: 0 },
            phase_start: Cycle::ZERO,
            committed_at_phase_start: 0,
            scores,
            chosen: 0,
        }
    }

    /// The limit (in entries) a candidate index corresponds to.
    fn limit_of(&self, candidate: usize) -> usize {
        (self.max_capacity / self.config.divisors[candidate]).max(1)
    }

    /// The capacity limit currently in force.
    pub fn current_limit(&self) -> usize {
        match self.phase {
            TunerPhase::Sampling { candidate } => self.limit_of(candidate),
            TunerPhase::Applying => self.limit_of(self.chosen),
        }
    }

    /// The current phase.
    pub const fn phase(&self) -> TunerPhase {
        self.phase
    }

    /// Scores recorded for each candidate in the latest completed training
    /// phase (committed µops during that candidate's sample window).
    pub fn scores(&self) -> &[u64] {
        &self.scores
    }

    /// The next cycle at which [`tick`](Self::tick) can act: the end of the
    /// current sampling or application window. Ticks strictly before this
    /// cycle are no-ops, so a fast-forwarding owner may skip up to (but not
    /// past) it without changing behaviour.
    pub fn next_boundary(&self) -> Cycle {
        let window = match self.phase {
            TunerPhase::Sampling { .. } => self.config.sample_cycles,
            TunerPhase::Applying => self.config.apply_cycles,
        };
        self.phase_start + stacksim_types::Cycles::new(window)
    }

    /// Advances the controller. `committed_uops` is the machine's cumulative
    /// committed-µop counter. Returns `Some(limit)` whenever the limit
    /// changes (the caller should then reconfigure the MSHR), `None`
    /// otherwise.
    pub fn tick(&mut self, now: Cycle, committed_uops: u64) -> Option<usize> {
        let elapsed = now.saturating_since(self.phase_start).raw();
        match self.phase {
            TunerPhase::Sampling { candidate } => {
                if elapsed < self.config.sample_cycles {
                    return None;
                }
                self.scores[candidate] =
                    committed_uops.saturating_sub(self.committed_at_phase_start);
                self.phase_start = now;
                self.committed_at_phase_start = committed_uops;
                if candidate + 1 < self.config.divisors.len() {
                    self.phase = TunerPhase::Sampling {
                        candidate: candidate + 1,
                    };
                } else {
                    // Training complete: lock in the best-scoring candidate.
                    self.chosen = self
                        .scores
                        .iter()
                        .enumerate()
                        .max_by_key(|&(i, &s)| (s, core::cmp::Reverse(i)))
                        .map(|(i, _)| i)
                        .expect("scores are non-empty"); // simlint::allow(P002, reason = "scores has one entry per candidate capacity and is never empty")
                    self.phase = TunerPhase::Applying;
                }
                Some(self.current_limit())
            }
            TunerPhase::Applying => {
                if elapsed < self.config.apply_cycles {
                    return None;
                }
                self.phase_start = now;
                self.committed_at_phase_start = committed_uops;
                self.phase = TunerPhase::Sampling { candidate: 0 };
                Some(self.current_limit())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TunerConfig {
        TunerConfig {
            sample_cycles: 10,
            apply_cycles: 50,
            divisors: vec![1, 2, 4],
        }
    }

    #[test]
    fn cycles_through_candidates_then_applies_best() {
        let mut t = DynamicTuner::new(32, cfg());
        assert_eq!(t.current_limit(), 32);

        // Candidate 0 (full, 32 entries) commits 100 uops.
        assert_eq!(t.tick(Cycle::new(10), 100), Some(16));
        assert_eq!(t.phase(), TunerPhase::Sampling { candidate: 1 });

        // Candidate 1 (half) commits 300 uops — the best.
        assert_eq!(t.tick(Cycle::new(20), 400), Some(8));

        // Candidate 2 (quarter) commits 50 uops.
        let limit = t.tick(Cycle::new(30), 450).unwrap();
        assert_eq!(limit, 16, "half capacity scored best");
        assert_eq!(t.phase(), TunerPhase::Applying);
        assert_eq!(t.scores(), &[100, 300, 50]);

        // Stays applied until the window elapses...
        assert_eq!(t.tick(Cycle::new(40), 500), None);
        // ...then retrains from candidate 0.
        assert_eq!(t.tick(Cycle::new(80), 900), Some(32));
        assert_eq!(t.phase(), TunerPhase::Sampling { candidate: 0 });
    }

    #[test]
    fn ties_prefer_larger_capacity() {
        let mut t = DynamicTuner::new(32, cfg());
        t.tick(Cycle::new(10), 100).unwrap();
        t.tick(Cycle::new(20), 200).unwrap();
        t.tick(Cycle::new(30), 300).unwrap();
        // All candidates scored 100: the earliest (largest limit) wins.
        assert_eq!(t.current_limit(), 32);
    }

    #[test]
    fn next_boundary_tracks_phase_windows() {
        let mut t = DynamicTuner::new(32, cfg());
        // Sampling phase: boundary at phase_start + sample_cycles, and
        // every tick strictly before it is a no-op.
        assert_eq!(t.next_boundary(), Cycle::new(10));
        for c in 0..10 {
            assert_eq!(t.tick(Cycle::new(c), 0), None);
        }
        assert!(t.tick(Cycle::new(10), 100).is_some());
        assert_eq!(t.next_boundary(), Cycle::new(20));
        t.tick(Cycle::new(20), 200).unwrap();
        t.tick(Cycle::new(30), 300).unwrap();
        // Applying phase: boundary stretches by apply_cycles.
        assert_eq!(t.phase(), TunerPhase::Applying);
        assert_eq!(t.next_boundary(), Cycle::new(80));
    }

    #[test]
    fn no_change_mid_sample() {
        let mut t = DynamicTuner::new(32, cfg());
        assert_eq!(t.tick(Cycle::new(5), 50), None);
        assert_eq!(t.current_limit(), 32);
    }

    #[test]
    fn limit_never_zero() {
        let t = DynamicTuner::new(
            3,
            TunerConfig {
                divisors: vec![3],
                ..cfg()
            },
        );
        assert_eq!(t.current_limit(), 1);
    }

    #[test]
    #[should_panic(expected = "divisors")]
    fn oversized_divisor_panics() {
        let _ = DynamicTuner::new(
            2,
            TunerConfig {
                divisors: vec![4],
                ..cfg()
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_divisors_panic() {
        let _ = DynamicTuner::new(
            8,
            TunerConfig {
                divisors: vec![],
                ..cfg()
            },
        );
    }
}
