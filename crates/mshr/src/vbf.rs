//! The Vector Bloom Filter MSHR — the paper's novel scalable L2 MHA (§5.2).

use stacksim_types::{Cycle, LineAddr};

use crate::entry::{MissKind, MissTarget, MshrEntry};
use crate::handler::{AllocError, AllocOutcome, LookupResult, MissHandler, MshrKind};

/// The Vector Bloom Filter: one bit-vector row per MSHR entry, one column
/// per possible displacement.
///
/// Bit `(h, d)` is set when the slot `(h + d) mod n` holds an entry whose
/// *home* index is `h`. A set bit does not guarantee the searched address
/// lives there (several addresses share a home — the Bloom-filter "false
/// hit"), but a clear bit guarantees it does not, so a search only probes
/// slots whose displacement bit is set. An all-zero row proves a definite
/// miss after the single mandatory probe.
///
/// The storage cost is `n²` bits — for the largest per-bank MSHR the paper
/// considers (32 entries) just 128 bytes (§5.2).
///
/// # Examples
///
/// ```
/// use stacksim_mshr::VectorBloomFilter;
///
/// let mut vbf = VectorBloomFilter::new(8);
/// vbf.set(5, 2); // an entry with home 5 lives at slot 7
/// assert_eq!(vbf.displacements(5).collect::<Vec<_>>(), vec![2]);
/// assert!(!vbf.is_row_zero(5));
/// vbf.clear(5, 2);
/// assert!(vbf.is_row_zero(5));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VectorBloomFilter {
    rows: Vec<Vec<u64>>,
    n: usize,
    words_per_row: usize,
}

impl VectorBloomFilter {
    /// Creates an `n × n` filter, all bits clear.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "vbf dimension must be non-zero");
        let words_per_row = n.div_ceil(64);
        VectorBloomFilter {
            rows: vec![vec![0u64; words_per_row]; n],
            n,
            words_per_row,
        }
    }

    /// Filter dimension (rows == columns == MSHR entries).
    pub const fn dimension(&self) -> usize {
        self.n
    }

    /// Total filter state in bits (`n²`).
    pub const fn state_bits(&self) -> usize {
        self.n * self.n
    }

    /// Sets bit `(row, displacement)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, row: usize, displacement: usize) {
        assert!(
            row < self.n && displacement < self.n,
            "vbf index out of range"
        );
        self.rows[row][displacement / 64] |= 1u64 << (displacement % 64);
    }

    /// Clears bit `(row, displacement)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn clear(&mut self, row: usize, displacement: usize) {
        assert!(
            row < self.n && displacement < self.n,
            "vbf index out of range"
        );
        self.rows[row][displacement / 64] &= !(1u64 << (displacement % 64));
    }

    /// Tests bit `(row, displacement)`.
    pub fn bit(&self, row: usize, displacement: usize) -> bool {
        assert!(
            row < self.n && displacement < self.n,
            "vbf index out of range"
        );
        self.rows[row][displacement / 64] & (1u64 << (displacement % 64)) != 0
    }

    /// Whether a row has no bits set (definite miss after the mandatory
    /// probe).
    pub fn is_row_zero(&self, row: usize) -> bool {
        self.rows[row].iter().all(|&w| w == 0)
    }

    /// Iterates the set displacements of a row in ascending order.
    pub fn displacements(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let words = &self.rows[row];
        (0..self.n).filter(move |&d| words[d / 64] & (1u64 << (d % 64)) != 0)
    }

    /// Number of set bits in a row.
    pub fn row_popcount(&self, row: usize) -> u32 {
        self.rows[row].iter().map(|w| w.count_ones()).sum()
    }
}

/// The direct-mapped MSHR accelerated by a [`VectorBloomFilter`].
///
/// Functionally identical to a [`DirectMappedMshr`](crate::DirectMappedMshr)
/// with linear probing — same slots, same allocation policy — but every
/// search consults the filter in parallel with the mandatory home-slot probe
/// and then visits only slots whose displacement bit is set. The paper
/// measures 2.21–2.31 probes per access on its workloads, versus whole-table
/// scans for unfiltered linear probing.
///
/// # Examples
///
/// The six-step walk-through of the paper's Figure 8:
///
/// ```
/// use stacksim_mshr::{MissHandler, MissKind, MissTarget, VbfMshr};
/// use stacksim_types::{CoreId, Cycle, LineAddr};
///
/// let t = |n| MissTarget::demand(CoreId::new(0), n);
/// let mut m = VbfMshr::new(8);
/// // (a)-(c): misses on 13, 22, 29 and 45 (homes 5, 6, 5, 5).
/// for line in [13u64, 22, 29, 45] {
///     m.allocate(LineAddr::new(line), t(line), MissKind::Read, Cycle::ZERO).unwrap();
/// }
/// // (d): searching 29 probes slot 5, then — guided by the filter — slot 7.
/// assert_eq!(m.lookup(LineAddr::new(29)).probes, 2);
/// // (e): the miss for 29 is serviced.
/// m.deallocate(LineAddr::new(29)).unwrap();
/// // (f): searching 45 needs 2 probes (5, then 0); plain linear probing
/// // would have needed 4 (5, 6, 7, 0).
/// assert_eq!(m.lookup(LineAddr::new(45)).probes, 2);
/// ```
#[derive(Clone, Debug)]
pub struct VbfMshr {
    slots: Vec<Option<MshrEntry>>,
    vbf: VectorBloomFilter,
    occupancy: usize,
    limit: usize,
}

impl VbfMshr {
    /// Creates a VBF MSHR with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mshr capacity must be non-zero");
        VbfMshr {
            slots: vec![None; capacity],
            vbf: VectorBloomFilter::new(capacity),
            occupancy: 0,
            limit: capacity,
        }
    }

    /// Read-only view of the filter (for tests and reporting).
    pub const fn filter(&self) -> &VectorBloomFilter {
        &self.vbf
    }

    #[inline]
    fn home(&self, line: LineAddr) -> usize {
        (line.index() % self.slots.len() as u64) as usize
    }

    /// VBF-guided search. Returns `(slot, probes)`; `probes` includes the
    /// mandatory first access to the home slot.
    fn find(&self, line: LineAddr) -> (Option<usize>, u32) {
        let n = self.slots.len();
        let home = self.home(line);
        // Mandatory probe of the home slot, with the VBF row read in
        // parallel (costs no extra probe).
        let mut probes = 1u32;
        if let Some(e) = &self.slots[home] {
            if e.line() == line {
                return (Some(home), probes);
            }
        }
        // Follow only the set displacement bits, ascending; skip d == 0
        // since the mandatory probe already covered the home slot.
        for d in self.vbf.displacements(home) {
            if d == 0 {
                continue;
            }
            let s = (home + d) % n;
            probes += 1;
            if let Some(e) = &self.slots[s] {
                if e.line() == line {
                    return (Some(s), probes);
                }
            }
        }
        (None, probes)
    }

    /// First free slot scanning linearly from the home (the "next
    /// sequentially available entry" rule of Figure 8(c)).
    fn free_slot(&self, home: usize) -> Option<usize> {
        let n = self.slots.len();
        (0..n)
            .map(|i| (home + i) % n)
            .find(|&s| self.slots[s].is_none())
    }
}

impl MissHandler for VbfMshr {
    fn kind(&self) -> MshrKind {
        MshrKind::Vbf
    }

    fn lookup(&mut self, line: LineAddr) -> LookupResult {
        let (slot, probes) = self.find(line);
        LookupResult {
            found: slot.is_some(),
            probes,
        }
    }

    fn allocate(
        &mut self,
        line: LineAddr,
        target: MissTarget,
        kind: MissKind,
        now: Cycle,
    ) -> Result<AllocOutcome, AllocError> {
        let (slot, probes) = self.find(line);
        if let Some(s) = slot {
            let e = self.slots[s].as_mut().expect("found slot is occupied"); // simlint::allow(P002, reason = "find only returns occupied slots for this line")
            e.merge(target);
            return Ok(AllocOutcome::Merged {
                probes,
                targets: e.target_count(),
            });
        }
        if self.occupancy >= self.limit {
            return Err(AllocError::Full { probes });
        }
        let home = self.home(line);
        let s = self
            .free_slot(home)
            .expect("occupancy below capacity implies a free slot"); // simlint::allow(P002, reason = "occupancy below the limit was just checked, so a free slot exists")
        let displacement = (s + self.slots.len() - home) % self.slots.len();
        self.slots[s] = Some(MshrEntry::new(line, target, kind, now));
        self.vbf.set(home, displacement);
        self.occupancy += 1;
        Ok(AllocOutcome::Primary { probes })
    }

    fn deallocate(&mut self, line: LineAddr) -> Option<(MshrEntry, u32)> {
        let (slot, probes) = self.find(line);
        let s = slot?;
        let e = self.slots[s].take().expect("found slot is occupied"); // simlint::allow(P002, reason = "find only returns occupied slots for this line")
        let home = self.home(line);
        let displacement = (s + self.slots.len() - home) % self.slots.len();
        self.vbf.clear(home, displacement);
        self.occupancy -= 1;
        Some((e, probes))
    }

    fn entry(&self, line: LineAddr) -> Option<&MshrEntry> {
        let (slot, _) = self.find(line);
        slot.and_then(|s| self.slots[s].as_ref())
    }

    fn occupancy(&self) -> usize {
        self.occupancy
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn capacity_limit(&self) -> usize {
        self.limit
    }

    fn set_capacity_limit(&mut self, limit: usize) {
        assert!(limit > 0, "capacity limit must be non-zero");
        self.limit = limit.min(self.slots.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_types::CoreId;

    fn target(token: u64) -> MissTarget {
        MissTarget::demand(CoreId::new(0), token)
    }

    fn alloc(m: &mut VbfMshr, line: u64) {
        m.allocate(
            LineAddr::new(line),
            target(line),
            MissKind::Read,
            Cycle::ZERO,
        )
        .unwrap();
    }

    /// Step-by-step reproduction of the paper's Figure 8.
    #[test]
    fn figure8_walkthrough() {
        let mut m = VbfMshr::new(8);

        // (a) miss on 13 -> home 5, allocated at slot 5, VBF[5][0] set.
        alloc(&mut m, 13);
        assert!(m.filter().bit(5, 0));

        // (b) miss on 22 -> home 6, slot 6, VBF[6][0] set.
        alloc(&mut m, 22);
        assert!(m.filter().bit(6, 0));

        // (c) miss on 29 -> home 5 taken; next free is 7; VBF[5][2] set.
        alloc(&mut m, 29);
        assert!(m.filter().bit(5, 2));
        // ... and a miss on 45 -> home 5; next free wraps to 0; VBF[5][3] set.
        alloc(&mut m, 45);
        assert!(m.filter().bit(5, 3));

        // (d) search 29: probe 5 (miss), filter says +2 -> probe 7 (hit).
        assert_eq!(
            m.lookup(LineAddr::new(29)),
            LookupResult {
                found: true,
                probes: 2
            }
        );

        // (e) deallocate 29: slot invalidated, VBF[5][2] cleared.
        m.deallocate(LineAddr::new(29)).unwrap();
        assert!(!m.filter().bit(5, 2));

        // (f) search 45: probe 5, next set bit is column 3 -> slot (5+3)%8=0,
        // hit in 2 probes where plain linear probing would need 4.
        assert_eq!(
            m.lookup(LineAddr::new(45)),
            LookupResult {
                found: true,
                probes: 2
            }
        );
    }

    #[test]
    fn all_zero_row_is_definite_miss_in_one_probe() {
        let mut m = VbfMshr::new(8);
        alloc(&mut m, 13); // home 5
                           // Line 2 -> home 2; row 2 is all zero -> 1 mandatory probe only.
        assert_eq!(
            m.lookup(LineAddr::new(2)),
            LookupResult {
                found: false,
                probes: 1
            }
        );
    }

    #[test]
    fn false_hit_costs_extra_probe_but_resolves() {
        let mut m = VbfMshr::new(8);
        alloc(&mut m, 13); // home 5, slot 5
        alloc(&mut m, 29); // home 5, slot 6
                           // Search for 21 (home 5, not present): must probe home (5) and the
                           // set displacement 1 (slot 6) before declaring a miss.
        let r = m.lookup(LineAddr::new(21));
        assert!(!r.found);
        assert_eq!(r.probes, 2);
    }

    #[test]
    fn vbf_never_exceeds_linear_probes() {
        use crate::direct::{DirectMappedMshr, ProbeScheme};
        let mut vbf = VbfMshr::new(16);
        let mut lin = DirectMappedMshr::new(16, ProbeScheme::Linear);
        let lines: Vec<u64> = vec![3, 19, 35, 51, 4, 20, 7, 100, 116, 2];
        for &l in &lines {
            vbf.allocate(LineAddr::new(l), target(l), MissKind::Read, Cycle::ZERO)
                .unwrap();
            lin.allocate(LineAddr::new(l), target(l), MissKind::Read, Cycle::ZERO)
                .unwrap();
        }
        for probe in 0..200u64 {
            let rv = vbf.lookup(LineAddr::new(probe));
            let rl = lin.lookup(LineAddr::new(probe));
            assert_eq!(rv.found, rl.found, "semantic divergence at line {probe}");
            assert!(
                rv.probes <= rl.probes,
                "vbf used more probes than linear at line {probe}: {} > {}",
                rv.probes,
                rl.probes
            );
        }
    }

    #[test]
    fn merge_and_capacity_limits() {
        let mut m = VbfMshr::new(4);
        alloc(&mut m, 0);
        let out = m
            .allocate(LineAddr::new(0), target(1), MissKind::Read, Cycle::ZERO)
            .unwrap();
        assert!(matches!(out, AllocOutcome::Merged { targets: 2, .. }));
        m.set_capacity_limit(1);
        assert!(m
            .allocate(LineAddr::new(1), target(2), MissKind::Read, Cycle::ZERO)
            .is_err());
    }

    #[test]
    fn state_bits_match_paper_claim() {
        // 32-entry per-bank MSHR -> 1024 bits = 128 bytes (§5.2).
        let vbf = VectorBloomFilter::new(32);
        assert_eq!(vbf.state_bits(), 1024);
        assert_eq!(vbf.state_bits() / 8, 128);
    }

    #[test]
    fn filter_bookkeeping_is_exact_per_slot() {
        // Fill, empty, and refill; the filter must track slot ownership.
        let mut m = VbfMshr::new(8);
        for l in 0..8u64 {
            alloc(&mut m, l * 8 + 5); // all home 5
        }
        assert_eq!(m.occupancy(), 8);
        assert_eq!(m.filter().row_popcount(5), 8);
        for l in 0..8u64 {
            m.deallocate(LineAddr::new(l * 8 + 5)).unwrap();
        }
        assert_eq!(m.occupancy(), 0);
        assert!(m.filter().is_row_zero(5));
    }

    #[test]
    fn wide_filter_uses_multiple_words() {
        let mut vbf = VectorBloomFilter::new(100);
        vbf.set(99, 99);
        assert!(vbf.bit(99, 99));
        assert_eq!(vbf.displacements(99).collect::<Vec<_>>(), vec![99]);
        vbf.clear(99, 99);
        assert!(vbf.is_row_zero(99));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn filter_bounds_checked() {
        let mut vbf = VectorBloomFilter::new(8);
        vbf.set(8, 0);
    }

    #[test]
    fn wraparound_covers_every_displacement() {
        // Eight lines all homed at slot 7: the first takes its home, the
        // rest wrap through 0, 1, ... 6, so row 7 collects every
        // displacement 0..8 and each line stays reachable via the wrap.
        let mut m = VbfMshr::new(8);
        for l in 0..8u64 {
            alloc(&mut m, l * 8 + 7);
        }
        assert_eq!(
            m.filter().displacements(7).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
        assert_eq!(m.filter().row_popcount(7), 8);
        for l in 0..8u64 {
            let r = m.lookup(LineAddr::new(l * 8 + 7));
            assert!(r.found, "line {} lost across the wrap", l * 8 + 7);
        }
    }

    #[test]
    fn max_displacement_entry_is_evicted_exactly() {
        // Force an entry to the farthest possible displacement (n-1) and
        // release it: exactly that filter bit must clear and the slot must
        // empty, with no residue steering later probes.
        let mut m = VbfMshr::new(8);
        for l in 0..8u64 {
            alloc(&mut m, l * 8); // all home 0; line 8l sits at displacement l
        }
        assert!(m.filter().bit(0, 7));
        let (e, probes) = m.deallocate(LineAddr::new(56)).unwrap();
        assert_eq!(e.line(), LineAddr::new(56));
        assert_eq!(probes, 8, "home probe plus the seven set displacements");
        assert!(!m.filter().bit(0, 7));
        assert_eq!(m.filter().row_popcount(0), 7);
        assert_eq!(m.occupancy(), 7);
        assert!(!m.lookup(LineAddr::new(56)).found);
    }

    #[test]
    fn probes_after_release_see_no_stale_state() {
        let mut m = VbfMshr::new(8);
        alloc(&mut m, 5); // home 5, slot 5, displacement 0
        alloc(&mut m, 13); // home 5, slot 6, displacement 1
        alloc(&mut m, 21); // home 5, slot 7, displacement 2
        m.deallocate(LineAddr::new(13)).unwrap();

        // A stale displacement-1 bit would cost a third probe here.
        let r = m.lookup(LineAddr::new(13));
        assert!(!r.found);
        assert_eq!(r.probes, 2);

        // The freed slot is re-usable and re-sets exactly one bit.
        alloc(&mut m, 29); // home 5 again -> freed slot 6, displacement 1
        assert!(m.filter().bit(5, 1));
        assert_eq!(
            m.lookup(LineAddr::new(29)),
            LookupResult {
                found: true,
                probes: 2
            }
        );
    }

    #[test]
    fn table_driven_stream_matches_a_cam_reference() {
        use std::collections::HashMap;

        // Fully-associative reference: line -> target count. Only outcome
        // classes are compared — probe counts are the VBF's own business.
        let mut cam: HashMap<u64, usize> = HashMap::new();
        let mut m = VbfMshr::new(8);

        let step = |m: &mut VbfMshr, cam: &mut HashMap<u64, usize>, op: u8, line: u64| {
            match op {
                0 => {
                    let got = m.allocate(
                        LineAddr::new(line),
                        target(line),
                        MissKind::Read,
                        Cycle::ZERO,
                    );
                    match (got, cam.get(&line).copied()) {
                        (Ok(AllocOutcome::Merged { targets, .. }), Some(n)) => {
                            assert_eq!(targets, n + 1, "merge count for line {line}");
                            cam.insert(line, n + 1);
                        }
                        (Ok(AllocOutcome::Primary { .. }), None) => {
                            assert!(cam.len() < 8, "vbf admitted past capacity");
                            cam.insert(line, 1);
                        }
                        (Err(AllocError::Full { .. }), None) => {
                            assert_eq!(cam.len(), 8, "vbf refused below capacity");
                        }
                        (got, expected) => {
                            panic!("line {line}: vbf {got:?} vs cam {expected:?}")
                        }
                    }
                }
                1 => {
                    let got = m.deallocate(LineAddr::new(line));
                    match (got, cam.remove(&line)) {
                        (Some((e, _)), Some(n)) => {
                            assert_eq!(e.line(), LineAddr::new(line));
                            assert_eq!(e.target_count(), n);
                        }
                        (None, None) => {}
                        (got, expected) => {
                            panic!("line {line}: vbf dealloc {got:?} vs cam {expected:?}")
                        }
                    }
                }
                _ => {
                    assert_eq!(
                        m.lookup(LineAddr::new(line)).found,
                        cam.contains_key(&line),
                        "presence of line {line}"
                    );
                }
            }
            assert_eq!(m.occupancy(), cam.len());
        };

        // A scripted prologue hitting the known hard shapes: same-home
        // pile-up, merges, release-then-reprobe, full-table refusal.
        for &(op, line) in &[
            (0u8, 5u64),
            (0, 13),
            (0, 21),
            (0, 29), // four lines homed at 5
            (0, 13), // merge
            (2, 37), // absent probe sharing home 5
            (1, 13),
            (2, 13), // release then stale probe
            (0, 0),
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 6), // fill to capacity
            (0, 7), // refused: table full
            (1, 29),
            (0, 7), // space freed, admitted
        ] {
            step(&mut m, &mut cam, op, line);
        }

        // A deterministic generated tail for breadth (LCG; no dev-deps).
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..2_000 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let op = ((x >> 60) % 3) as u8;
            let line = (x >> 32) % 24;
            step(&mut m, &mut cam, op, line);
        }
    }
}
