//! Direct-mapped MSHRs with open-addressed probing (no filter).
//!
//! This is the scalable-but-slow baseline of §5.2: a hash table indexed by
//! `line mod capacity`, searched by sequential probing. Without a filter, a
//! lookup that misses must in the worst case probe every entry, which is
//! exactly the cost the [Vector Bloom Filter](crate::VbfMshr) removes.

use stacksim_types::{Cycle, LineAddr};

use crate::entry::{MissKind, MissTarget, MshrEntry};
use crate::handler::{AllocError, AllocOutcome, LookupResult, MissHandler, MshrKind};

/// Secondary hashing scheme for resolving collisions (paper footnote 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ProbeScheme {
    /// Check consecutive slots: `h, h+1, h+2, …` (paper's default).
    #[default]
    Linear,
    /// Check triangular offsets: `h, h+1, h+3, h+6, …`; visits every slot
    /// exactly once when the capacity is a power of two.
    Quadratic,
}

impl ProbeScheme {
    /// The slot visited on probe number `i` (0-based) of a sequence that
    /// began at `home`, in a table of `capacity` slots.
    #[inline]
    pub fn slot(self, home: usize, i: usize, capacity: usize) -> usize {
        match self {
            ProbeScheme::Linear => (home + i) % capacity,
            ProbeScheme::Quadratic => (home + i * (i + 1) / 2) % capacity,
        }
    }
}

/// Sentinel in the flat line array marking an empty slot. No real line
/// reaches it: line indices are physical addresses shifted down by the
/// line-size bits.
const NO_LINE: u64 = u64::MAX;

/// A direct-mapped MSHR: a hash table of entries searched by open
/// addressing, with no acceleration structure.
///
/// Probing touches only `lines`, a struct-of-arrays mirror of each slot's
/// line address (with `NO_LINE` for empty slots): an exhaustive miss scan
/// reads `capacity` consecutive words instead of walking `capacity`
/// [`MshrEntry`] structs. The rich entries in `slots` stay authoritative
/// for targets, kinds and timestamps; every mutation updates both.
///
/// # Examples
///
/// ```
/// use stacksim_mshr::{DirectMappedMshr, MissHandler, MissKind, MissTarget, ProbeScheme};
/// use stacksim_types::{CoreId, Cycle, LineAddr};
///
/// let mut m = DirectMappedMshr::new(8, ProbeScheme::Linear);
/// m.allocate(LineAddr::new(13), MissTarget::demand(CoreId::new(0), 0), MissKind::Read, Cycle::ZERO)
///     .unwrap();
/// // A lookup that misses must scan the whole table.
/// assert_eq!(m.lookup(LineAddr::new(14)).probes, 8);
/// ```
#[derive(Clone, Debug)]
pub struct DirectMappedMshr {
    slots: Vec<Option<MshrEntry>>,
    /// Parallel array: `lines[s]` is `slots[s]`'s line, or [`NO_LINE`].
    lines: Vec<u64>,
    scheme: ProbeScheme,
    occupancy: usize,
    limit: usize,
}

impl DirectMappedMshr {
    /// Creates a direct-mapped MSHR with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, or if it is not a power of two with
    /// [`ProbeScheme::Quadratic`] (the triangular sequence only covers every
    /// slot for power-of-two sizes).
    pub fn new(capacity: usize, scheme: ProbeScheme) -> Self {
        assert!(capacity > 0, "mshr capacity must be non-zero");
        if scheme == ProbeScheme::Quadratic {
            assert!(
                capacity.is_power_of_two(),
                "quadratic probing requires a power-of-two capacity"
            );
        }
        DirectMappedMshr {
            slots: vec![None; capacity],
            lines: vec![NO_LINE; capacity],
            scheme,
            occupancy: 0,
            limit: capacity,
        }
    }

    /// Home slot for a line.
    #[inline]
    fn home(&self, line: LineAddr) -> usize {
        (line.index() % self.slots.len() as u64) as usize
    }

    /// Searches the probe sequence for `line`. Returns `(slot, probes)` on a
    /// hit or `(None, capacity)` after an exhaustive scan. Scans the flat
    /// line array only — the hot path never touches the rich entries.
    fn find(&self, line: LineAddr) -> (Option<usize>, u32) {
        let n = self.lines.len();
        let home = self.home(line);
        let want = line.index();
        debug_assert_ne!(want, NO_LINE, "line address hit the sentinel");
        for i in 0..n {
            let s = self.scheme.slot(home, i, n);
            if self.lines[s] == want {
                return (Some(s), (i + 1) as u32);
            }
        }
        (None, n as u32)
    }

    /// First free slot in the probe sequence from `line`'s home.
    fn free_slot(&self, line: LineAddr) -> Option<usize> {
        let n = self.lines.len();
        let home = self.home(line);
        (0..n)
            .map(|i| self.scheme.slot(home, i, n))
            .find(|&s| self.lines[s] == NO_LINE)
    }
}

impl MissHandler for DirectMappedMshr {
    fn kind(&self) -> MshrKind {
        match self.scheme {
            ProbeScheme::Linear => MshrKind::DirectLinear,
            ProbeScheme::Quadratic => MshrKind::DirectQuadratic,
        }
    }

    fn lookup(&mut self, line: LineAddr) -> LookupResult {
        let (slot, probes) = self.find(line);
        LookupResult {
            found: slot.is_some(),
            probes,
        }
    }

    fn allocate(
        &mut self,
        line: LineAddr,
        target: MissTarget,
        kind: MissKind,
        now: Cycle,
    ) -> Result<AllocOutcome, AllocError> {
        let (slot, probes) = self.find(line);
        if let Some(s) = slot {
            let e = self.slots[s].as_mut().expect("found slot is occupied"); // simlint::allow(P002, reason = "find only returns occupied slots for this line")
            e.merge(target);
            return Ok(AllocOutcome::Merged {
                probes,
                targets: e.target_count(),
            });
        }
        if self.occupancy >= self.limit {
            return Err(AllocError::Full { probes });
        }
        let s = self
            .free_slot(line)
            .expect("occupancy below capacity implies a free slot"); // simlint::allow(P002, reason = "occupancy below the limit was just checked, so a free slot exists")
        self.slots[s] = Some(MshrEntry::new(line, target, kind, now));
        self.lines[s] = line.index();
        self.occupancy += 1;
        Ok(AllocOutcome::Primary { probes })
    }

    fn deallocate(&mut self, line: LineAddr) -> Option<(MshrEntry, u32)> {
        let (slot, probes) = self.find(line);
        let s = slot?;
        let e = self.slots[s].take().expect("found slot is occupied"); // simlint::allow(P002, reason = "find only returns occupied slots for this line")
        self.lines[s] = NO_LINE;
        self.occupancy -= 1;
        Some((e, probes))
    }

    fn entry(&self, line: LineAddr) -> Option<&MshrEntry> {
        let (slot, _) = self.find(line);
        slot.and_then(|s| self.slots[s].as_ref())
    }

    fn occupancy(&self) -> usize {
        self.occupancy
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn capacity_limit(&self) -> usize {
        self.limit
    }

    fn set_capacity_limit(&mut self, limit: usize) {
        assert!(limit > 0, "capacity limit must be non-zero");
        self.limit = limit.min(self.slots.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_types::CoreId;

    fn target(token: u64) -> MissTarget {
        MissTarget::demand(CoreId::new(0), token)
    }

    fn alloc(m: &mut DirectMappedMshr, line: u64) -> AllocOutcome {
        m.allocate(
            LineAddr::new(line),
            target(line),
            MissKind::Read,
            Cycle::ZERO,
        )
        .unwrap()
    }

    #[test]
    fn home_slot_hit_is_one_probe() {
        let mut m = DirectMappedMshr::new(8, ProbeScheme::Linear);
        alloc(&mut m, 13); // home 5
        assert_eq!(
            m.lookup(LineAddr::new(13)),
            LookupResult {
                found: true,
                probes: 1
            }
        );
    }

    #[test]
    fn collision_chains_probe_sequentially() {
        // Reproduce the paper's Figure 8 scenario without the VBF: addresses
        // 13, 29, 45 all have home 5 in an 8-entry table.
        let mut m = DirectMappedMshr::new(8, ProbeScheme::Linear);
        alloc(&mut m, 13); // slot 5
        alloc(&mut m, 22); // slot 6 (home 6)
        alloc(&mut m, 29); // home 5 -> next free is 7
        alloc(&mut m, 45); // home 5 -> wraps to 0
        assert_eq!(m.lookup(LineAddr::new(29)).probes, 3); // 5,6,7
                                                           // Plain linear probing needs 4 probes for 45 (5,6,7,0) — the case
                                                           // the paper uses to motivate the VBF.
        assert_eq!(m.lookup(LineAddr::new(45)).probes, 4);
        assert_eq!(m.occupancy(), 4);
    }

    #[test]
    fn miss_scans_whole_table() {
        let mut m = DirectMappedMshr::new(8, ProbeScheme::Linear);
        alloc(&mut m, 1);
        let r = m.lookup(LineAddr::new(2));
        assert!(!r.found);
        assert_eq!(r.probes, 8);
    }

    #[test]
    fn deallocate_then_lookup_still_finds_displaced_entries() {
        // After deallocating the middle of a collision chain, entries past
        // the hole must still be findable (the scan does not stop at empty
        // slots).
        let mut m = DirectMappedMshr::new(8, ProbeScheme::Linear);
        alloc(&mut m, 13);
        alloc(&mut m, 29);
        alloc(&mut m, 45); // chain 5 -> 6 -> 7... wait: home 5; 13@5, 29@6, 45@7
        let (e, _) = m.deallocate(LineAddr::new(29)).unwrap();
        assert_eq!(e.line(), LineAddr::new(29));
        assert!(m.lookup(LineAddr::new(45)).found);
    }

    #[test]
    fn merges_secondary_miss() {
        let mut m = DirectMappedMshr::new(8, ProbeScheme::Linear);
        alloc(&mut m, 13);
        let out = m
            .allocate(LineAddr::new(13), target(99), MissKind::Read, Cycle::new(3))
            .unwrap();
        assert_eq!(
            out,
            AllocOutcome::Merged {
                probes: 1,
                targets: 2
            }
        );
        assert_eq!(m.occupancy(), 1);
    }

    #[test]
    fn full_table_rejects() {
        let mut m = DirectMappedMshr::new(2, ProbeScheme::Linear);
        alloc(&mut m, 0);
        alloc(&mut m, 1);
        let err = m
            .allocate(LineAddr::new(2), target(2), MissKind::Read, Cycle::ZERO)
            .unwrap_err();
        assert_eq!(err.probes(), 2);
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut m = DirectMappedMshr::new(8, ProbeScheme::Linear);
        m.set_capacity_limit(1);
        alloc(&mut m, 0);
        assert!(m
            .allocate(LineAddr::new(1), target(1), MissKind::Read, Cycle::ZERO)
            .is_err());
    }

    #[test]
    fn quadratic_covers_all_slots() {
        let n = 16;
        let mut seen: Vec<bool> = vec![false; n];
        for i in 0..n {
            seen[ProbeScheme::Quadratic.slot(3, i, n)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "triangular probing must cover every slot"
        );
    }

    #[test]
    fn quadratic_scheme_allocates_and_finds() {
        let mut m = DirectMappedMshr::new(8, ProbeScheme::Quadratic);
        for line in [13u64, 29, 45, 61] {
            alloc(&mut m, line);
        }
        for line in [13u64, 29, 45, 61] {
            assert!(m.lookup(LineAddr::new(line)).found, "line {line} lost");
        }
        assert_eq!(m.kind(), MshrKind::DirectQuadratic);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn quadratic_requires_power_of_two() {
        let _ = DirectMappedMshr::new(6, ProbeScheme::Quadratic);
    }

    #[test]
    fn entry_access() {
        let mut m = DirectMappedMshr::new(8, ProbeScheme::Linear);
        alloc(&mut m, 13);
        assert_eq!(
            m.entry(LineAddr::new(13)).unwrap().line(),
            LineAddr::new(13)
        );
        assert!(m.entry(LineAddr::new(14)).is_none());
    }
}
