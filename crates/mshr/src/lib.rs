//! Miss-status-handling-register (MSHR) architectures for the `stacksim`
//! simulator, including the paper's novel **Vector Bloom Filter** MSHR.
//!
//! Section 5 of Loh's ISCA 2008 paper observes that once the 3D-stacked
//! memory system is fast enough, the L2 miss-handling architecture becomes
//! the bottleneck, and that traditional fully-associative CAM MSHRs do not
//! scale in capacity. This crate implements every organization the paper
//! discusses or compares against:
//!
//! * [`CamMshr`] — the ideal single-cycle fully-associative CAM baseline;
//! * [`DirectMappedMshr`] — a scalable direct-mapped hash table with linear
//!   (or, for the footnote-2 ablation, quadratic) probing;
//! * [`VbfMshr`] — the direct-mapped table augmented with the
//!   [`VectorBloomFilter`], which remembers, per home slot, the displacement
//!   of every entry that hashed there and thereby skips useless probes;
//! * [`HierarchicalMshr`] — Tuck et al.'s banked + shared-overflow design
//!   (the paper's preferred L1 organization, used here as a comparison
//!   point);
//! * [`DynamicTuner`] — the sampling-based dynamic MSHR capacity tuning of
//!   §5.1 (1×, ½×, ¼× of maximum, chosen by brief training phases).
//!
//! All implementations speak the common [`MissHandler`] trait, which reports
//! the number of sequential probes each operation required so the timing
//! model can charge for MSHR search latency.
//!
//! # Examples
//!
//! ```
//! use stacksim_mshr::{MissHandler, MissKind, MissTarget, VbfMshr};
//! use stacksim_types::{CoreId, Cycle, LineAddr};
//!
//! let mut mshr = VbfMshr::new(8);
//! let target = MissTarget::demand(CoreId::new(0), 1);
//! let out = mshr.allocate(LineAddr::new(13), target, MissKind::Read, Cycle::ZERO).unwrap();
//! assert!(out.is_primary());
//! assert!(mshr.lookup(LineAddr::new(13)).found);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cam;
mod direct;
mod dynamic;
mod entry;
mod handler;
mod hierarchical;
mod sample;
mod vbf;

pub use cam::CamMshr;
pub use direct::{DirectMappedMshr, ProbeScheme};
pub use dynamic::{DynamicTuner, TunerConfig, TunerPhase};
pub use entry::{MissKind, MissTarget, MshrEntry};
pub use handler::{AllocError, AllocOutcome, LookupResult, MissHandler, MshrKind};
pub use hierarchical::HierarchicalMshr;
pub use sample::OccupancySample;
pub use vbf::{VbfMshr, VectorBloomFilter};
