//! MSHR entries and the requests merged into them.

use core::fmt;
use stacksim_types::{CoreId, Cycle, LineAddr};

/// What kind of memory operation a miss represents.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// A demand or prefetch read (line fill).
    #[default]
    Read,
    /// A write/ownership miss (write-allocate fill).
    Write,
    /// A dirty-line writeback to memory.
    Writeback,
}

/// One requestor waiting on an outstanding miss.
///
/// A primary miss allocates the MSHR entry; secondary misses to the same
/// line *merge* into the existing entry as additional targets and are all
/// woken when the fill returns (Kroft-style lockup-free operation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MissTarget {
    /// Core that issued the request.
    pub core: CoreId,
    /// Opaque token the owner uses to match completions back to requests.
    pub token: u64,
    /// Whether this target is a hardware prefetch (no core is stalled on it).
    pub is_prefetch: bool,
}

impl MissTarget {
    /// A demand-miss target.
    pub const fn demand(core: CoreId, token: u64) -> Self {
        MissTarget {
            core,
            token,
            is_prefetch: false,
        }
    }

    /// A prefetch target.
    pub const fn prefetch(core: CoreId, token: u64) -> Self {
        MissTarget {
            core,
            token,
            is_prefetch: true,
        }
    }
}

impl fmt::Display for MissTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{}{}",
            self.core,
            self.token,
            if self.is_prefetch { "(pf)" } else { "" }
        )
    }
}

/// One allocated MSHR entry: an outstanding miss and its merged targets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MshrEntry {
    line: LineAddr,
    kind: MissKind,
    allocated_at: Cycle,
    targets: Vec<MissTarget>,
}

impl MshrEntry {
    /// Creates an entry for a primary miss.
    pub fn new(line: LineAddr, first: MissTarget, kind: MissKind, now: Cycle) -> Self {
        MshrEntry {
            line,
            kind,
            allocated_at: now,
            targets: vec![first],
        }
    }

    /// The missed line address.
    pub const fn line(&self) -> LineAddr {
        self.line
    }

    /// The operation kind of the primary miss.
    pub const fn kind(&self) -> MissKind {
        self.kind
    }

    /// Cycle the entry was allocated.
    pub const fn allocated_at(&self) -> Cycle {
        self.allocated_at
    }

    /// All merged targets, primary first.
    pub fn targets(&self) -> &[MissTarget] {
        &self.targets
    }

    /// Merges a secondary miss into this entry.
    pub fn merge(&mut self, target: MissTarget) {
        self.targets.push(target);
    }

    /// Number of merged targets (≥ 1).
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Whether any target is a demand (non-prefetch) request.
    pub fn has_demand(&self) -> bool {
        self.targets.iter().any(|t| !t.is_prefetch)
    }
}

impl fmt::Display for MshrEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x{} {:?} {}",
            self.line,
            self.targets.len(),
            self.kind,
            self.allocated_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_targets() {
        let mut e = MshrEntry::new(
            LineAddr::new(5),
            MissTarget::demand(CoreId::new(0), 1),
            MissKind::Read,
            Cycle::ZERO,
        );
        e.merge(MissTarget::prefetch(CoreId::new(1), 2));
        assert_eq!(e.target_count(), 2);
        assert!(e.has_demand());
        assert_eq!(e.targets()[0].token, 1);
    }

    #[test]
    fn prefetch_only_entry_has_no_demand() {
        let e = MshrEntry::new(
            LineAddr::new(5),
            MissTarget::prefetch(CoreId::new(0), 1),
            MissKind::Read,
            Cycle::ZERO,
        );
        assert!(!e.has_demand());
    }

    #[test]
    fn display_forms() {
        let t = MissTarget::prefetch(CoreId::new(2), 9);
        assert_eq!(t.to_string(), "core2#9(pf)");
        let t2 = MissTarget::demand(CoreId::new(0), 3);
        assert_eq!(t2.to_string(), "core0#3");
    }
}
