//! Result export and ad-hoc configuration comparison.
//!
//! Every experiment driver renders a [`Table`]; this module turns tables
//! into CSV for plotting, and provides [`compare_configs`] for quick
//! user-defined studies outside the paper's fixed figure set.

use std::io::{self, Write};

use stacksim_stats::{harmonic_mean, Table};
use stacksim_types::ConfigError;
use stacksim_workload::Mix;

use crate::config::SystemConfig;
use crate::runner::{run_mix, RunConfig};

/// Writes a [`Table`] as RFC-4180-style CSV (header row first; cells with
/// commas, quotes or newlines are quoted).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use stacksim::report::table_to_csv;
/// use stacksim_stats::Table;
///
/// let mut t = Table::new(vec!["mix".into(), "speedup".into()]);
/// t.row(vec!["H1".into(), "2.17".into()]);
/// let mut csv = Vec::new();
/// table_to_csv(&t, &mut csv)?;
/// assert_eq!(String::from_utf8(csv).unwrap(), "mix,speedup\nH1,2.17\n");
/// # Ok::<(), std::io::Error>(())
/// ```
#[must_use = "the Err reports a failed write; dropping it hides truncated output"]
pub fn table_to_csv<W: Write>(table: &Table, mut writer: W) -> io::Result<()> {
    let write_row = |writer: &mut W, cells: &[String]| -> io::Result<()> {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                write!(writer, ",")?;
            }
            if cell.contains([',', '"', '\n']) {
                write!(writer, "\"{}\"", cell.replace('"', "\"\""))?;
            } else {
                write!(writer, "{cell}")?;
            }
        }
        writeln!(writer)
    };
    write_row(&mut writer, table.headers())?;
    for row in table.rows() {
        write_row(&mut writer, row)?;
    }
    Ok(())
}

/// HMIPC of several labelled configurations across several mixes.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Configuration labels, in column order.
    pub labels: Vec<String>,
    /// `(mix, hmipc-per-configuration)` rows.
    pub rows: Vec<(&'static Mix, Vec<f64>)>,
}

impl Comparison {
    /// Renders absolute HMIPC values.
    pub fn table(&self) -> Table {
        let mut headers = vec!["mix".to_string()];
        headers.extend(self.labels.iter().cloned());
        let mut t = Table::new(headers);
        t.title("HMIPC by configuration");
        t.numeric();
        for (mix, values) in &self.rows {
            let mut cells = vec![mix.name.to_string()];
            cells.extend(values.iter().map(|v| format!("{v:.4}")));
            t.row(cells);
        }
        t
    }

    /// Renders speedups of every configuration over column
    /// `baseline_index`.
    ///
    /// # Panics
    ///
    /// Panics if `baseline_index` is out of range.
    pub fn speedup_table(&self, baseline_index: usize) -> Table {
        assert!(
            baseline_index < self.labels.len(),
            "baseline index out of range"
        );
        let mut headers = vec!["mix".to_string()];
        headers.extend(self.labels.iter().cloned());
        let mut t = Table::new(headers);
        t.title(format!("Speedup over {}", self.labels[baseline_index]));
        t.numeric();
        for (mix, values) in &self.rows {
            let base = values[baseline_index];
            let mut cells = vec![mix.name.to_string()];
            cells.extend(values.iter().map(|v| format!("{:.3}", v / base)));
            t.row(cells);
        }
        t
    }

    /// Harmonic-mean HMIPC per configuration across the compared mixes (a
    /// throughput-of-throughputs summary for quick ranking).
    pub fn summary(&self) -> Vec<(String, f64)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, label)| {
                let vals: Vec<f64> = self.rows.iter().map(|(_, v)| v[i]).collect();
                (label.clone(), harmonic_mean(&vals).unwrap_or(0.0))
            })
            .collect()
    }
}

/// Runs every `(label, configuration)` against every mix and collects
/// HMIPC — the building block for user-defined design studies.
///
/// # Errors
///
/// Returns [`ConfigError`] if any configuration fails validation.
#[must_use = "the comparison or the reason a configuration is invalid"]
pub fn compare_configs(
    configs: &[(&str, SystemConfig)],
    mixes: &[&'static Mix],
    run: &RunConfig,
) -> Result<Comparison, ConfigError> {
    let mut rows = Vec::with_capacity(mixes.len());
    for &mix in mixes {
        let mut values = Vec::with_capacity(configs.len());
        for (_, cfg) in configs {
            values.push(run_mix(cfg, mix, run)?.hmipc);
        }
        rows.push((mix, values));
    }
    Ok(Comparison {
        labels: configs.iter().map(|(l, _)| l.to_string()).collect(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let mut out = Vec::new();
        table_to_csv(&t, &mut out).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
        );
    }

    #[test]
    fn comparison_end_to_end() {
        let run = RunConfig {
            warmup_cycles: 5_000,
            measure_cycles: 25_000,
            seed: 4,
            ..RunConfig::default()
        };
        let mixes = [Mix::by_name("HM3").unwrap()];
        let cmp = compare_configs(
            &[("2d", configs::cfg_2d()), ("quad", configs::cfg_quad_mc())],
            &mixes,
            &run,
        )
        .unwrap();
        assert_eq!(cmp.labels, ["2d", "quad"]);
        assert_eq!(cmp.rows.len(), 1);
        let (_, values) = &cmp.rows[0];
        assert!(values[1] > values[0], "quad {values:?} must beat 2d");
        // Tables render and export.
        let t = cmp.speedup_table(0);
        assert_eq!(t.cell(0, 1), Some("1.000"));
        let mut csv = Vec::new();
        table_to_csv(&cmp.table(), &mut csv).unwrap();
        assert!(String::from_utf8(csv).unwrap().starts_with("mix,2d,quad"));
        let summary = cmp.summary();
        assert_eq!(summary.len(), 2);
        assert!(summary[1].1 > summary[0].1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn speedup_baseline_checked() {
        let cmp = Comparison {
            labels: vec!["a".into()],
            rows: vec![],
        };
        let _ = cmp.speedup_table(3);
    }
}
