//! `stacksim` — a cycle-level simulator reproducing Gabriel Loh's ISCA 2008
//! paper *"3D-Stacked Memory Architectures for Multi-Core Processors"*.
//!
//! The crate assembles the workspace's substrates — trace-driven cores
//! (`stacksim-cpu`), a banked shared L2 (`stacksim-cache`), scalable L2 miss
//! handling including the Vector Bloom Filter (`stacksim-mshr`), banked
//! memory controllers (`stacksim-memctrl`) and a DRAM device model
//! (`stacksim-dram`) — into the paper's quad-core machine, and provides:
//!
//! * [`SystemConfig`] plus the named paper configurations in [`configs`]
//!   (2D → 3D → 3D-wide → 3D-fast → aggressive rank/MC/row-buffer
//!   organizations);
//! * [`System`], the cycle-driven machine model;
//! * [`runner`], the warmup + measure harness producing per-core IPC and
//!   HMIPC exactly as the paper's methodology prescribes (§2.4), plus the
//!   parallel experiment engine — [`runner::run_matrix`] fans independent
//!   simulation points across worker threads and memoizes each distinct
//!   `(config, mix, window)` triple, with output bit-identical to a
//!   sequential loop;
//! * [`experiments`], one driver per table/figure of the evaluation
//!   (Table 2, Figures 4, 6(a), 6(b), 7, 9, the §5.2 headline numbers and
//!   the §2.4 thermal check).
//!
//! # Quickstart
//!
//! ```no_run
//! use stacksim::configs;
//! use stacksim::runner::{run_mix, RunConfig};
//! use stacksim_workload::Mix;
//!
//! let cfg = configs::cfg_3d_fast();
//! let mix = Mix::by_name("H1").unwrap();
//! let result = run_mix(&cfg, mix, &RunConfig::default()).unwrap();
//! println!("H1 on 3D-fast: HMIPC {:.3}", result.hmipc);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod configs;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod scenario;
mod system;
pub mod trace;

pub use config::{InterconnectConfig, MemorySystemConfig, MshrSystemConfig, SystemConfig};
pub use system::System;

/// Version stamp of the simulation code, mixed into every durable result
/// store key (see `docs/STORE.md`).
///
/// The stamp is the crate version plus a simulation revision counter.
/// **Bump the revision whenever a change alters any simulated number** —
/// new timing model, different statistics, a changed default — so entries
/// persisted by older builds miss instead of serving stale metrics.
/// Pure-speed changes that are gated on bit-identity (the fast-forward
/// and data-layout work) do not need a bump: their results are
/// indistinguishable by construction.
pub const CODE_VERSION: &str = concat!("stacksim/", env!("CARGO_PKG_VERSION"), "+sim1");
