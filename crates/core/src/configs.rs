//! The named machine configurations of the paper's evaluation.
//!
//! Figure 4's progression: [`cfg_2d`] → [`cfg_3d`] → [`cfg_3d_wide`] →
//! [`cfg_3d_fast`]; Figures 6–9 build on [`cfg_aggressive`].

use stacksim_cache::CacheConfig;
use stacksim_cpu::CoreConfig;
use stacksim_memctrl::SchedulerPolicy;
use stacksim_mshr::MshrKind;
use stacksim_types::{Cycles, DramTiming, InterleaveGranularity, MemoryKind, RefreshConfig};
use stacksim_vm::TlbConfig;

use crate::config::{InterconnectConfig, MemorySystemConfig, MshrSystemConfig, SystemConfig};

/// Core clock of the Table 1 machine, Hz.
pub const CORE_HZ: f64 = 3.333e9;

/// One-way package/PCB latency to off-chip memory, beyond the DRAM arrays
/// themselves (pin crossing, board trace, FSB protocol). One of the three
/// overheads 3D stacking removes (§3).
const OFF_CHIP_PATH_NS: f64 = 12.0;

fn baseline_memory() -> MemorySystemConfig {
    MemorySystemConfig {
        kind: MemoryKind::OffChip2D,
        total_bytes: 8 << 30,
        ranks: 8,
        banks_per_rank: 8,
        mcs: 1,
        stacks: 1,
        row_buffer_entries: 1,
        timing: DramTiming::COMMODITY_2D,
        refresh: RefreshConfig::OFF_CHIP,
        smart_refresh: false,
        page_policy: stacksim_dram::PagePolicy::Open,
        bus_width_bytes: 8,
        bus_clock_divisor: 2, // 64-bit FSB at 1.66 GT/s vs 3.333 GHz core
        mc_clock_divisor: 4,  // MC clocked at the 833 MHz FSB
        path_latency: Cycles::from_ns(OFF_CHIP_PATH_NS, CORE_HZ),
        critical_word_first: true,
        mrq_total: 32,
        policy: SchedulerPolicy::FrFcfs,
    }
}

fn baseline_system(memory: MemorySystemConfig) -> SystemConfig {
    SystemConfig {
        cores: 4,
        core: CoreConfig::penryn(),
        per_core: Vec::new(),
        core_hz: CORE_HZ,
        l2: CacheConfig::dl2_penryn(),
        l2_banks: 16,
        l2_latency: Cycles::new(9),
        l2_interleave: InterleaveGranularity::Line,
        l2_prefetch: true,
        mshr: MshrSystemConfig {
            kind: MshrKind::Cam,
            total_entries: 8,
            dynamic: None,
        },
        vm: Some(TlbConfig::dtlb_penryn()),
        interconnect: InterconnectConfig::default(),
        memory,
    }
}

/// The conventional baseline: off-chip commodity DDR2 behind a 64-bit FSB,
/// a single 833 MHz memory controller, one row buffer per bank.
pub fn cfg_2d() -> SystemConfig {
    baseline_system(baseline_memory())
}

/// Simple 3D stacking (prior work's configuration): the same commodity
/// DRAM moved on-stack — wire delay to memory disappears and the MC and bus
/// run at core speed, but array timing, bus width and topology are
/// unchanged.
pub fn cfg_3d() -> SystemConfig {
    let mut memory = baseline_memory();
    memory.kind = MemoryKind::Stacked3D;
    memory.refresh = RefreshConfig::ON_STACK;
    memory.bus_clock_divisor = 1;
    memory.mc_clock_divisor = 1;
    memory.path_latency = Cycles::ZERO;
    baseline_system(memory)
}

/// [`cfg_3d`] with the on-stack data bus widened to a full 64-byte cache
/// line per transfer (TSV bundles make this nearly free, §2.2).
pub fn cfg_3d_wide() -> SystemConfig {
    let mut cfg = cfg_3d();
    cfg.memory.bus_width_bytes = 64;
    cfg
}

/// "True" 3D: [`cfg_3d_wide`] with the DRAM arrays themselves folded across
/// layers over a dedicated logic layer, cutting array timing by 32.5 %
/// (Tezzaron's measurements; Table 1's true-3D row). This is the baseline
/// all of §4's gains are measured against.
pub fn cfg_3d_fast() -> SystemConfig {
    let mut cfg = cfg_3d_wide();
    cfg.memory.kind = MemoryKind::True3DSplit;
    cfg.memory.timing = DramTiming::TRUE_3D;
    cfg
}

/// The paper's aggressive §4 organizations on top of [`cfg_3d_fast`]:
/// `mcs` banked memory controllers over `ranks` ranks with
/// `row_buffer_entries` row buffers per bank, the L2 re-banked at page
/// granularity so each L2 bank feeds exactly one MC, and the L2 MSHRs
/// banked alongside (Figure 5).
///
/// # Panics
///
/// Panics if the resulting configuration is inconsistent (e.g. `ranks` not
/// divisible by `mcs`).
pub fn cfg_aggressive(mcs: u16, ranks: u16, row_buffer_entries: usize) -> SystemConfig {
    let cfg = aggressive_from(&cfg_3d_fast(), mcs, ranks, row_buffer_entries);
    cfg.validate()
        .expect("aggressive configuration must be consistent"); // simlint::allow(P002, reason = "builder-produced config; the MSHR rounding above preserves validity")
    cfg
}

/// The same §4 reorganization applied to an arbitrary true-3D base machine
/// — the scenario-file path: [`Machines`](crate::scenario::Machines)
/// derives its MC/rank sweeps from the loaded `3d-fast` machine with this.
/// Unlike [`cfg_aggressive`] the result is not eagerly validated; callers
/// hand it to the runner, which validates before simulating.
pub fn aggressive_from(
    base: &SystemConfig,
    mcs: u16,
    ranks: u16,
    row_buffer_entries: usize,
) -> SystemConfig {
    let mut cfg = base.clone();
    cfg.memory.mcs = mcs;
    cfg.memory.ranks = ranks;
    cfg.memory.row_buffer_entries = row_buffer_entries;
    cfg.l2_interleave = InterleaveGranularity::Page;
    // Keep the aggregate MSHR capacity of the baseline; it is banked across
    // MCs. Section 5 then scales it.
    if !cfg.mshr.total_entries.is_multiple_of(mcs as usize) {
        cfg.mshr.total_entries = mcs as usize * cfg.mshr.total_entries.div_ceil(mcs as usize);
    }
    cfg
}

/// The dual-MC configuration highlighted in Figures 6(b), 7(a) and 9(a):
/// 2 MCs, 8 ranks, 4 row buffers per bank.
pub fn cfg_dual_mc() -> SystemConfig {
    cfg_aggressive(2, 8, 4)
}

/// The quad-MC configuration highlighted in Figures 6(b), 7(b) and 9(b):
/// 4 MCs, 16 ranks, 4 row buffers per bank.
pub fn cfg_quad_mc() -> SystemConfig {
    cfg_aggressive(4, 16, 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_progression_changes_one_axis_at_a_time() {
        let d2 = cfg_2d();
        let d3 = cfg_3d();
        let wide = cfg_3d_wide();
        let fast = cfg_3d_fast();
        // 2D -> 3D: clocking and locality change, arrays do not.
        assert_eq!(d2.memory.timing, d3.memory.timing);
        assert_eq!(d2.memory.bus_width_bytes, d3.memory.bus_width_bytes);
        assert!(d3.memory.path_latency < d2.memory.path_latency);
        assert_eq!(d3.memory.mc_clock_divisor, 1);
        // 3D -> wide: only the bus widens.
        assert_eq!(wide.memory.bus_width_bytes, 64);
        assert_eq!(wide.memory.timing, d3.memory.timing);
        // wide -> fast: only the array timing accelerates.
        assert_eq!(fast.memory.bus_width_bytes, 64);
        assert_eq!(fast.memory.timing, DramTiming::TRUE_3D);
    }

    #[test]
    fn stacked_refresh_is_faster() {
        assert_eq!(cfg_2d().memory.refresh, RefreshConfig::OFF_CHIP);
        assert_eq!(cfg_3d().memory.refresh, RefreshConfig::ON_STACK);
    }

    #[test]
    fn aggressive_configs_use_page_interleave() {
        let cfg = cfg_quad_mc();
        assert_eq!(cfg.l2_interleave, InterleaveGranularity::Page);
        assert_eq!(cfg.memory.mcs, 4);
        assert_eq!(cfg.memory.ranks, 16);
        assert_eq!(cfg.memory.row_buffer_entries, 4);
        // The baseline keeps the commodity line interleave.
        assert_eq!(cfg_3d_fast().l2_interleave, InterleaveGranularity::Line);
    }

    #[test]
    fn highlighted_configs_match_figure6b() {
        let dual = cfg_dual_mc();
        assert_eq!((dual.memory.mcs, dual.memory.ranks), (2, 8));
        let quad = cfg_quad_mc();
        assert_eq!((quad.memory.mcs, quad.memory.ranks), (4, 16));
    }
}
