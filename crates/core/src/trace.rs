//! Opt-in simulator event tracing.
//!
//! A [`TraceConfig`] on [`RunConfig`](crate::runner::RunConfig) selects
//! which event streams a run records: the DRAM command stream per memory
//! controller, periodic MSHR-bank occupancy samples, and periodic MC
//! queue-depth samples. Tracing is **off by default** and the hot loop pays
//! a single predictable branch when disabled (guarded by the
//! `trace_overhead` benchmark in `stacksim-bench`).
//!
//! The recorded streams come back as a [`Trace`] on the
//! [`RunResult`](crate::runner::RunResult), with a
//! [`summary`](Trace::summary) that folds the streams into exportable
//! metrics.
//!
//! # Examples
//!
//! ```
//! use stacksim::trace::TraceConfig;
//!
//! let off = TraceConfig::off();
//! assert!(!off.any());
//! let all = TraceConfig::all();
//! assert!(all.dram_cmds && all.mshr_occupancy && all.mc_queue_depth);
//! assert!(all.any());
//! ```

use core::fmt;

use stacksim_dram::DramCmd;
use stacksim_mshr::OccupancySample;
use stacksim_stats::MetricsSink;
use stacksim_types::Cycle;

/// Which event streams a run records, and how often the sampled streams
/// sample. Part of the run identity (`Copy + Eq + Hash`), so memoized runs
/// with different tracing never alias.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceConfig {
    /// Record every DRAM command each memory controller issues.
    pub dram_cmds: bool,
    /// Sample each MSHR bank's occupancy every `sample_interval` cycles.
    pub mshr_occupancy: bool,
    /// Sample each memory controller's queue depth every `sample_interval`
    /// cycles.
    pub mc_queue_depth: bool,
    /// Core-clock cycles between samples of the sampled streams. Must be
    /// non-zero when a sampled stream is enabled.
    pub sample_interval: u64,
}

/// Default sampling period: fine enough to see refresh beats and tuner
/// phases, coarse enough that a full run stays small.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 1024;

impl TraceConfig {
    /// Everything disabled (the default).
    pub const fn off() -> TraceConfig {
        TraceConfig {
            dram_cmds: false,
            mshr_occupancy: false,
            mc_queue_depth: false,
            sample_interval: DEFAULT_SAMPLE_INTERVAL,
        }
    }

    /// Every stream enabled at the default sampling interval.
    pub const fn all() -> TraceConfig {
        TraceConfig {
            dram_cmds: true,
            mshr_occupancy: true,
            mc_queue_depth: true,
            sample_interval: DEFAULT_SAMPLE_INTERVAL,
        }
    }

    /// Whether any stream is enabled.
    pub const fn any(&self) -> bool {
        self.dram_cmds || self.mshr_occupancy || self.mc_queue_depth
    }

    /// Whether any *sampled* stream (occupancy, queue depth) is enabled.
    pub const fn samples(&self) -> bool {
        self.mshr_occupancy || self.mc_queue_depth
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// A point-in-time sample of one memory controller's request-queue depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueDepthSample {
    /// Core-clock cycle of the sample.
    pub at: Cycle,
    /// Which memory controller was sampled.
    pub mc: usize,
    /// Requests queued (not yet issued to DRAM) at the sample point.
    pub depth: usize,
}

impl fmt::Display for QueueDepthSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} mc{} depth {}", self.at.raw(), self.mc, self.depth)
    }
}

/// The event streams one traced run recorded.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// DRAM command stream, one vector per memory controller, in issue
    /// order. Empty unless [`TraceConfig::dram_cmds`] was set.
    pub dram_cmds: Vec<Vec<DramCmd>>,
    /// MSHR occupancy samples across all banks, in time order. Empty unless
    /// [`TraceConfig::mshr_occupancy`] was set.
    pub mshr_occupancy: Vec<OccupancySample>,
    /// MC queue-depth samples across all controllers, in time order. Empty
    /// unless [`TraceConfig::mc_queue_depth`] was set.
    pub mc_queue_depth: Vec<QueueDepthSample>,
}

impl Trace {
    /// Total events across all streams.
    pub fn len(&self) -> usize {
        self.dram_cmds.iter().map(Vec::len).sum::<usize>()
            + self.mshr_occupancy.len()
            + self.mc_queue_depth.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds the streams into a metrics subtree (rooted `trace`): command
    /// counts per controller and kind, and occupancy / queue-depth sample
    /// counts with their observed means and maxima.
    pub fn summary(&self) -> MetricsSink {
        let mut sink = MetricsSink::new("trace");
        for (i, cmds) in self.dram_cmds.iter().enumerate() {
            let mc = sink.child_mut(&format!("mc{i}"));
            mc.counter("dram_cmds", cmds.len() as u64);
            for kind in [
                stacksim_dram::DramCmdKind::Activate,
                stacksim_dram::DramCmdKind::Read,
                stacksim_dram::DramCmdKind::Write,
                stacksim_dram::DramCmdKind::Precharge,
                stacksim_dram::DramCmdKind::Refresh,
            ] {
                let n = cmds.iter().filter(|c| c.kind == kind).count() as u64;
                if n > 0 {
                    mc.counter(format!("cmd_{}", kind.mnemonic().to_lowercase()), n);
                }
            }
        }
        if !self.mshr_occupancy.is_empty() {
            let n = self.mshr_occupancy.len();
            let mean = self
                .mshr_occupancy
                .iter()
                .map(|s| s.occupancy as f64)
                .sum::<f64>()
                / n as f64;
            let max = self
                .mshr_occupancy
                .iter()
                .map(|s| s.occupancy)
                .max()
                .unwrap_or(0);
            let mshr = sink.child_mut("mshr");
            mshr.counter("occupancy_samples", n as u64);
            mshr.gauge("occupancy_mean", mean);
            mshr.counter("occupancy_max", max as u64);
        }
        if !self.mc_queue_depth.is_empty() {
            let n = self.mc_queue_depth.len();
            let mean = self
                .mc_queue_depth
                .iter()
                .map(|s| s.depth as f64)
                .sum::<f64>()
                / n as f64;
            let max = self
                .mc_queue_depth
                .iter()
                .map(|s| s.depth)
                .max()
                .unwrap_or(0);
            let q = sink.child_mut("queue");
            q.counter("depth_samples", n as u64);
            q.gauge("depth_mean", mean);
            q.counter("depth_max", max as u64);
        }
        sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stacksim_dram::DramCmdKind;

    #[test]
    fn config_flags() {
        assert_eq!(TraceConfig::default(), TraceConfig::off());
        assert!(!TraceConfig::off().samples());
        let mut c = TraceConfig::off();
        c.mc_queue_depth = true;
        assert!(c.any() && c.samples());
        let mut d = TraceConfig::off();
        d.dram_cmds = true;
        assert!(d.any() && !d.samples());
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.summary().is_empty());
    }

    #[test]
    fn summary_counts_streams() {
        let mut t = Trace::default();
        t.dram_cmds.push(vec![
            DramCmd {
                at: Cycle::new(1),
                rank: 0,
                bank: 0,
                row: 0,
                kind: DramCmdKind::Activate,
            },
            DramCmd {
                at: Cycle::new(2),
                rank: 0,
                bank: 0,
                row: 0,
                kind: DramCmdKind::Read,
            },
        ]);
        t.mshr_occupancy.push(OccupancySample {
            at: Cycle::new(5),
            bank: 0,
            occupancy: 3,
            limit: 8,
        });
        t.mc_queue_depth.push(QueueDepthSample {
            at: Cycle::new(5),
            mc: 0,
            depth: 2,
        });
        assert_eq!(t.len(), 4);
        let s = t.summary();
        assert_eq!(s.get("mc0.dram_cmds"), Some(2.0));
        assert_eq!(s.get("mc0.cmd_act"), Some(1.0));
        assert_eq!(s.get("mc0.cmd_rd"), Some(1.0));
        assert_eq!(s.get("mc0.cmd_pre"), None);
        assert_eq!(s.get("mshr.occupancy_mean"), Some(3.0));
        assert_eq!(s.get("queue.depth_max"), Some(2.0));
    }

    #[test]
    fn queue_sample_display() {
        let s = QueueDepthSample {
            at: Cycle::new(9),
            mc: 1,
            depth: 4,
        };
        assert_eq!(s.to_string(), "9 mc1 depth 4");
    }
}
