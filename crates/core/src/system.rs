//! The assembled machine: cores, shared L2, banked L2 MSHRs, banked memory
//! controllers, and the 3D (or off-chip) DRAM behind them.

use std::collections::VecDeque;

use stacksim_cache::{
    AccessOutcome, BankedCache, NextLinePrefetcher, Prefetcher, StridePrefetcher,
};
use stacksim_cpu::{Core, CoreRequest};
use stacksim_memctrl::{Completion, McConfig, MemRequest, MemoryController, RequestKind};
use stacksim_mshr::{
    CamMshr, DirectMappedMshr, DynamicTuner, HierarchicalMshr, MissHandler, MissKind, MissTarget,
    MshrKind, OccupancySample, ProbeScheme, VbfMshr,
};
use stacksim_stats::{Histogram, MetricsSink, StatRecord};
use stacksim_types::{
    AddressMapper, BusConfig, ClockDomain, ConfigError, CoreId, Cycle, Cycles, LineAddr,
};
use stacksim_vm::PageAllocator;
use stacksim_workload::{Mix, SyntheticWorkload, TraceGenerator};

use crate::config::SystemConfig;
use crate::trace::{QueueDepthSample, Trace, TraceConfig};

/// Token bit marking a memory request as an L2-generated prefetch (no core
/// and no MSHR entry waits on it; the fill populates the L2).
const L2_ORIGIN: u64 = 1;

/// In-flight L2 prefetches each memory controller can track. L2 prefetches
/// live in a small per-controller buffer rather than the L2 MSHRs (which
/// track *misses*), so prefetch traffic loads the memory system without
/// consuming miss-handling capacity — and banking the controllers also
/// banks this buffer, one of the parallelism benefits of the §4.1
/// organization.
const L2_PF_INFLIGHT_PER_MC: usize = 16;

/// Per-controller send queues, drained highest-priority-first into the MRQ:
/// demand fetches ahead of writebacks ahead of prefetches, the standard
/// memory-side arbitration (a demand miss stalls a core; a prefetch does
/// not).
#[derive(Debug, Default)]
struct SendQueues {
    demand: VecDeque<MemRequest>,
    writeback: VecDeque<MemRequest>,
    prefetch: VecDeque<MemRequest>,
}

impl SendQueues {
    fn push(&mut self, req: MemRequest) {
        if req.kind == RequestKind::Writeback {
            self.writeback.push_back(req);
        } else if req.token & L2_ORIGIN != 0 {
            self.prefetch.push_back(req);
        } else {
            self.demand.push_back(req);
        }
    }

    fn pop(&mut self) -> Option<MemRequest> {
        self.demand
            .pop_front()
            .or_else(|| self.writeback.pop_front())
            .or_else(|| self.prefetch.pop_front())
    }

    fn is_empty(&self) -> bool {
        self.demand.is_empty() && self.writeback.is_empty() && self.prefetch.is_empty()
    }
}

/// Address-space stride between the programs of a mix (first-come-first-
/// serve physical allocation gives each program a disjoint region).
const PER_CORE_REGION: u64 = 2 << 30;

#[derive(Debug)]
enum EventKind {
    /// A core request (demand, prefetch or DL1 writeback) reaches the L2.
    /// `retried` marks re-attempts after an MSHR-full stall, which must not
    /// re-count statistics or re-train prefetchers.
    L2Access { req: CoreRequest, retried: bool },
    /// A memory request, past its MSHR probe latency and wire delay, joins
    /// its controller's send queue.
    McSend(MemRequest),
    /// Fill data reaches the cores waiting on `line`.
    CoreFill { line: LineAddr, cores: Vec<CoreId> },
}

/// The MSHR allocation parameters a core request misses with. Shared by
/// the L2 miss path and the fast-forward retry replay, which must charge
/// the exact same allocation attempt.
fn miss_params(req: &CoreRequest) -> (MissTarget, MissKind) {
    let token = u64::from(req.is_write) << 1; // bit 0 = L2 origin (clear here)
    let target = MissTarget {
        core: req.core,
        token,
        is_prefetch: req.is_prefetch,
    };
    let kind = if req.is_write {
        MissKind::Write
    } else {
        MissKind::Read
    };
    (target, kind)
}

/// Initial calendar-queue span in cycles. Covers every ordinary scheduling
/// delay (L2 latency, wire paths, probe serialization); outliers trigger a
/// doubling growth.
const INITIAL_WHEEL_SLOTS: usize = 256;

/// Ceiling on pooled `CoreFill` core lists kept for reuse.
const CORE_LIST_POOL_CAP: usize = 64;

/// A calendar (bucket) event queue indexed by cycle: a power-of-two ring of
/// per-cycle slots, each holding its events in insertion order.
///
/// This replaces a `BinaryHeap<Reverse<(at, seq)>>`: since the simulator
/// only ever pops events due at the *current* cycle, ordering within a
/// cycle by insertion is exactly the heap's `(at, seq)` order, with O(1)
/// push/pop and no per-event comparisons or sequence numbers. Events
/// scheduled mid-drain for the current cycle land in the live slot and are
/// handled the same cycle (see [`take_due`](EventWheel::take_due)); an
/// event left timestamped in the past — the heap allowed this for
/// post-drain zero-delay sends — is carried at the *front* of the next
/// cycle's slot, matching the heap's smaller-`at`-first order.
#[derive(Debug)]
struct EventWheel {
    slots: Vec<Vec<EventKind>>,
    /// Slot index holding events due at `base`.
    cursor: usize,
    /// Absolute cycle of `slots[cursor]`.
    base: u64,
    len: usize,
}

impl EventWheel {
    fn new() -> EventWheel {
        EventWheel {
            slots: (0..INITIAL_WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            base: 0,
            len: 0,
        }
    }

    /// Events pending across all slots (diagnostic; exercised by the
    /// timeline probe test).
    #[cfg_attr(not(test), allow(dead_code))]
    fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, at: Cycle, kind: EventKind) {
        // `saturating_sub` folds an already-due timestamp into the current
        // slot rather than underflowing.
        let offset = at.raw().saturating_sub(self.base) as usize;
        if offset >= self.slots.len() {
            self.grow(offset + 1);
        }
        let mask = self.slots.len() - 1;
        self.slots[(self.cursor + offset) & mask].push(kind);
        self.len += 1;
    }

    /// Takes the batch of events due at the current cycle (possibly empty).
    /// Handlers may push same-cycle events while a batch is out; callers
    /// re-take until empty so those run this cycle too, in schedule order.
    fn take_due(&mut self) -> Vec<EventKind> {
        let batch = std::mem::take(&mut self.slots[self.cursor]);
        self.len -= batch.len();
        batch
    }

    /// Returns a drained batch's storage to the current slot so its
    /// capacity is reused next cycle.
    fn recycle(&mut self, storage: Vec<EventKind>) {
        debug_assert!(storage.is_empty());
        let slot = &mut self.slots[self.cursor];
        if slot.is_empty() && slot.capacity() < storage.capacity() {
            *slot = storage;
        }
    }

    /// Events due at the current cycle (including leftovers carried with
    /// past timestamps), in the order [`take_due`](EventWheel::take_due)
    /// will hand them out.
    fn due_now(&self) -> &[EventKind] {
        &self.slots[self.cursor]
    }

    /// The cycle of the earliest pending event, if any. Leftover events
    /// carried forward with past timestamps live in the current slot, so
    /// the scan starts there and `base` is a lower bound on the answer.
    fn next_event_at(&self) -> Option<Cycle> {
        if !self.slots[self.cursor].is_empty() {
            return Some(Cycle::new(self.base));
        }
        self.next_event_after_now()
    }

    /// The cycle of the earliest event strictly after the current slot.
    fn next_event_after_now(&self) -> Option<Cycle> {
        if self.len == self.slots[self.cursor].len() {
            return None; // every pending event (possibly none) is due now
        }
        let mask = self.slots.len() - 1;
        (1..self.slots.len())
            .find(|&off| !self.slots[(self.cursor + off) & mask].is_empty())
            .map(|off| Cycle::new(self.base + off as u64))
    }

    /// Jumps the wheel `n` cycles forward in one step. The caller must
    /// have proved (via [`next_event_at`](EventWheel::next_event_at)) that
    /// no event lies in the skipped span, so the current and every
    /// intermediate slot are empty and no leftover splicing is needed.
    fn advance_by(&mut self, n: u64) {
        debug_assert!(
            self.next_event_at()
                .is_none_or(|t| t.raw() >= self.base + n),
            "fast-forward across a pending event"
        );
        let slots = self.slots.len() as u64;
        self.cursor = (self.cursor + (n % slots) as usize) & (self.slots.len() - 1);
        self.base += n;
    }

    /// Moves to the next cycle. Events still in the outgoing slot (pushed
    /// after the drain with a zero delay) keep priority over the incoming
    /// cycle's events, as their smaller timestamp did in the heap.
    fn advance(&mut self) {
        let mask = self.slots.len() - 1;
        let leftovers = std::mem::take(&mut self.slots[self.cursor]);
        self.cursor = (self.cursor + 1) & mask;
        self.base += 1;
        if !leftovers.is_empty() {
            self.slots[self.cursor].splice(0..0, leftovers);
        }
    }

    /// Doubles the ring until it spans at least `needed` cycles, realigning
    /// the current cycle to slot 0.
    fn grow(&mut self, needed: usize) {
        let old_n = self.slots.len();
        let mut new_n = old_n * 2;
        while new_n < needed {
            new_n *= 2;
        }
        let old_mask = old_n - 1;
        // simlint::allow(H001, reason = "amortized ring doubling: runs O(log max-delay) times per simulation, never in steady state")
        let mut new_slots: Vec<Vec<EventKind>> = (0..new_n).map(|_| Vec::new()).collect();
        for i in 0..old_n {
            let offset = (i + old_n - self.cursor) & old_mask;
            new_slots[offset] = std::mem::take(&mut self.slots[i]);
        }
        self.slots = new_slots;
        self.cursor = 0;
    }
}

/// The whole simulated machine.
///
/// Construct one per run via [`System::for_mix`] (or
/// [`System::with_generators`] for custom programs), then drive it with
/// [`run_cycles`](System::run_cycles).
pub struct System {
    cfg: SystemConfig,
    now: Cycle,
    cores: Vec<Core>,
    l2: BankedCache,
    l2_nextline: Option<NextLinePrefetcher>,
    l2_stride: Option<StridePrefetcher>,
    mshr_banks: Vec<Box<dyn MissHandler>>,
    tuner: Option<DynamicTuner>,
    mcs: Vec<MemoryController>,
    send_queues: Vec<SendQueues>,
    pf_cap_per_mc: usize,
    pf_inflight: Vec<std::collections::HashSet<LineAddr>>,
    mapper: AddressMapper,
    events: EventWheel,
    req_buf: Vec<CoreRequest>,
    completion_buf: Vec<Completion>,
    core_list_pool: Vec<Vec<CoreId>>,
    // Hot-loop copies of configuration fields read every cycle (the config
    // is immutable after construction).
    l2_latency: Cycles,
    path_latency: Cycles,
    // Request-path interconnect cost per (core, MC), row-major; empty when
    // the scenario models no hops (every shipped quad-core machine).
    hop_cost: Vec<Cycles>,
    mc_clock_divisor: u64,
    // Quiescence fast-forward (on unless a run disables it for
    // verification): when a tick provably has nothing to do, `run_cycles`
    // jumps straight to the next possible activity.
    fast_forward: bool,
    skipped_cycles: u64,
    ticked_cycles: u64,
    // Scratch buffer for prefetch candidates, reused across demand
    // accesses instead of allocating per call.
    pf_candidates: Vec<LineAddr>,
    // Statistics.
    probe_hist: Histogram,
    /// Fills delivered to cores so far. The MC-only tick slice watches this
    /// to detect the moment core state changed under it (a `CoreFill` event
    /// or a retried access hitting a line another fill brought in) and hand
    /// control back to the full loop.
    fill_deliveries: u64,
    mshr_full_retries: u64,
    dropped_prefetches: u64,
    l2_prefetches_issued: u64,
    spurious_completions: u64,
    // Event tracing. `trace` is `None` when tracing is disabled, so the hot
    // loop pays one discriminant check per cycle and nothing else.
    trace_cfg: TraceConfig,
    trace: Option<Trace>,
}

impl System {
    /// Builds the machine for one Table 2(b) mix, placing each program in
    /// its own 2 GB region and seeding its generator deterministically from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent.
    #[must_use = "the built System or the reason the configuration is invalid"]
    pub fn for_mix(cfg: &SystemConfig, mix: &Mix, seed: u64) -> Result<System, ConfigError> {
        if cfg.vm.is_none() && cfg.cores as u64 * PER_CORE_REGION > cfg.memory.total_bytes {
            return Err(ConfigError::new(format!(
                "{} cores without virtual memory need disjoint 2 GB regions beyond the {} B of physical memory",
                cfg.cores, cfg.memory.total_bytes
            )));
        }
        let benchmarks = mix.benchmarks();
        let generators: Vec<Box<dyn TraceGenerator>> = (0..cfg.cores)
            .map(|i| {
                // A four-program mix populates more than four cores by
                // cycling: core i runs program i mod 4 with its own seed.
                let spec = benchmarks[i % benchmarks.len()];
                // With virtual memory every program starts at virtual 0 and
                // the FCFS allocator interleaves their physical placement;
                // without it, disjoint physical regions stand in.
                let base = if cfg.vm.is_some() {
                    0
                } else {
                    i as u64 * PER_CORE_REGION
                };
                Box::new(SyntheticWorkload::new(
                    spec,
                    seed.wrapping_mul(31).wrapping_add(i as u64),
                    base,
                )) as Box<dyn TraceGenerator>
            })
            .collect();
        System::with_generators(cfg, generators)
    }

    /// Builds the machine around caller-provided program generators (one
    /// per core).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is inconsistent or the
    /// generator count does not match the core count.
    #[must_use = "the built System or the reason the configuration is invalid"]
    pub fn with_generators(
        cfg: &SystemConfig,
        generators: Vec<Box<dyn TraceGenerator>>,
    ) -> Result<System, ConfigError> {
        cfg.validate()?;
        if generators.len() != cfg.cores {
            return Err(ConfigError::new(format!(
                "{} generators for {} cores",
                generators.len(),
                cfg.cores
            )));
        }
        let geometry = cfg.geometry()?;
        let mapper = AddressMapper::new(geometry);
        let allocator = cfg.vm.map(|_| {
            std::rc::Rc::new(std::cell::RefCell::new(PageAllocator::new(
                cfg.memory.total_bytes,
            )))
        });
        let cores = generators
            .into_iter()
            .enumerate()
            .map(|(i, g)| {
                let mut core = Core::new(CoreId::new(i as u16), cfg.core_for(i).clone(), g);
                if let (Some(tlb), Some(alloc)) = (cfg.vm, &allocator) {
                    core.attach_vm(tlb, alloc.clone(), i as u16);
                }
                core
            })
            .collect();
        let l2 = BankedCache::new(cfg.l2, cfg.l2_banks as usize, cfg.l2_interleave);
        let timing = cfg.memory.timing.to_cycles(cfg.core_hz);
        let refresh_interval = cfg
            .memory
            .refresh
            .row_interval(geometry.rows_per_bank(), cfg.core_hz);
        let mcs: Vec<MemoryController> = (0..cfg.memory.mcs)
            .map(|i| {
                MemoryController::try_new(
                    stacksim_types::McId::new(i),
                    McConfig {
                        queue_capacity: cfg.mrq_per_mc(),
                        ranks: geometry.ranks_per_mc() as usize,
                        banks_per_rank: cfg.memory.banks_per_rank as usize,
                        rows_per_bank: geometry.rows_per_bank(),
                        row_buffer_entries: cfg.memory.row_buffer_entries,
                        timing,
                        refresh_interval,
                        smart_refresh: cfg.memory.smart_refresh,
                        page_policy: cfg.memory.page_policy,
                        bus: BusConfig {
                            width_bytes: cfg.memory.bus_width_bytes,
                            clock: ClockDomain::new(cfg.memory.bus_clock_divisor),
                        },
                        critical_word_first: cfg.memory.critical_word_first,
                        policy: cfg.memory.policy,
                    },
                )
            })
            .collect::<Result<_, _>>()?;
        let per_bank = cfg.mshr_entries_per_bank();
        let mshr_banks: Vec<Box<dyn MissHandler>> = (0..cfg.memory.mcs)
            .map(|_| make_mshr(cfg.mshr.kind, per_bank))
            .collect();
        let tuner = cfg
            .mshr
            .dynamic
            .clone()
            .map(|t| DynamicTuner::new(per_bank, t));
        let send_queues = (0..cfg.memory.mcs).map(|_| SendQueues::default()).collect();
        // Per-(core, MC) request-path hop costs; empty (the common case)
        // means the zero-hop adjacency model and costs nothing per request.
        let hop_cost: Vec<Cycles> = if cfg.interconnect.hop_latency == Cycles::ZERO {
            Vec::new()
        } else {
            (0..cfg.cores)
                .flat_map(|c| {
                    (0..cfg.memory.mcs)
                        .map(move |m| cfg.interconnect.cost(c, m, cfg.cores, cfg.memory.mcs))
                })
                .collect()
        };
        let pf_cap_per_mc = L2_PF_INFLIGHT_PER_MC;
        let pf_inflight = (0..cfg.memory.mcs)
            .map(|_| std::collections::HashSet::new())
            .collect();
        Ok(System {
            now: Cycle::ZERO,
            cores,
            l2,
            l2_nextline: cfg.l2_prefetch.then(|| NextLinePrefetcher::new(1)),
            l2_stride: cfg.l2_prefetch.then(|| StridePrefetcher::new(64, 1)),
            mshr_banks,
            tuner,
            mcs,
            send_queues,
            pf_cap_per_mc,
            pf_inflight,
            mapper,
            events: EventWheel::new(),
            req_buf: Vec::new(),
            completion_buf: Vec::new(),
            core_list_pool: Vec::new(),
            l2_latency: cfg.l2_latency,
            path_latency: cfg.memory.path_latency,
            hop_cost,
            mc_clock_divisor: cfg.memory.mc_clock_divisor,
            cfg: cfg.clone(),
            fast_forward: true,
            skipped_cycles: 0,
            ticked_cycles: 0,
            pf_candidates: Vec::new(),
            probe_hist: Histogram::new(256),
            fill_deliveries: 0,
            mshr_full_retries: 0,
            dropped_prefetches: 0,
            l2_prefetches_issued: 0,
            spurious_completions: 0,
            trace_cfg: TraceConfig::off(),
            trace: None,
        })
    }

    /// Turns on event tracing for the rest of the run, recording the streams
    /// `cfg` selects. Call before [`run_cycles`](System::run_cycles); collect
    /// the streams afterwards with [`take_trace`](System::take_trace).
    pub fn enable_tracing(&mut self, cfg: TraceConfig) {
        self.trace_cfg = cfg;
        if !cfg.any() {
            for mc in &mut self.mcs {
                mc.set_cmd_tracing(false);
            }
            self.trace = None;
            return;
        }
        for mc in &mut self.mcs {
            mc.set_cmd_tracing(cfg.dram_cmds);
        }
        self.trace = Some(Trace::default());
    }

    /// Removes and returns the streams recorded since tracing was enabled
    /// (`None` if tracing is off). Tracing stays enabled; the next call
    /// returns only newer events.
    pub fn take_trace(&mut self) -> Option<Trace> {
        let mut trace = self.trace.take()?;
        if self.trace_cfg.dram_cmds {
            trace.dram_cmds = self.mcs.iter_mut().map(|mc| mc.take_cmd_trace()).collect();
        }
        self.trace = Some(Trace::default());
        Some(trace)
    }

    /// Samples the periodic trace streams; called from the tick loop only
    /// while tracing is enabled.
    fn trace_sample(&mut self, now: Cycle) {
        let cfg = self.trace_cfg;
        if !cfg.samples() || !now.raw().is_multiple_of(cfg.sample_interval.max(1)) {
            return;
        }
        let trace = self.trace.as_mut().expect("checked by caller"); // simlint::allow(P002, reason = "trace_sample is only called when tracing is on, so the trace sink exists")
        if cfg.mshr_occupancy {
            for (i, bank) in self.mshr_banks.iter().enumerate() {
                trace
                    .mshr_occupancy
                    .push(OccupancySample::of(now, i, bank.as_ref()));
            }
        }
        if cfg.mc_queue_depth {
            for (i, mc) in self.mcs.iter().enumerate() {
                trace.mc_queue_depth.push(QueueDepthSample {
                    at: now,
                    mc: i,
                    depth: mc.queue_len(),
                });
            }
        }
    }

    /// Current simulated time.
    pub const fn now(&self) -> Cycle {
        self.now
    }

    /// The configuration in force.
    pub const fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The simulated cores.
    pub fn cores(&self) -> &[Core] {
        &self.cores
    }

    /// Total µops committed across all cores.
    pub fn total_committed(&self) -> u64 {
        self.cores.iter().map(Core::committed).sum()
    }

    /// µops committed by one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_committed(&self, core: usize) -> u64 {
        self.cores[core].committed()
    }

    /// Mean L2 MSHR probes per access (the paper's §5.2 statistic,
    /// including the mandatory first probe). `None` before any access.
    pub fn probes_per_access(&self) -> Option<f64> {
        self.probe_hist.mean()
    }

    /// Turns quiescence fast-forwarding off (or back on). With it off,
    /// every cycle runs the full tick loop. Results are bit-identical
    /// either way — the flag exists so tests and debugging sessions can
    /// verify exactly that.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Cycles advanced in bulk by quiescence fast-forwarding so far.
    pub const fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Cycles executed by the full per-cycle loop so far.
    pub const fn ticked_cycles(&self) -> u64 {
        self.ticked_cycles
    }

    /// Advances the machine by `n` cycles.
    ///
    /// Cycle-accurate in effect, activity-driven in cost. Whenever every
    /// core is provably inert until a known cycle, the loop drops into an
    /// MC-only slice that runs just the
    /// memory side of the machine until a core can wake — and inside that
    /// slice, whenever the memory side is *also* quiescent, it computes
    /// the earliest cycle anything can happen and jumps there in one
    /// step, bulk-replaying the per-cycle statistics the skipped ticks
    /// would have recorded.
    pub fn run_cycles(&mut self, n: u64) {
        let end = self.now + Cycles::new(n);
        while self.now < end {
            if self.fast_forward {
                if let Some(wake) = self.cores_inert_bound() {
                    // No core can commit or issue before `wake`: run the
                    // memory side alone until then (or until a fill
                    // changes some core's prospects).
                    let slice_end = wake.map_or(end, |w| w.min(end));
                    self.mc_slice(slice_end);
                    continue;
                }
            }
            self.tick();
        }
    }

    /// When every core is provably slice-compatible this cycle, returns
    /// the earliest cycle at which any core needs the full loop again —
    /// commit a due `ReadyAt` head, outlast a fetch stall — with inner
    /// `None` meaning every core is blocked until a fill arrives. Returns
    /// outer `None` when some core is active right now.
    ///
    /// Slice-compatible covers two cases: a core with no activity before
    /// `wake`, and a core whose only possible activity is committing while
    /// its front-end refills after a mispredict — commits are a pure
    /// function of the core's own window, replayed bit-identically by
    /// [`Core::note_skipped`], so such a core stays out of the loop until
    /// its fetch stall expires.
    fn cores_inert_bound(&self) -> Option<Option<Cycle>> {
        let now = self.now;
        let mut wake: Option<Cycle> = None;
        let merge = |w: &mut Option<Cycle>, t: Cycle| {
            *w = Some(w.map_or(t, |w: Cycle| w.min(t)));
        };
        for core in &self.cores {
            match core.next_activity(now) {
                Some(t) if t <= now => {
                    let fetch_live_at = core.fetch_stall_until();
                    if fetch_live_at > now {
                        merge(&mut wake, fetch_live_at);
                    } else {
                        return None;
                    }
                }
                Some(t) => merge(&mut wake, t),
                None => {}
            }
        }
        Some(wake)
    }

    /// Runs the memory side of the machine alone until `end`, a proven
    /// bound on the earliest core wake-up. Each cycle either jumps (the
    /// memory side is quiescent too — [`mc_skip_target`]) or runs an
    /// MC-only tick: the full tick minus the core stage, whose effect on
    /// slice-compatible cores is one stall-counter increment each plus, for
    /// a fetch-stalled core, any commits its window allows — both replayed
    /// by [`Core::note_skipped`]. Both forms count as *skipped* cycles —
    /// the full per-cycle loop never ran. The slice ends early when a fill
    /// reaches any core, since that can change the core-side proof.
    ///
    /// [`mc_skip_target`]: System::mc_skip_target
    fn mc_slice(&mut self, end: Cycle) {
        let fills = self.fill_deliveries;
        while self.now < end && self.fill_deliveries == fills {
            if let Some(target) = self.mc_skip_target(end) {
                self.fast_forward_to(target);
            } else {
                let now = self.now;
                self.skipped_cycles += 1;
                for core in &mut self.cores {
                    core.note_skipped(now, 1);
                }
                self.tick_memory(now);
                self.now = now + Cycles::new(1);
                self.events.advance();
            }
        }
    }

    /// When the *memory side* of the machine is provably quiescent at
    /// `self.now`, returns the earliest future cycle (clamped to `end`) at
    /// which it can do anything; `None` when some component is active this
    /// cycle. Every bound mirrors one memory stage of
    /// [`tick`](System::tick): the event wheel, MC completions, MC issue
    /// at the controller clock, send-queue drains, trace sampling, and
    /// dynamic MSHR tuner boundaries. The caller has already bounded
    /// `end` by core activity, so a returned target skips whole-machine
    /// dead time.
    fn mc_skip_target(&self, end: Cycle) -> Option<Cycle> {
        let now = self.now;
        let mut target = end;
        // Checks are ordered cheapest-veto-first; since any veto returns
        // None before `fast_forward_to` runs, the order cannot change
        // what a skip does, only what a refused skip costs.
        //
        // Events due this very cycle veto the skip — unless every one of
        // them is an MSHR-full retry that would provably fail again, which
        // `fast_forward_to` parks and replays in bulk instead. Split in
        // two phases: a cheap tag scan here (anything that is not a
        // retried L2 access vetoes immediately), with the per-event
        // parkability proof deferred until every other check has already
        // allowed the skip.
        let due = self.events.due_now();
        if due
            .iter()
            .any(|e| !matches!(e, EventKind::L2Access { retried: true, .. }))
        {
            return None;
        }
        let divisor = self.mc_clock_divisor;
        for (i, mc) in self.mcs.iter().enumerate() {
            if let Some(t) = mc.next_completion_at() {
                if t <= now {
                    return None;
                }
                target = target.min(t);
            }
            if !self.send_queues[i].is_empty() && mc.can_accept() {
                return None;
            }
            if let Some(ready) = mc.next_issue_ready() {
                // The controller acts on its own clock: round the
                // bank-ready bound up to the next controller edge.
                let edge = ready.max(now).raw().div_ceil(divisor) * divisor;
                if edge <= now.raw() {
                    return None;
                }
                target = target.min(Cycle::new(edge));
            }
        }
        if self.trace.is_some() && self.trace_cfg.samples() {
            let interval = self.trace_cfg.sample_interval.max(1);
            if now.raw().is_multiple_of(interval) {
                return None;
            }
            target = target.min(Cycle::new((now.raw() / interval + 1) * interval));
        }
        if let Some(tuner) = &self.tuner {
            let boundary = tuner.next_boundary();
            if boundary <= now {
                return None;
            }
            target = target.min(boundary);
        }
        if target <= now {
            return None;
        }
        // Phase two: prove each due retry would fail again. This is the
        // expensive part (an L2 probe plus an MSHR lookup per event), so
        // it runs only once everything else already permits the skip.
        if !due.iter().all(|e| self.is_parkable_retry(e)) {
            return None;
        }
        if let Some(t) = self.events.next_event_after_now() {
            target = target.min(t);
        }
        (target > now).then_some(target)
    }

    /// Whether an event due this cycle is an MSHR-full retry that would
    /// provably fail again: its line still absent from the L2 and its
    /// bank still full with no entry to merge into. While the rest of the
    /// machine is quiescent nothing can change that outcome — failing
    /// `allocate` calls are pure across every MSHR organization and their
    /// probe counts depend only on the untouched bank state — so the skip
    /// can park the event and replay its per-cycle statistics in bulk.
    fn is_parkable_retry(&self, event: &EventKind) -> bool {
        let EventKind::L2Access { req, retried: true } = event else {
            return false;
        };
        let bank = &self.mshr_banks[self.mapper.decode(req.line.base()).mc.index()];
        if !bank.is_full() {
            return false;
        }
        !self.l2.contains(req.line) && bank.entry(req.line).is_none()
    }

    /// Jumps `self.now` to `target`, replaying in bulk the only effects
    /// the skipped ticks would have had: per-core stall counters, the
    /// per-controller-clock queue-depth samples, and the failed allocation
    /// attempts of any parked MSHR-full retries.
    fn fast_forward_to(&mut self, target: Cycle) {
        let from = self.now;
        let n = target.raw() - from.raw();
        debug_assert!(n > 0, "skip target must be in the future");
        for core in &mut self.cores {
            core.note_skipped(from, n);
        }
        let divisor = self.mc_clock_divisor;
        let edges = target.raw().div_ceil(divisor) - from.raw().div_ceil(divisor);
        if edges > 0 {
            for mc in &mut self.mcs {
                mc.note_skipped_ticks(edges);
            }
        }
        // Parked MSHR-full retries would have fired and failed identically
        // on each of the `n` skipped cycles: charge the failed attempts in
        // bulk, then leave the events due again at `target`, behind any
        // earlier-scheduled arrivals there, exactly as per-cycle
        // rescheduling would have ordered them.
        let parked = self.events.take_due();
        for event in &parked {
            let EventKind::L2Access { req, .. } = event else {
                unreachable!("mc_skip_target only parks L2 retry events"); // simlint::allow(P003, reason = "mc_skip_target parks only L2 retry events, so no other kind can be due here")
            };
            let (miss_target, kind) = miss_params(req);
            let bank = self.mapper.decode(req.line.base()).mc.index();
            match self.mshr_banks[bank].allocate(req.line, miss_target, kind, from) {
                Err(e) => {
                    self.probe_hist.record_n(e.probes() as u64, n);
                    self.mshr_full_retries += n;
                }
                Ok(_) => unreachable!("parked retries were proven unable to allocate"), // simlint::allow(P003, reason = "quiescence proves no MSHR entry freed, so a parked retry cannot allocate")
            }
        }
        self.events.advance_by(n);
        for event in parked {
            self.events.push(target, event);
        }
        self.skipped_cycles += n;
        self.now = target;
    }

    fn schedule(&mut self, at: Cycle, kind: EventKind) {
        self.events.push(at, kind);
    }

    fn tick(&mut self) {
        let now = self.now;
        self.ticked_cycles += 1;

        // 1. Cores issue/commit; their requests enter the L2 pipeline.
        let l2_arrival = now + self.l2_latency;
        let mut buf = std::mem::take(&mut self.req_buf);
        for i in 0..self.cores.len() {
            // A core that provably cannot commit or issue this cycle
            // charges its one stall counter directly (what the full
            // commit/issue walk would do, bit-identically) instead of
            // walking it. Gated on fast-forward so `tick_by_tick` runs
            // remain the naive reference this shortcut is checked against.
            if self.fast_forward && self.cores[i].next_activity(now).is_none_or(|t| t > now) {
                self.cores[i].note_skipped(now, 1);
                continue;
            }
            buf.clear();
            self.cores[i].cycle(now, &mut buf);
            for req in buf.drain(..) {
                self.schedule(
                    l2_arrival,
                    EventKind::L2Access {
                        req,
                        retried: false,
                    },
                );
            }
        }
        self.req_buf = buf;

        self.tick_memory(now);

        self.now = now + Cycles::new(1);
        self.events.advance();
    }

    /// Stages 2–6 of [`tick`](System::tick): everything except the cores —
    /// event drain, controller issue/completion, send-queue transfer,
    /// trace sampling, MSHR tuning. Shared by the full tick and the
    /// MC-only slice, which replays the core stage's stall counters
    /// instead of running it.
    fn tick_memory(&mut self, now: Cycle) {
        // 2. Handle everything due this cycle. Handlers may schedule more
        // same-cycle events (e.g. a zero-delay MC send), which land back in
        // the live slot — keep draining until it stays empty.
        loop {
            let mut batch = self.events.take_due();
            if batch.is_empty() {
                break;
            }
            for kind in batch.drain(..) {
                match kind {
                    EventKind::L2Access { req, retried } => self.handle_l2_access(req, retried),
                    EventKind::McSend(req) => {
                        self.send_queues[req.location.mc.index()].push(req);
                    }
                    EventKind::CoreFill { line, mut cores } => {
                        for &c in &cores {
                            self.deliver_to_core(c, line);
                        }
                        cores.clear();
                        if self.core_list_pool.len() < CORE_LIST_POOL_CAP {
                            self.core_list_pool.push(cores);
                        }
                    }
                }
            }
            self.events.recycle(batch);
        }

        // 3. Memory controllers issue (at their own clock) and complete.
        if now.raw().is_multiple_of(self.mc_clock_divisor) {
            for mc in &mut self.mcs {
                mc.tick(now);
            }
        }
        let mut completions = std::mem::take(&mut self.completion_buf);
        for i in 0..self.mcs.len() {
            completions.clear();
            self.mcs[i].drain_completions_into(now, &mut completions);
            for c in completions.drain(..) {
                self.handle_completion(c);
            }
        }
        self.completion_buf = completions;

        // 4. Move queued requests into controllers with free MRQ slots.
        for i in 0..self.mcs.len() {
            if self.send_queues[i].is_empty() {
                continue;
            }
            while self.mcs[i].can_accept() {
                let Some(req) = self.send_queues[i].pop() else {
                    break;
                };
                self.mcs[i]
                    .enqueue(req)
                    .expect("routing checked at creation"); // simlint::allow(P002, reason = "the mapper routed this request to MC i at creation, so its queue accepts it")
            }
        }

        // 5. Periodic trace sampling (one discriminant check when off).
        if self.trace.is_some() {
            self.trace_sample(now);
        }

        // 6. Dynamic MSHR capacity tuning (§5.1).
        if let Some(tuner) = &mut self.tuner {
            let committed: u64 = self.cores.iter().map(Core::committed).sum();
            if let Some(limit) = tuner.tick(now, committed) {
                for bank in &mut self.mshr_banks {
                    bank.set_capacity_limit(limit);
                }
            }
        }
    }

    fn handle_l2_access(&mut self, req: CoreRequest, retried: bool) {
        if req.is_writeback {
            self.handle_l1_writeback(req);
            return;
        }
        let line = req.line;
        let hit = if retried {
            // Quiet probe: the first attempt already counted the access and
            // trained the prefetchers. The line may have arrived meanwhile
            // through another requester's fill.
            if self.l2.contains(line) {
                if req.is_write {
                    self.l2.mark_dirty(line);
                }
                true
            } else {
                false
            }
        } else {
            self.l2.access(line, req.is_write && !req.is_prefetch) == AccessOutcome::Hit
        };
        if hit {
            // Demand and L1-prefetch requests both have an L1 MSHR entry
            // waiting for the line.
            self.deliver_to_core(req.core, line);
        } else {
            let (target, kind) = miss_params(&req);
            if !self.allocate_l2_miss(line, target, kind) {
                // MSHR bank full. Every core-originated request — demand or
                // L1 prefetch — has an L1 MSHR entry waiting on this line,
                // so it must retry rather than drop (a dropped prefetch
                // would leave its core's entry allocated forever).
                self.mshr_full_retries += 1;
                let at = self.now + Cycles::new(1);
                self.schedule(at, EventKind::L2Access { req, retried: true });
            }
        }
        // The L2 prefetchers observe the demand stream only.
        if !retried && !req.is_prefetch {
            self.train_l2_prefetchers(req.pc, line);
        }
    }

    /// Interconnect cost for a request from `core` to MC `mc` (zero on the
    /// shipped quad-core machines, which model core/MC adjacency).
    #[inline]
    fn hop_to(&self, core: CoreId, mc: usize) -> Cycles {
        if self.hop_cost.is_empty() {
            Cycles::ZERO
        } else {
            // simlint::allow(P004, reason = "row-major (core, mc) table sized cores*mcs at construction; both factors are in range by construction")
            self.hop_cost[core.index() * self.mcs.len() + mc]
        }
    }

    /// Tries to record an L2 miss. Returns `false` if the bank was full and
    /// the miss was not recorded (prefetches are silently dropped by the
    /// caller).
    fn allocate_l2_miss(&mut self, line: LineAddr, target: MissTarget, kind: MissKind) -> bool {
        let location = self.mapper.decode(line.base());
        let bank = location.mc.index();
        match self.mshr_banks[bank].allocate(line, target, kind, self.now) {
            Ok(outcome) => {
                self.probe_hist.record(outcome.probes() as u64);
                // If an L2 prefetch for this exact line is already in
                // flight, the data is on its way: track the miss but send
                // no duplicate memory request.
                if outcome.is_primary() && !self.pf_inflight[bank].contains(&line) {
                    let req = MemRequest {
                        line,
                        location,
                        kind: RequestKind::Read,
                        core: target.core,
                        arrival: self.now,
                        token: target.token,
                    };
                    // Charge the extra (beyond-mandatory) probe latency plus
                    // the one-way wire path to memory and any on-die
                    // core→MC hops.
                    let delay = Cycles::new(outcome.probes().saturating_sub(1) as u64)
                        + self.path_latency
                        + self.hop_to(target.core, bank);
                    self.schedule(self.now + delay, EventKind::McSend(req));
                }
                true
            }
            Err(e) => {
                self.probe_hist.record(e.probes() as u64);
                if target.token & L2_ORIGIN != 0 {
                    // Only L2-internal prefetches may be dropped outright.
                    self.dropped_prefetches += 1;
                }
                false
            }
        }
    }

    fn train_l2_prefetchers(&mut self, pc: u64, line: LineAddr) {
        // Reuse one scratch buffer across demand accesses; this runs on
        // every (non-retried) demand reaching the L2.
        let mut candidates = std::mem::take(&mut self.pf_candidates);
        candidates.clear();
        if let Some(pf) = &mut self.l2_nextline {
            pf.observe_into(pc, line, &mut candidates);
        }
        if let Some(pf) = &mut self.l2_stride {
            pf.observe_into(pc, line, &mut candidates);
        }
        for candidate in candidates.drain(..) {
            if self.l2.contains(candidate) {
                continue;
            }
            let location = self.mapper.decode(candidate.base());
            let bank = location.mc.index();
            if self.pf_inflight[bank].contains(&candidate)
                || self.mshr_banks[bank].lookup(candidate).found
            {
                continue; // the line is already on its way
            }
            if self.pf_inflight[bank].len() >= self.pf_cap_per_mc {
                self.dropped_prefetches += 1;
                continue;
            }
            self.pf_inflight[bank].insert(candidate);
            let req = MemRequest {
                line: candidate,
                location,
                kind: RequestKind::Read,
                core: CoreId::new(0),
                arrival: self.now,
                token: L2_ORIGIN,
            };
            let at = self.now + self.path_latency;
            self.schedule(at, EventKind::McSend(req));
            self.l2_prefetches_issued += 1;
        }
        self.pf_candidates = candidates;
    }

    fn handle_l1_writeback(&mut self, req: CoreRequest) {
        if self.l2.mark_dirty(req.line) {
            return; // absorbed by the L2
        }
        // Not L2-resident (already evicted): flows straight to memory.
        let location = self.mapper.decode(req.line.base());
        let mem = MemRequest {
            line: req.line,
            location,
            kind: RequestKind::Writeback,
            core: req.core,
            arrival: self.now,
            token: 0,
        };
        let at = self.now + self.path_latency + self.hop_to(req.core, location.mc.index());
        self.schedule(at, EventKind::McSend(mem));
    }

    fn handle_completion(&mut self, completion: Completion) {
        if completion.request.kind == RequestKind::Writeback {
            return;
        }
        let line = completion.request.line;
        let bank = completion.request.location.mc.index();
        let is_l2_prefetch = completion.request.token & L2_ORIGIN != 0;
        if is_l2_prefetch {
            self.pf_inflight[bank].remove(&line);
        }
        let dealloc = self.mshr_banks[bank].deallocate(line);
        let Some((entry, probes)) = dealloc else {
            // A prefetch with no demand miss merged behind it: just fill.
            if is_l2_prefetch {
                self.fill_l2(line, completion.request.core);
            } else {
                self.spurious_completions += 1;
            }
            return;
        };
        self.probe_hist.record(probes as u64);
        self.fill_l2(line, completion.request.core);
        // Wake the waiting cores; each core is woken once regardless of how
        // many of its µops merged into the entry. The core list rides inside
        // the `CoreFill` event, which hands its (cleared) vector back to
        // `core_list_pool` once delivered — so in steady state completions
        // recycle warmed-up buffers instead of allocating.
        let mut cores: Vec<CoreId> = self.core_list_pool.pop().unwrap_or_default();
        for t in entry.targets() {
            if !cores.contains(&t.core) {
                cores.push(t.core);
            }
        }
        if !cores.is_empty() {
            let delay =
                Cycles::new(probes.saturating_sub(1) as u64) + self.path_latency + Cycles::new(1);
            self.schedule(self.now + delay, EventKind::CoreFill { line, cores });
        } else if self.core_list_pool.len() < CORE_LIST_POOL_CAP {
            self.core_list_pool.push(cores);
        }
    }

    /// Installs a returned line into the L2; a dirty victim flows back to
    /// memory as a writeback.
    fn fill_l2(&mut self, line: LineAddr, core: CoreId) {
        if let Some(victim) = self.l2.fill(line, false) {
            if victim.dirty {
                let location = self.mapper.decode(victim.line.base());
                let mem = MemRequest {
                    line: victim.line,
                    location,
                    kind: RequestKind::Writeback,
                    core,
                    arrival: self.now,
                    token: 0,
                };
                let at = self.now + self.path_latency;
                self.schedule(at, EventKind::McSend(mem));
            }
        }
    }

    fn deliver_to_core(&mut self, core: CoreId, line: LineAddr) {
        self.fill_deliveries += 1;
        if let Some(writeback) = self.cores[core.index()].fill(line) {
            let at = self.now + self.l2_latency;
            self.schedule(
                at,
                EventKind::L2Access {
                    req: writeback,
                    retried: false,
                },
            );
        }
    }

    /// Estimates the total DRAM energy consumed so far under `model`,
    /// summed over every bank of every rank of every controller.
    pub fn dram_energy(&self, model: &stacksim_dram::EnergyModel) -> stacksim_dram::EnergyReport {
        let mut total = stacksim_dram::EnergyReport::default();
        for mc in &self.mcs {
            for rank in mc.ranks() {
                for bank in rank.banks() {
                    total.accumulate(&model.energy_of(bank));
                }
            }
        }
        total
    }

    /// Machine-wide stall breakdown summed over cores: cycles lost to
    /// `(full L1 MSHRs, full reorder window, branch refill)`.
    fn stall_breakdown(&self) -> (u64, u64, u64) {
        self.cores.iter().fold((0, 0, 0), |(m, w, b), core| {
            (
                m + core.mshr_stall_cycles(),
                w + core.window_stall_cycles(),
                b + core.branch_stall_cycles(),
            )
        })
    }

    /// Exports the machine's statistics (cores, L2, MCs, MSHR behaviour).
    pub fn stats(&self) -> StatRecord {
        let mut r = StatRecord::new("system");
        r.set("cycles", self.now.raw() as f64);
        r.set("ticked_cycles", self.ticked_cycles as f64);
        r.set("skipped_cycles", self.skipped_cycles as f64);
        r.set("committed", self.total_committed() as f64);
        r.set("mshr_full_retries", self.mshr_full_retries as f64);
        let (mshr_s, window_s, branch_s) = self.stall_breakdown();
        r.set("mshr_stall_cycles", mshr_s as f64);
        r.set("window_stall_cycles", window_s as f64);
        r.set("branch_stall_cycles", branch_s as f64);
        r.set("dropped_prefetches", self.dropped_prefetches as f64);
        r.set("l2_prefetches_issued", self.l2_prefetches_issued as f64);
        r.set("spurious_completions", self.spurious_completions as f64);
        if let Some(p) = self.probes_per_access() {
            r.set("mshr_probes_per_access", p);
        }
        let occupancy: usize = self.mshr_banks.iter().map(|b| b.occupancy()).sum();
        r.set("mshr_occupancy", occupancy as f64);
        r.absorb(&self.l2.stats());
        for core in &self.cores {
            r.absorb(&core.stats());
        }
        for mc in &self.mcs {
            r.absorb(&mc.stats());
        }
        r
    }

    /// Exports the machine's statistics as a hierarchical [`MetricsSink`]:
    /// system-level counters at the root, with one child per component
    /// (`l2`, `core0..N`, `mc0..M`). Flattening the tree yields exactly the
    /// same names and values as the flat [`stats`](System::stats) record,
    /// so downstream lookups like `"mc0.ranks.refreshes"` work unchanged.
    pub fn metrics(&self) -> MetricsSink {
        let mut sink = MetricsSink::new("system");
        sink.counter("cycles", self.now.raw());
        sink.counter("ticked_cycles", self.ticked_cycles);
        sink.counter("skipped_cycles", self.skipped_cycles);
        sink.counter("committed", self.total_committed());
        sink.counter("mshr_full_retries", self.mshr_full_retries);
        let (mshr_s, window_s, branch_s) = self.stall_breakdown();
        sink.counter("mshr_stall_cycles", mshr_s);
        sink.counter("window_stall_cycles", window_s);
        sink.counter("branch_stall_cycles", branch_s);
        sink.counter("dropped_prefetches", self.dropped_prefetches);
        sink.counter("l2_prefetches_issued", self.l2_prefetches_issued);
        sink.counter("spurious_completions", self.spurious_completions);
        if let Some(p) = self.probes_per_access() {
            sink.gauge("mshr_probes_per_access", p);
        }
        let occupancy: usize = self.mshr_banks.iter().map(|b| b.occupancy()).sum();
        sink.counter("mshr_occupancy", occupancy as u64);
        for record in std::iter::once(self.l2.stats())
            .chain(self.cores.iter().map(Core::stats))
            .chain(self.mcs.iter().map(MemoryController::stats))
        {
            sink.child_mut(record.component()).absorb_record(&record);
        }
        sink
    }
}

/// Builds one L2 MSHR bank of the requested organization.
fn make_mshr(kind: MshrKind, entries: usize) -> Box<dyn MissHandler> {
    match kind {
        MshrKind::Cam => Box::new(CamMshr::new(entries)),
        MshrKind::DirectLinear => Box::new(DirectMappedMshr::new(entries, ProbeScheme::Linear)),
        MshrKind::DirectQuadratic => {
            Box::new(DirectMappedMshr::new(entries, ProbeScheme::Quadratic))
        }
        MshrKind::Vbf => Box::new(VbfMshr::new(entries)),
        MshrKind::Hierarchical => {
            let banks = 2usize;
            let per_bank = (entries / 4).max(1);
            let shared = (entries - banks * per_bank).max(1);
            Box::new(HierarchicalMshr::new(banks, per_bank, shared))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use stacksim_workload::Instr;

    /// A scripted generator usable from system tests.
    struct Looping {
        instrs: Vec<Instr>,
        pos: usize,
    }

    impl TraceGenerator for Looping {
        fn next_instr(&mut self) -> Instr {
            let i = self.instrs[self.pos % self.instrs.len()];
            self.pos += 1;
            i
        }

        fn name(&self) -> &str {
            "loop"
        }
    }

    fn generators_of(instrs: Vec<Instr>, cores: usize) -> Vec<Box<dyn TraceGenerator>> {
        (0..cores)
            .map(|_| {
                Box::new(Looping {
                    instrs: instrs.clone(),
                    pos: 0,
                }) as Box<dyn TraceGenerator>
            })
            .collect()
    }

    #[test]
    fn compute_only_mix_runs_at_pipeline_speed() {
        let cfg = configs::cfg_2d();
        let gens = generators_of(vec![Instr::Compute], 4);
        let mut sys = System::with_generators(&cfg, gens).unwrap();
        sys.run_cycles(1000);
        for i in 0..4 {
            let ipc = sys.core_committed(i) as f64 / 1000.0;
            assert!(ipc > 3.5, "core {i} ipc {ipc}");
        }
    }

    #[test]
    fn memory_traffic_flows_end_to_end() {
        let cfg = configs::cfg_3d_fast();
        // Every core streams over disjoint lines.
        let gens: Vec<Box<dyn TraceGenerator>> = (0..4)
            .map(|c| {
                let instrs: Vec<Instr> = (0..4096u64)
                    .map(|i| Instr::Load {
                        pc: 0x100,
                        addr: LineAddr::new(c * 1_000_000 + i).base(),
                    })
                    .collect();
                Box::new(Looping { instrs, pos: 0 }) as Box<dyn TraceGenerator>
            })
            .collect();
        let mut sys = System::with_generators(&cfg, gens).unwrap();
        sys.run_cycles(20_000);
        let stats = sys.stats();
        assert!(sys.total_committed() > 0, "cores must make progress");
        assert!(stats.get("l2.misses").unwrap() > 0.0, "L2 must miss");
        assert!(
            stats.get("mc0.issued").unwrap() > 0.0,
            "memory must be accessed"
        );
        assert_eq!(stats.get("spurious_completions"), Some(0.0));
    }

    #[test]
    fn mix_construction_and_progress() {
        let cfg = configs::cfg_3d_fast();
        let mix = Mix::by_name("VH2").unwrap();
        let mut sys = System::for_mix(&cfg, mix, 1).unwrap();
        sys.run_cycles(10_000);
        assert!(sys.total_committed() > 0);
        // Memory-intensive mix: IPC far below pipeline width.
        let ipc = sys.total_committed() as f64 / (4.0 * 10_000.0);
        assert!(ipc < 3.0, "VH mix cannot run at pipeline speed ({ipc})");
    }

    #[test]
    fn faster_memory_means_more_progress() {
        let mix = Mix::by_name("VH1").unwrap();
        let mut slow = System::for_mix(&configs::cfg_2d(), mix, 1).unwrap();
        let mut fast = System::for_mix(&configs::cfg_3d_fast(), mix, 1).unwrap();
        slow.run_cycles(30_000);
        fast.run_cycles(30_000);
        assert!(
            fast.total_committed() > slow.total_committed(),
            "3D-fast {} must beat 2D {}",
            fast.total_committed(),
            slow.total_committed()
        );
    }

    #[test]
    fn quad_mc_spreads_traffic_across_controllers() {
        let cfg = configs::cfg_quad_mc();
        let mix = Mix::by_name("VH1").unwrap();
        let mut sys = System::for_mix(&cfg, mix, 1).unwrap();
        sys.run_cycles(20_000);
        let stats = sys.stats();
        for mc in 0..4 {
            assert!(
                stats.get(&format!("mc{mc}.issued")).unwrap_or(0.0) > 0.0,
                "mc{mc} idle"
            );
        }
    }

    #[test]
    fn vbf_mshr_system_matches_cam_semantics() {
        let mix = Mix::by_name("H1").unwrap();
        let cam = configs::cfg_dual_mc();
        let vbf = cam.with_mshr_kind(MshrKind::Vbf);
        let mut sys_cam = System::for_mix(&cam, mix, 5).unwrap();
        let mut sys_vbf = System::for_mix(&vbf, mix, 5).unwrap();
        sys_cam.run_cycles(20_000);
        sys_vbf.run_cycles(20_000);
        // Same workload, same capacity: committed counts must be close
        // (VBF only adds probe latency).
        let a = sys_cam.total_committed() as f64;
        let b = sys_vbf.total_committed() as f64;
        assert!((a - b).abs() / a < 0.2, "cam {a} vs vbf {b}");
        // And the VBF's probe count must be small (paper: ~2.2-2.3).
        let probes = sys_vbf.probes_per_access().unwrap();
        assert!(probes < 4.0, "probes/access {probes}");
    }

    #[test]
    fn generator_count_is_validated() {
        let cfg = configs::cfg_2d();
        let gens = generators_of(vec![Instr::Compute], 3);
        assert!(System::with_generators(&cfg, gens).is_err());
    }

    #[test]
    fn stats_record_is_comprehensive() {
        let cfg = configs::cfg_3d_fast();
        let mix = Mix::by_name("M1").unwrap();
        let mut sys = System::for_mix(&cfg, mix, 2).unwrap();
        sys.run_cycles(5_000);
        let stats = sys.stats();
        for key in [
            "cycles",
            "committed",
            "l2.hits",
            "core0.committed",
            "mc0.issued",
        ] {
            assert!(stats.get(key).is_some(), "missing stat {key}");
        }
    }

    #[test]
    fn metrics_tree_flattens_to_flat_stats() {
        let cfg = configs::cfg_3d_fast();
        let mix = Mix::by_name("H1").unwrap();
        let mut sys = System::for_mix(&cfg, mix, 2).unwrap();
        sys.run_cycles(5_000);
        let flat: Vec<(String, f64)> = sys
            .stats()
            .iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect();
        let tree = sys.metrics().flatten();
        assert_eq!(
            tree, flat,
            "hierarchical export must mirror the flat record"
        );
    }

    #[test]
    fn tracing_records_streams_without_changing_behaviour() {
        let cfg = configs::cfg_3d_fast();
        let mix = Mix::by_name("VH1").unwrap();
        let mut plain = System::for_mix(&cfg, mix, 1).unwrap();
        let mut traced = System::for_mix(&cfg, mix, 1).unwrap();
        let mut tc = TraceConfig::all();
        tc.sample_interval = 256;
        traced.enable_tracing(tc);
        plain.run_cycles(20_000);
        traced.run_cycles(20_000);
        // Tracing must be purely observational.
        assert_eq!(plain.total_committed(), traced.total_committed());
        let trace = traced.take_trace().unwrap();
        assert!(
            !trace.dram_cmds.iter().all(Vec::is_empty),
            "commands traced"
        );
        assert!(!trace.mshr_occupancy.is_empty(), "occupancy sampled");
        assert!(!trace.mc_queue_depth.is_empty(), "queue depth sampled");
        // Command stream is time-ordered per (rank, bank): commands carry
        // their real issue times, so streams of different banks interleave
        // but each bank's own sequence is monotonic.
        for cmds in &trace.dram_cmds {
            let mut last = std::collections::HashMap::new();
            for c in cmds {
                let prev = last.insert((c.rank, c.bank), c.at);
                assert!(
                    prev.is_none_or(|p| p <= c.at),
                    "bank stream went backwards: {c}"
                );
            }
        }
        // The untraced system yields no trace.
        assert_eq!(plain.take_trace(), None);
        // A second take returns only newer events.
        let again = traced.take_trace().unwrap();
        assert!(again.is_empty());
    }

    #[test]
    fn dynamic_tuner_adjusts_limits() {
        use stacksim_mshr::TunerConfig;
        let cfg = configs::cfg_dual_mc()
            .with_mshr_scale(8)
            .with_dynamic_mshr(TunerConfig {
                sample_cycles: 500,
                apply_cycles: 5_000,
                divisors: vec![1, 2, 4],
            });
        let mix = Mix::by_name("VH1").unwrap();
        let mut sys = System::for_mix(&cfg, mix, 3).unwrap();
        sys.run_cycles(10_000);
        // The machine survives retuning and keeps committing.
        assert!(sys.total_committed() > 0);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use crate::configs;

    #[test]
    #[ignore = "diagnostic"]
    fn skip_veto_probe() {
        let probes: Vec<(&str, SystemConfig, &str)> = vec![
            ("2d/VH1", configs::cfg_2d(), "VH1"),
            ("3dfast/VH1", configs::cfg_3d_fast(), "VH1"),
            ("quad/VH1", configs::cfg_quad_mc(), "VH1"),
            ("quad/H2", configs::cfg_quad_mc(), "H2"),
            ("dual/HM1", configs::cfg_dual_mc(), "HM1"),
        ];
        for (label, cfg, mix_name) in probes {
            let mix = Mix::by_name(mix_name).unwrap();
            let mut sys = System::for_mix(&cfg, mix, 0xC0FFEE).unwrap();
            let end = Cycle::new(70_000);
            let mut jumpable = 0u64;
            let mut mc_only = 0u64;
            let mut active_hist = [0u64; 5];
            while sys.now < end {
                let now = sys.now;
                match sys.cores_inert_bound() {
                    Some(wake) => {
                        let slice_end = wake.map_or(end, |w| w.min(end));
                        if sys.mc_skip_target(slice_end).is_some() {
                            jumpable += 1;
                        } else {
                            mc_only += 1;
                        }
                    }
                    None => {
                        let active = sys
                            .cores
                            .iter()
                            .filter(|c| c.next_activity(now).is_some_and(|t| t <= now))
                            .count();
                        active_hist[active.min(4)] += 1;
                    }
                }
                sys.set_fast_forward(false);
                sys.tick();
                sys.set_fast_forward(true);
            }
            println!("=== {label} ===");
            println!("jumpable-this-cycle: {jumpable}");
            println!("mc-slice-this-cycle: {mc_only}");
            println!("vetoed-by-active-core-count [1..=4 of 5 bins]: {active_hist:?}");
        }
    }

    #[test]
    #[ignore = "diagnostic"]
    fn timeline_probe() {
        let cfg = configs::cfg_3d_fast();
        let mix = Mix::by_name("VH1").unwrap();
        let mut sys = System::for_mix(&cfg, mix, 1).unwrap();
        for step in 0..60 {
            sys.run_cycles(500);
            let occ: usize = sys.mshr_banks.iter().map(|b| b.occupancy()).sum();
            let sq: usize = sys
                .send_queues
                .iter()
                .map(|q| q.demand.len() + q.writeback.len() + q.prefetch.len())
                .sum();
            let pf: Vec<usize> = sys.pf_inflight.iter().map(|p| p.len()).collect();
            let occs: Vec<usize> = sys.mshr_banks.iter().map(|b| b.occupancy()).collect();
            println!("   pf={pf:?} occs={occs:?}");
            let mrq: usize = sys.mcs.iter().map(|m| m.queue_len()).sum();
            let ev = sys.events.len();
            println!(
                "t={} occ={occ} sendq={sq} mrq={mrq} events={ev} committed={} retries={} outstanding_core0={} window0={}",
                (step + 1) * 500,
                sys.total_committed(),
                sys.mshr_full_retries,
                sys.cores[0].outstanding_misses(),
                sys.cores[0].window_occupancy(),
            );
        }
    }
}
