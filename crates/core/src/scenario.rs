//! Declarative machine scenarios: data-driven topologies beyond quad-core.
//!
//! A *scenario* is a JSON file describing one complete machine — core count
//! and microarchitecture (optionally heterogeneous per core), L2 geometry,
//! MSHR organization, virtual memory, a core→MC interconnect model, and the
//! whole DRAM system including multiple stacks with per-stack MC groups.
//! [`Scenario::from_path`] parses, validates and builds the corresponding
//! [`SystemConfig`]; every key is checked against the schema
//! ([`ACCEPTED_KEYS`]) and unknown or out-of-range values are rejected with
//! a typed [`ScenarioError`] naming the offending key.
//!
//! Every omitted key takes the paper's 2D baseline value, so the shipped
//! `scenarios/2d.json` is an (almost) empty machine object and each other
//! file states exactly what it changes — the same delta structure as the
//! [`configs`](crate::configs) constructors, which remain as golden twins
//! cross-checked by test.
//!
//! The full schema — key-by-key types, units, defaults and validation
//! rules — is documented in `docs/SCENARIOS.md`, which simlint cross-checks
//! against [`ACCEPTED_KEYS`] so the document cannot drift from the parser.
//!
//! # Examples
//!
//! ```
//! use stacksim::scenario::Scenario;
//!
//! let two_d = Scenario::from_str(r#"{
//!     "schema": "stacksim-scenario/1",
//!     "name": "baseline",
//!     "machine": {}
//! }"#)
//! .unwrap();
//! assert_eq!(two_d.config, stacksim::configs::cfg_2d());
//! ```

use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};

use stacksim_cache::CacheConfig;
use stacksim_cpu::{CoreConfig, TageConfig};
use stacksim_memctrl::SchedulerPolicy;
use stacksim_mshr::{MshrKind, TunerConfig};
use stacksim_stats::{Json, JsonError};
use stacksim_types::{
    ConfigError, Cycles, DramTiming, InterleaveGranularity, MemoryKind, RefreshConfig,
};
use stacksim_vm::TlbConfig;

use crate::config::{InterconnectConfig, MemorySystemConfig, MshrSystemConfig, SystemConfig};
use crate::configs::CORE_HZ;

/// Every key path the scenario parser accepts, in schema order.
///
/// This table *is* the parser's key check: each object's member names are
/// validated against its children here, so the table can never lag the
/// parser. simlint's scenario-docs rule cross-checks `docs/SCENARIOS.md`
/// against this list in both directions.
///
/// Array-element schemas use a `[]` segment: entries of
/// `machine.memory.stacks` (in its explicit list form) accept the
/// `machine.memory.stacks[].*` keys, and entries of `machine.per_core`
/// accept the same keys as `machine.core`.
pub const ACCEPTED_KEYS: &[&str] = &[
    "schema",
    "name",
    "description",
    "machine",
    "machine.cores",
    "machine.core_hz",
    "machine.core",
    "machine.core.issue_width",
    "machine.core.commit_width",
    "machine.core.window",
    "machine.core.l1_mshrs",
    "machine.core.nextline_degree",
    "machine.core.stride_entries",
    "machine.core.dl1",
    "machine.core.dl1.size_bytes",
    "machine.core.dl1.associativity",
    "machine.core.branch",
    "machine.per_core",
    "machine.l2",
    "machine.l2.size_bytes",
    "machine.l2.associativity",
    "machine.l2.banks",
    "machine.l2.latency",
    "machine.l2.interleave",
    "machine.l2.prefetch",
    "machine.mshr",
    "machine.mshr.kind",
    "machine.mshr.total_entries",
    "machine.mshr.dynamic",
    "machine.mshr.dynamic.sample_cycles",
    "machine.mshr.dynamic.apply_cycles",
    "machine.mshr.dynamic.divisors",
    "machine.vm",
    "machine.vm.entries",
    "machine.vm.associativity",
    "machine.vm.walk_latency",
    "machine.interconnect",
    "machine.interconnect.hop_latency",
    "machine.memory",
    "machine.memory.kind",
    "machine.memory.total_bytes",
    "machine.memory.ranks",
    "machine.memory.banks_per_rank",
    "machine.memory.mcs",
    "machine.memory.stacks",
    "machine.memory.stacks[].mcs",
    "machine.memory.stacks[].ranks",
    "machine.memory.row_buffer_entries",
    "machine.memory.timing",
    "machine.memory.timing.t_ras_ns",
    "machine.memory.timing.t_rcd_ns",
    "machine.memory.timing.t_cas_ns",
    "machine.memory.timing.t_wr_ns",
    "machine.memory.timing.t_rp_ns",
    "machine.memory.timing.t_ccd_ns",
    "machine.memory.refresh_ms",
    "machine.memory.smart_refresh",
    "machine.memory.page_policy",
    "machine.memory.bus_width_bytes",
    "machine.memory.bus_clock_divisor",
    "machine.memory.mc_clock_divisor",
    "machine.memory.path_latency",
    "machine.memory.critical_word_first",
    "machine.memory.mrq_total",
    "machine.memory.scheduler",
];

/// The schema identifier every scenario file must carry.
pub const SCHEMA: &str = "stacksim-scenario/1";

/// Why a scenario file was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// The file could not be read.
    Io {
        /// The path that failed.
        path: PathBuf,
        /// The I/O error text.
        message: String,
    },
    /// The text is not well-formed JSON.
    Json(JsonError),
    /// The JSON is well-formed but violates the scenario schema (unknown
    /// key, wrong type, out-of-range value, …). `key` is the full dotted
    /// path of the offending key.
    Schema {
        /// Dotted path of the offending key (e.g. `machine.l2.banks`).
        key: String,
        /// What is wrong with it.
        message: String,
    },
    /// The described machine fails cross-component validation
    /// ([`SystemConfig::validate`]).
    Config(ConfigError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io { path, message } => {
                write!(f, "cannot read scenario {}: {message}", path.display())
            }
            ScenarioError::Json(e) => write!(f, "scenario is not valid JSON: {e}"),
            ScenarioError::Schema { key, message } => {
                write!(f, "scenario key \"{key}\": {message}")
            }
            ScenarioError::Config(e) => write!(f, "scenario machine is inconsistent: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A stable content hash of a machine configuration — the memoization key
/// the runner and the (future) durable result store share.
///
/// The digest is FNV-1a/64 over the machine's full configuration identity:
/// exactly the fields [`SystemConfig`]'s `Eq` compares, nothing else. Two
/// scenario files that describe the same machine — regardless of key order,
/// formatting, `name` or `description` — therefore hash identically and
/// dedupe to one simulation, while any semantic difference (one more MSHR
/// entry, a different refresh period) changes the hash.
///
/// # Examples
///
/// ```
/// use stacksim::scenario::ScenarioHash;
///
/// let a = ScenarioHash::of(&stacksim::configs::cfg_3d());
/// let b = ScenarioHash::of(&stacksim::configs::cfg_3d());
/// assert_eq!(a, b);
/// assert_ne!(a, ScenarioHash::of(&stacksim::configs::cfg_2d()));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScenarioHash(u64);

impl ScenarioHash {
    /// Digests a machine configuration.
    pub fn of(cfg: &SystemConfig) -> ScenarioHash {
        let mut h = Fnv1a::new();
        cfg.hash(&mut h);
        ScenarioHash(h.finish())
    }

    /// The raw 64-bit digest.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ScenarioHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a/64 as a [`Hasher`], so `ScenarioHash` is independent of the
/// standard library's (explicitly unstable) default hasher.
struct Fnv1a(u64);

impl Fnv1a {
    const fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A parsed, validated scenario: the machine plus its identity metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// The scenario's name (`name` key; required).
    pub name: String,
    /// Free-text description (`description` key), if any. Not part of the
    /// content hash.
    pub description: Option<String>,
    /// The fully built and validated machine.
    pub config: SystemConfig,
}

impl Scenario {
    /// Parses a scenario document, checks every key against the schema, and
    /// builds the validated [`SystemConfig`].
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] for malformed JSON, an unknown or
    /// ill-typed key, an out-of-range value, or a machine that fails
    /// [`SystemConfig::validate`].
    ///
    /// # Examples
    ///
    /// An 8-core machine on a single 3D stack with two memory controllers:
    ///
    /// ```
    /// use stacksim::scenario::Scenario;
    ///
    /// let octa = Scenario::from_str(r#"{
    ///     "schema": "stacksim-scenario/1",
    ///     "name": "octa-3d",
    ///     "description": "8 cores over stacked commodity DRAM, 2 MCs",
    ///     "machine": {
    ///         "cores": 8,
    ///         "l2": { "interleave": "page" },
    ///         "memory": {
    ///             "kind": "stacked-3d",
    ///             "mcs": 2,
    ///             "refresh_ms": 32.0,
    ///             "bus_clock_divisor": 1,
    ///             "mc_clock_divisor": 1,
    ///             "path_latency": 0
    ///         }
    ///     }
    /// }"#)
    /// .unwrap();
    /// assert_eq!(octa.config.cores, 8);
    /// assert_eq!(octa.config.memory.mcs, 2);
    /// octa.config.validate().unwrap();
    /// ```
    // An inherent `from_str` (rather than the `FromStr` trait) so callers
    // need no extra import; the trait's `parse` ergonomics add nothing for
    // a multi-line document.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str) -> Result<Scenario, ScenarioError> {
        let doc = Json::parse(text).map_err(ScenarioError::Json)?;
        let root = obj(&doc, "(document)")?;
        check_keys(root, "", "")?;
        match get(root, "schema") {
            None => return Err(schema_err("schema", "required key is missing")),
            Some(v) => {
                let s = str_val(v, "schema")?;
                if s != SCHEMA {
                    return Err(schema_err("schema", format!("expected \"{SCHEMA}\"")));
                }
            }
        }
        let name = match get(root, "name") {
            None => return Err(schema_err("name", "required key is missing")),
            Some(v) => {
                let s = str_val(v, "name")?;
                if s.is_empty() {
                    return Err(schema_err("name", "must not be empty"));
                }
                s.to_string()
            }
        };
        let description = match get(root, "description") {
            None => None,
            Some(v) => Some(str_val(v, "description")?.to_string()),
        };
        let machine = match get(root, "machine") {
            None => &[][..],
            Some(v) => obj(v, "machine")?,
        };
        let config = parse_machine(machine)?;
        config.validate().map_err(ScenarioError::Config)?;
        Ok(Scenario {
            name,
            description,
            config,
        })
    }

    /// Reads and parses a scenario file; see [`Scenario::from_str`].
    ///
    /// # Errors
    ///
    /// Everything [`Scenario::from_str`] rejects, plus
    /// [`ScenarioError::Io`] if the file cannot be read.
    pub fn from_path(path: &Path) -> Result<Scenario, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        Scenario::from_str(&text)
    }

    /// The scenario's content hash (see [`ScenarioHash`]).
    pub fn hash(&self) -> ScenarioHash {
        ScenarioHash::of(&self.config)
    }
}

/// The six named machines every experiment driver draws from, resolvable
/// either from the built-in constructors ([`configs`](crate::configs)) or
/// from the shipped scenario files — the two are golden twins, cross-checked
/// bit-identical by test.
///
/// Experiment drivers take `&Machines` instead of calling the constructors,
/// so `reproduce` (and anything else) can re-point the whole evaluation at
/// an edited scenario directory without recompiling.
#[derive(Clone, Debug, PartialEq)]
pub struct Machines {
    /// Off-chip 2D baseline (`scenarios/2d.json`, [`configs::cfg_2d`](crate::configs::cfg_2d)).
    pub m2d: SystemConfig,
    /// Simple on-stack 3D (`scenarios/3d.json`, [`configs::cfg_3d`](crate::configs::cfg_3d)).
    pub m3d: SystemConfig,
    /// 3D with a 64-byte bus (`scenarios/3d-wide.json`, [`configs::cfg_3d_wide`](crate::configs::cfg_3d_wide)).
    pub m3d_wide: SystemConfig,
    /// True-3D arrays (`scenarios/3d-fast.json`, [`configs::cfg_3d_fast`](crate::configs::cfg_3d_fast)).
    pub m3d_fast: SystemConfig,
    /// Aggressive dual-MC machine (`scenarios/dual-mc.json`, [`configs::cfg_dual_mc`](crate::configs::cfg_dual_mc)).
    pub dual_mc: SystemConfig,
    /// Aggressive quad-MC machine (`scenarios/quad-mc.json`, [`configs::cfg_quad_mc`](crate::configs::cfg_quad_mc)).
    pub quad_mc: SystemConfig,
}

/// The scenario file each [`Machines`] field loads from.
pub const MACHINE_FILES: &[&str] = &[
    "2d.json",
    "3d.json",
    "3d-wide.json",
    "3d-fast.json",
    "dual-mc.json",
    "quad-mc.json",
];

impl Machines {
    /// The compiled-in constructors (exactly Table 1 and §4).
    pub fn builtin() -> Machines {
        Machines {
            m2d: crate::configs::cfg_2d(),
            m3d: crate::configs::cfg_3d(),
            m3d_wide: crate::configs::cfg_3d_wide(),
            m3d_fast: crate::configs::cfg_3d_fast(),
            dual_mc: crate::configs::cfg_dual_mc(),
            quad_mc: crate::configs::cfg_quad_mc(),
        }
    }

    /// Loads all six machines from their [`MACHINE_FILES`] in `dir`.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] from any of the six files.
    pub fn from_dir(dir: &Path) -> Result<Machines, ScenarioError> {
        let load = |file: &str| Scenario::from_path(&dir.join(file)).map(|s| s.config);
        Ok(Machines {
            m2d: load("2d.json")?,
            m3d: load("3d.json")?,
            m3d_wide: load("3d-wide.json")?,
            m3d_fast: load("3d-fast.json")?,
            dual_mc: load("dual-mc.json")?,
            quad_mc: load("quad-mc.json")?,
        })
    }

    /// [`Machines::from_dir`] when `dir` holds a scenario set (detected by
    /// the presence of `2d.json`), the built-in constructors otherwise.
    /// A present-but-broken scenario set is a hard error, never a silent
    /// fallback.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] if `dir` holds a scenario set that fails
    /// to parse or validate.
    pub fn load(dir: &Path) -> Result<Machines, ScenarioError> {
        if dir.join("2d.json").exists() {
            Machines::from_dir(dir)
        } else {
            Ok(Machines::builtin())
        }
    }

    /// The §4 aggressive reorganization (`mcs` MCs over `ranks` ranks with
    /// `row_buffer_entries` row buffers per bank, page-interleaved L2)
    /// derived from this set's `3d-fast` machine — the scenario-aware
    /// counterpart of [`configs::cfg_aggressive`](crate::configs::cfg_aggressive).
    pub fn aggressive(&self, mcs: u16, ranks: u16, row_buffer_entries: usize) -> SystemConfig {
        crate::configs::aggressive_from(&self.m3d_fast, mcs, ranks, row_buffer_entries)
    }
}

// ---------------------------------------------------------------------------
// Schema walking helpers.

fn schema_err(key: impl Into<String>, message: impl Into<String>) -> ScenarioError {
    ScenarioError::Schema {
        key: key.into(),
        message: message.into(),
    }
}

/// The member names the schema allows directly under `prefix` (`""` is the
/// document root). Array-element keys (containing `[]`) only appear under
/// their own prefix.
fn children(prefix: &str) -> impl Iterator<Item = &'static str> + '_ {
    ACCEPTED_KEYS.iter().copied().filter_map(move |k| {
        let rest = if prefix.is_empty() {
            k
        } else {
            k.strip_prefix(prefix)?.strip_prefix('.')?
        };
        (!rest.contains('.') && !rest.contains("[]")).then_some(rest)
    })
}

/// Rejects members not in the schema under `schema_prefix`, and duplicate
/// members. `err_prefix` is the dotted path used in error messages (it
/// differs from `schema_prefix` inside `per_core` and `stacks` entries).
fn check_keys(
    members: &[(String, Json)],
    schema_prefix: &str,
    err_prefix: &str,
) -> Result<(), ScenarioError> {
    let at = |k: &str| {
        if err_prefix.is_empty() {
            k.to_string()
        } else {
            format!("{err_prefix}.{k}")
        }
    };
    for (i, (k, _)) in members.iter().enumerate() {
        if !children(schema_prefix).any(|c| c == k) {
            return Err(schema_err(at(k), "unknown key"));
        }
        if members[..i].iter().any(|(prev, _)| prev == k) {
            return Err(schema_err(at(k), "duplicate key"));
        }
    }
    Ok(())
}

fn get<'a>(members: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn obj<'a>(v: &'a Json, key: &str) -> Result<&'a [(String, Json)], ScenarioError> {
    v.as_obj()
        .ok_or_else(|| schema_err(key, "expected an object"))
}

fn str_val<'a>(v: &'a Json, key: &str) -> Result<&'a str, ScenarioError> {
    v.as_str()
        .ok_or_else(|| schema_err(key, "expected a string"))
}

fn bool_val(v: &Json, key: &str) -> Result<bool, ScenarioError> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => Err(schema_err(key, "expected a boolean")),
    }
}

fn num(v: &Json, key: &str) -> Result<f64, ScenarioError> {
    v.as_f64()
        .ok_or_else(|| schema_err(key, "expected a number"))
}

fn pos_num(v: &Json, key: &str) -> Result<f64, ScenarioError> {
    let n = num(v, key)?;
    if n.is_nan() || n <= 0.0 {
        return Err(schema_err(key, "expected a positive number"));
    }
    Ok(n)
}

/// An integer in `lo..=hi` (also rejects fractional and negative numbers).
fn uint(v: &Json, key: &str, lo: u64, hi: u64) -> Result<u64, ScenarioError> {
    let n = num(v, key)?;
    if n.fract() != 0.0 || n < 0.0 || n > u64::MAX as f64 {
        return Err(schema_err(key, "expected a non-negative integer"));
    }
    let n = n as u64;
    if n < lo || n > hi {
        return Err(schema_err(key, format!("must be between {lo} and {hi}")));
    }
    Ok(n)
}

/// Looks up an enum-style string key against `(name, value)` pairs.
fn named<T: Copy>(v: &Json, key: &str, options: &[(&str, T)]) -> Result<T, ScenarioError> {
    let s = str_val(v, key)?;
    for (name, value) in options {
        if *name == s {
            return Ok(*value);
        }
    }
    let names: Vec<&str> = options.iter().map(|(n, _)| *n).collect();
    Err(schema_err(
        key,
        format!(
            "unknown name \"{s}\" (expected one of: {})",
            names.join(", ")
        ),
    ))
}

// ---------------------------------------------------------------------------
// Section parsers. Every default is the paper's 2D baseline
// ([`configs::cfg_2d`](crate::configs::cfg_2d)), pinned by the golden-twin
// tests against the constructors.

fn parse_machine(m: &[(String, Json)]) -> Result<SystemConfig, ScenarioError> {
    check_keys(m, "machine", "machine")?;
    let cores = match get(m, "cores") {
        None => 4,
        Some(v) => uint(v, "machine.cores", 1, 1024)? as usize,
    };
    let core_hz = match get(m, "core_hz") {
        None => CORE_HZ,
        Some(v) => pos_num(v, "machine.core_hz")?,
    };
    let core = match get(m, "core") {
        None => CoreConfig::penryn(),
        Some(v) => parse_core(obj(v, "machine.core")?, "machine.core")?,
    };
    let per_core = match get(m, "per_core") {
        None => Vec::new(),
        Some(v) => {
            let entries = v
                .as_arr()
                .ok_or_else(|| schema_err("machine.per_core", "expected an array"))?;
            entries
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    let path = format!("machine.per_core[{i}]");
                    parse_core(obj(e, &path)?, &path)
                })
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    let (l2, l2_banks, l2_latency, l2_interleave, l2_prefetch) = match get(m, "l2") {
        None => default_l2(),
        Some(v) => parse_l2(obj(v, "machine.l2")?)?,
    };
    let mshr = match get(m, "mshr") {
        None => MshrSystemConfig {
            kind: MshrKind::Cam,
            total_entries: 8,
            dynamic: None,
        },
        Some(v) => parse_mshr(obj(v, "machine.mshr")?)?,
    };
    let vm = match get(m, "vm") {
        None => Some(TlbConfig::dtlb_penryn()),
        Some(Json::Null) => None,
        Some(v) => Some(parse_vm(obj(v, "machine.vm")?)?),
    };
    let interconnect = match get(m, "interconnect") {
        None => InterconnectConfig::default(),
        Some(v) => parse_interconnect(obj(v, "machine.interconnect")?)?,
    };
    let memory = match get(m, "memory") {
        None => parse_memory(&[])?,
        Some(v) => parse_memory(obj(v, "machine.memory")?)?,
    };
    Ok(SystemConfig {
        cores,
        core,
        per_core,
        core_hz,
        l2,
        l2_banks,
        l2_latency,
        l2_interleave,
        l2_prefetch,
        mshr,
        vm,
        interconnect,
        memory,
    })
}

/// Parses one core object (`machine.core` or a `machine.per_core` entry;
/// `err_prefix` names which in errors). Defaults are the Penryn core.
fn parse_core(m: &[(String, Json)], err_prefix: &str) -> Result<CoreConfig, ScenarioError> {
    check_keys(m, "machine.core", err_prefix)?;
    let at = |k: &str| format!("{err_prefix}.{k}");
    let base = CoreConfig::penryn();
    let dl1 = match get(m, "dl1") {
        None => base.dl1,
        Some(v) => {
            let dm = obj(v, &at("dl1"))?;
            check_keys(dm, "machine.core.dl1", &at("dl1"))?;
            CacheConfig {
                size_bytes: match get(dm, "size_bytes") {
                    None => base.dl1.size_bytes,
                    Some(v) => uint(v, &at("dl1.size_bytes"), 64, 1 << 32)?,
                },
                associativity: match get(dm, "associativity") {
                    None => base.dl1.associativity,
                    Some(v) => uint(v, &at("dl1.associativity"), 1, 1024)? as usize,
                },
            }
        }
    };
    let branch = match get(m, "branch") {
        None => base.branch,
        Some(v) => match str_val(v, &at("branch"))? {
            "tage-4kb" => Some(TageConfig::penryn_4kb()),
            "none" => None,
            s => {
                return Err(schema_err(
                    at("branch"),
                    format!("unknown name \"{s}\" (expected one of: tage-4kb, none)"),
                ))
            }
        },
    };
    Ok(CoreConfig {
        issue_width: match get(m, "issue_width") {
            None => base.issue_width,
            Some(v) => uint(v, &at("issue_width"), 1, 64)? as usize,
        },
        commit_width: match get(m, "commit_width") {
            None => base.commit_width,
            Some(v) => uint(v, &at("commit_width"), 1, 64)? as usize,
        },
        window: match get(m, "window") {
            None => base.window,
            Some(v) => uint(v, &at("window"), 1, 1 << 16)? as usize,
        },
        dl1,
        l1_mshrs: match get(m, "l1_mshrs") {
            None => base.l1_mshrs,
            Some(v) => uint(v, &at("l1_mshrs"), 1, 1 << 16)? as usize,
        },
        nextline_degree: match get(m, "nextline_degree") {
            None => base.nextline_degree,
            Some(v) => uint(v, &at("nextline_degree"), 0, 64)? as usize,
        },
        stride_entries: match get(m, "stride_entries") {
            None => base.stride_entries,
            Some(v) => uint(v, &at("stride_entries"), 0, 1 << 20)? as usize,
        },
        branch,
    })
}

fn default_l2() -> (CacheConfig, u16, Cycles, InterleaveGranularity, bool) {
    (
        CacheConfig::dl2_penryn(),
        16,
        Cycles::new(9),
        InterleaveGranularity::Line,
        true,
    )
}

type L2Parts = (CacheConfig, u16, Cycles, InterleaveGranularity, bool);

fn parse_l2(m: &[(String, Json)]) -> Result<L2Parts, ScenarioError> {
    check_keys(m, "machine.l2", "machine.l2")?;
    let (dflt, dflt_banks, dflt_latency, dflt_il, dflt_pf) = default_l2();
    Ok((
        CacheConfig {
            size_bytes: match get(m, "size_bytes") {
                None => dflt.size_bytes,
                Some(v) => uint(v, "machine.l2.size_bytes", 64, 1 << 40)?,
            },
            associativity: match get(m, "associativity") {
                None => dflt.associativity,
                Some(v) => uint(v, "machine.l2.associativity", 1, 1024)? as usize,
            },
        },
        match get(m, "banks") {
            None => dflt_banks,
            Some(v) => uint(v, "machine.l2.banks", 1, 1 << 12)? as u16,
        },
        match get(m, "latency") {
            None => dflt_latency,
            Some(v) => Cycles::new(uint(v, "machine.l2.latency", 0, 1 << 20)?),
        },
        match get(m, "interleave") {
            None => dflt_il,
            Some(v) => named(
                v,
                "machine.l2.interleave",
                &[
                    ("line", InterleaveGranularity::Line),
                    ("page", InterleaveGranularity::Page),
                ],
            )?,
        },
        match get(m, "prefetch") {
            None => dflt_pf,
            Some(v) => bool_val(v, "machine.l2.prefetch")?,
        },
    ))
}

fn parse_mshr(m: &[(String, Json)]) -> Result<MshrSystemConfig, ScenarioError> {
    check_keys(m, "machine.mshr", "machine.mshr")?;
    Ok(MshrSystemConfig {
        kind: match get(m, "kind") {
            None => MshrKind::Cam,
            Some(v) => {
                let s = str_val(v, "machine.mshr.kind")?;
                MshrKind::from_name(s).ok_or_else(|| {
                    schema_err(
                        "machine.mshr.kind",
                        format!(
                            "unknown name \"{s}\" (expected one of: cam, direct-linear, \
                             direct-quadratic, vbf, hierarchical)"
                        ),
                    )
                })?
            }
        },
        total_entries: match get(m, "total_entries") {
            None => 8,
            Some(v) => uint(v, "machine.mshr.total_entries", 1, 1 << 20)? as usize,
        },
        dynamic: match get(m, "dynamic") {
            None | Some(Json::Null) => None,
            Some(v) => Some(parse_tuner(obj(v, "machine.mshr.dynamic")?)?),
        },
    })
}

fn parse_tuner(m: &[(String, Json)]) -> Result<TunerConfig, ScenarioError> {
    check_keys(m, "machine.mshr.dynamic", "machine.mshr.dynamic")?;
    let dflt = TunerConfig::default();
    Ok(TunerConfig {
        sample_cycles: match get(m, "sample_cycles") {
            None => dflt.sample_cycles,
            Some(v) => uint(v, "machine.mshr.dynamic.sample_cycles", 1, 1 << 40)?,
        },
        apply_cycles: match get(m, "apply_cycles") {
            None => dflt.apply_cycles,
            Some(v) => uint(v, "machine.mshr.dynamic.apply_cycles", 1, 1 << 40)?,
        },
        divisors: match get(m, "divisors") {
            None => dflt.divisors,
            Some(v) => {
                let items = v.as_arr().ok_or_else(|| {
                    schema_err("machine.mshr.dynamic.divisors", "expected an array")
                })?;
                if items.is_empty() {
                    return Err(schema_err(
                        "machine.mshr.dynamic.divisors",
                        "must not be empty",
                    ));
                }
                items
                    .iter()
                    .map(|d| uint(d, "machine.mshr.dynamic.divisors", 1, 1024).map(|n| n as usize))
                    .collect::<Result<Vec<_>, _>>()?
            }
        },
    })
}

fn parse_vm(m: &[(String, Json)]) -> Result<TlbConfig, ScenarioError> {
    check_keys(m, "machine.vm", "machine.vm")?;
    let dflt = TlbConfig::dtlb_penryn();
    Ok(TlbConfig {
        entries: match get(m, "entries") {
            None => dflt.entries,
            Some(v) => uint(v, "machine.vm.entries", 1, 1 << 20)? as usize,
        },
        associativity: match get(m, "associativity") {
            None => dflt.associativity,
            Some(v) => uint(v, "machine.vm.associativity", 1, 1024)? as usize,
        },
        walk_latency: match get(m, "walk_latency") {
            None => dflt.walk_latency,
            Some(v) => Cycles::new(uint(v, "machine.vm.walk_latency", 0, 1 << 30)?),
        },
    })
}

fn parse_interconnect(m: &[(String, Json)]) -> Result<InterconnectConfig, ScenarioError> {
    check_keys(m, "machine.interconnect", "machine.interconnect")?;
    Ok(InterconnectConfig {
        hop_latency: match get(m, "hop_latency") {
            None => Cycles::ZERO,
            Some(v) => Cycles::new(uint(v, "machine.interconnect.hop_latency", 0, 1 << 20)?),
        },
    })
}

fn parse_timing(v: &Json) -> Result<DramTiming, ScenarioError> {
    if let Some(s) = v.as_str() {
        return match s {
            "commodity-2d" => Ok(DramTiming::COMMODITY_2D),
            "true-3d" => Ok(DramTiming::TRUE_3D),
            _ => Err(schema_err(
                "machine.memory.timing",
                format!("unknown name \"{s}\" (expected one of: commodity-2d, true-3d)"),
            )),
        };
    }
    let m = obj(v, "machine.memory.timing")?;
    check_keys(m, "machine.memory.timing", "machine.memory.timing")?;
    let field = |k: &str| -> Result<f64, ScenarioError> {
        let path = format!("machine.memory.timing.{k}");
        match get(m, k) {
            None => Err(schema_err(path, "required in explicit timing")),
            Some(v) => pos_num(v, &path),
        }
    };
    Ok(DramTiming {
        t_ras_ns: field("t_ras_ns")?,
        t_rcd_ns: field("t_rcd_ns")?,
        t_cas_ns: field("t_cas_ns")?,
        t_wr_ns: field("t_wr_ns")?,
        t_rp_ns: field("t_rp_ns")?,
        t_ccd_ns: field("t_ccd_ns")?,
    })
}

/// `stacks`, `mcs` and `ranks` resolved together: `stacks` is either a
/// count (controllers and ranks split evenly) or an explicit per-stack list
/// of `{mcs, ranks}` groups (uniform, summed into the machine totals, and
/// exclusive with top-level `mcs`/`ranks`).
fn parse_stacks(m: &[(String, Json)]) -> Result<(u16, u16, u16), ScenarioError> {
    let scalar_mcs = match get(m, "mcs") {
        None => None,
        Some(v) => Some(uint(v, "machine.memory.mcs", 1, 1 << 12)? as u16),
    };
    let scalar_ranks = match get(m, "ranks") {
        None => None,
        Some(v) => Some(uint(v, "machine.memory.ranks", 1, 1 << 12)? as u16),
    };
    match get(m, "stacks") {
        None => Ok((1, scalar_mcs.unwrap_or(1), scalar_ranks.unwrap_or(8))),
        Some(v @ Json::Num(_)) => {
            let stacks = uint(v, "machine.memory.stacks", 1, 1 << 12)? as u16;
            Ok((
                stacks,
                scalar_mcs.unwrap_or(stacks),
                scalar_ranks.unwrap_or(8),
            ))
        }
        Some(Json::Arr(groups)) => {
            if scalar_mcs.is_some() {
                return Err(schema_err(
                    "machine.memory.mcs",
                    "conflicts with the explicit per-stack list (stack groups already \
                     define the controller count)",
                ));
            }
            if scalar_ranks.is_some() {
                return Err(schema_err(
                    "machine.memory.ranks",
                    "conflicts with the explicit per-stack list (stack groups already \
                     define the rank count)",
                ));
            }
            if groups.is_empty() {
                return Err(schema_err("machine.memory.stacks", "must not be empty"));
            }
            let mut parsed = Vec::with_capacity(groups.len());
            for (i, g) in groups.iter().enumerate() {
                let path = format!("machine.memory.stacks[{i}]");
                let gm = obj(g, &path)?;
                check_keys(gm, "machine.memory.stacks[]", &path)?;
                let mcs = match get(gm, "mcs") {
                    None => {
                        return Err(schema_err(format!("{path}.mcs"), "required key is missing"))
                    }
                    Some(v) => uint(v, &format!("{path}.mcs"), 1, 1 << 12)? as u16,
                };
                let ranks = match get(gm, "ranks") {
                    None => {
                        return Err(schema_err(
                            format!("{path}.ranks"),
                            "required key is missing",
                        ))
                    }
                    Some(v) => uint(v, &format!("{path}.ranks"), 1, 1 << 12)? as u16,
                };
                parsed.push((mcs, ranks));
            }
            if parsed.iter().any(|&g| g != parsed[0]) {
                return Err(schema_err(
                    "machine.memory.stacks",
                    "stack groups must be uniform (all stacks share one timing model)",
                ));
            }
            if parsed.len() > (1 << 12) {
                return Err(schema_err(
                    "machine.memory.stacks",
                    format!("must be between 1 and {}", 1 << 12),
                ));
            }
            let stacks = parsed.len() as u16;
            let total_mcs = parsed[0].0.checked_mul(stacks).ok_or_else(|| {
                schema_err(
                    "machine.memory.stacks",
                    "stack list multiplies out of range",
                )
            })?;
            let total_ranks = parsed[0].1.checked_mul(stacks).ok_or_else(|| {
                schema_err(
                    "machine.memory.stacks",
                    "stack list multiplies out of range",
                )
            })?;
            Ok((stacks, total_mcs, total_ranks))
        }
        Some(_) => Err(schema_err(
            "machine.memory.stacks",
            "expected a stack count or an array of {mcs, ranks} groups",
        )),
    }
}

fn parse_memory(m: &[(String, Json)]) -> Result<MemorySystemConfig, ScenarioError> {
    check_keys(m, "machine.memory", "machine.memory")?;
    let (stacks, mcs, ranks) = parse_stacks(m)?;
    Ok(MemorySystemConfig {
        kind: match get(m, "kind") {
            None => MemoryKind::OffChip2D,
            Some(v) => {
                let s = str_val(v, "machine.memory.kind")?;
                MemoryKind::from_name(s).ok_or_else(|| {
                    schema_err(
                        "machine.memory.kind",
                        format!(
                            "unknown name \"{s}\" (expected one of: off-chip-2d, stacked-3d, \
                             true-3d-split)"
                        ),
                    )
                })?
            }
        },
        total_bytes: match get(m, "total_bytes") {
            None => 8 << 30,
            Some(v) => uint(v, "machine.memory.total_bytes", 1 << 20, 1 << 50)?,
        },
        ranks,
        banks_per_rank: match get(m, "banks_per_rank") {
            None => 8,
            Some(v) => uint(v, "machine.memory.banks_per_rank", 1, 1 << 12)? as u16,
        },
        mcs,
        stacks,
        row_buffer_entries: match get(m, "row_buffer_entries") {
            None => 1,
            Some(v) => uint(v, "machine.memory.row_buffer_entries", 1, 1024)? as usize,
        },
        timing: match get(m, "timing") {
            None => DramTiming::COMMODITY_2D,
            Some(v) => parse_timing(v)?,
        },
        refresh: match get(m, "refresh_ms") {
            None => RefreshConfig::OFF_CHIP,
            Some(Json::Null) => RefreshConfig::DISABLED,
            Some(v) => RefreshConfig {
                period_ms: Some(pos_num(v, "machine.memory.refresh_ms")?),
            },
        },
        smart_refresh: match get(m, "smart_refresh") {
            None => false,
            Some(v) => bool_val(v, "machine.memory.smart_refresh")?,
        },
        page_policy: match get(m, "page_policy") {
            None => stacksim_dram::PagePolicy::Open,
            Some(v) => {
                let s = str_val(v, "machine.memory.page_policy")?;
                stacksim_dram::PagePolicy::from_name(s).ok_or_else(|| {
                    schema_err(
                        "machine.memory.page_policy",
                        format!("unknown name \"{s}\" (expected one of: open, closed)"),
                    )
                })?
            }
        },
        bus_width_bytes: match get(m, "bus_width_bytes") {
            None => 8,
            Some(v) => uint(v, "machine.memory.bus_width_bytes", 1, 1 << 16)? as u32,
        },
        bus_clock_divisor: match get(m, "bus_clock_divisor") {
            None => 2,
            Some(v) => uint(v, "machine.memory.bus_clock_divisor", 1, 1 << 20)?,
        },
        mc_clock_divisor: match get(m, "mc_clock_divisor") {
            None => 4,
            Some(v) => uint(v, "machine.memory.mc_clock_divisor", 1, 1 << 20)?,
        },
        path_latency: match get(m, "path_latency") {
            // 40 cycles = the 12 ns package/PCB path at 3.333 GHz.
            None => Cycles::new(40),
            Some(v) => Cycles::new(uint(v, "machine.memory.path_latency", 0, 1 << 30)?),
        },
        critical_word_first: match get(m, "critical_word_first") {
            None => true,
            Some(v) => bool_val(v, "machine.memory.critical_word_first")?,
        },
        mrq_total: match get(m, "mrq_total") {
            None => 32,
            Some(v) => uint(v, "machine.memory.mrq_total", 1, 1 << 20)? as usize,
        },
        policy: match get(m, "scheduler") {
            None => SchedulerPolicy::FrFcfs,
            Some(v) => {
                let s = str_val(v, "machine.memory.scheduler")?;
                SchedulerPolicy::from_name(s).ok_or_else(|| {
                    schema_err(
                        "machine.memory.scheduler",
                        format!("unknown name \"{s}\" (expected one of: fifo, fr-fcfs)"),
                    )
                })?
            }
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    fn scenario(machine: &str) -> Result<Scenario, ScenarioError> {
        Scenario::from_str(&format!(
            r#"{{"schema": "stacksim-scenario/1", "name": "t", "machine": {machine}}}"#
        ))
    }

    #[test]
    fn empty_machine_is_the_2d_baseline() {
        assert_eq!(scenario("{}").unwrap().config, configs::cfg_2d());
    }

    #[test]
    fn unknown_keys_rejected_with_path() {
        let err = scenario(r#"{"l2": {"frobnicate": 1}}"#).unwrap_err();
        assert_eq!(
            err.to_string(),
            "scenario key \"machine.l2.frobnicate\": unknown key"
        );
        let err = scenario(r#"{"coars": 8}"#).unwrap_err();
        assert_eq!(
            err.to_string(),
            "scenario key \"machine.coars\": unknown key"
        );
    }

    #[test]
    fn out_of_range_rejected_with_bounds() {
        let err = scenario(r#"{"cores": 0}"#).unwrap_err();
        assert_eq!(
            err.to_string(),
            "scenario key \"machine.cores\": must be between 1 and 1024"
        );
        let err = scenario(r#"{"cores": 2.5}"#).unwrap_err();
        assert_eq!(
            err.to_string(),
            "scenario key \"machine.cores\": expected a non-negative integer"
        );
    }

    #[test]
    fn schema_and_name_required() {
        let err = Scenario::from_str(r#"{"name": "x"}"#).unwrap_err();
        assert_eq!(
            err.to_string(),
            "scenario key \"schema\": required key is missing"
        );
        let err =
            Scenario::from_str(r#"{"schema": "stacksim-scenario/2", "name": "x"}"#).unwrap_err();
        assert_eq!(
            err.to_string(),
            "scenario key \"schema\": expected \"stacksim-scenario/1\""
        );
        let err = Scenario::from_str(r#"{"schema": "stacksim-scenario/1"}"#).unwrap_err();
        assert_eq!(
            err.to_string(),
            "scenario key \"name\": required key is missing"
        );
    }

    #[test]
    fn duplicate_keys_rejected() {
        let err = scenario(r#"{"cores": 4, "cores": 8}"#).unwrap_err();
        assert_eq!(
            err.to_string(),
            "scenario key \"machine.cores\": duplicate key"
        );
    }

    #[test]
    fn per_core_heterogeneity_parses() {
        let s = scenario(
            r#"{"cores": 2, "per_core": [
                {"nextline_degree": 2},
                {"stride_entries": 0}
            ]}"#,
        )
        .unwrap();
        assert_eq!(s.config.per_core.len(), 2);
        assert_eq!(s.config.per_core[0].nextline_degree, 2);
        assert_eq!(s.config.per_core[1].stride_entries, 0);
        assert_eq!(s.config.core_for(1).stride_entries, 0);
    }

    #[test]
    fn per_core_length_mismatch_rejected_by_validation() {
        let err = scenario(r#"{"cores": 4, "per_core": [{}]}"#).unwrap_err();
        assert!(matches!(err, ScenarioError::Config(_)), "{err}");
        assert_eq!(
            err.to_string(),
            "scenario machine is inconsistent: invalid configuration: \
             1 per-core configs for 4 cores"
        );
    }

    #[test]
    fn stack_groups_define_totals() {
        let s = scenario(
            r#"{"l2": {"interleave": "page"},
                "memory": {"stacks": [{"mcs": 2, "ranks": 8}, {"mcs": 2, "ranks": 8}]}}"#,
        )
        .unwrap();
        assert_eq!(s.config.memory.stacks, 2);
        assert_eq!(s.config.memory.mcs, 4);
        assert_eq!(s.config.memory.ranks, 16);
    }

    #[test]
    fn stack_groups_conflict_with_scalar_mcs() {
        let err =
            scenario(r#"{"memory": {"mcs": 4, "stacks": [{"mcs": 2, "ranks": 8}]}}"#).unwrap_err();
        assert!(
            err.to_string()
                .starts_with("scenario key \"machine.memory.mcs\": conflicts"),
            "{err}"
        );
    }

    #[test]
    fn nonuniform_stack_groups_rejected() {
        let err =
            scenario(r#"{"memory": {"stacks": [{"mcs": 2, "ranks": 8}, {"mcs": 1, "ranks": 8}]}}"#)
                .unwrap_err();
        assert_eq!(
            err.to_string(),
            "scenario key \"machine.memory.stacks\": stack groups must be uniform \
             (all stacks share one timing model)"
        );
    }

    #[test]
    fn hash_is_stable_across_key_reordering() {
        let a = Scenario::from_str(
            r#"{"schema": "stacksim-scenario/1", "name": "a",
                "machine": {"cores": 8, "memory": {"mcs": 2, "kind": "stacked-3d"}}}"#,
        )
        .unwrap();
        let b = Scenario::from_str(
            r#"{"name": "b-different-name", "schema": "stacksim-scenario/1",
                "machine": {"memory": {"kind": "stacked-3d", "mcs": 2}, "cores": 8}}"#,
        )
        .unwrap();
        assert_eq!(a.hash(), b.hash());
        assert_ne!(
            a.hash(),
            Scenario::from_str(
                r#"{"schema": "stacksim-scenario/1", "name": "a", "machine": {"cores": 8}}"#,
            )
            .unwrap()
            .hash()
        );
    }

    #[test]
    fn hash_matches_constructor_twin() {
        let s = scenario(r#"{}"#).unwrap();
        assert_eq!(s.hash(), ScenarioHash::of(&configs::cfg_2d()));
        assert_ne!(s.hash(), ScenarioHash::of(&configs::cfg_3d()));
    }

    #[test]
    fn accepted_keys_cover_the_parser() {
        // Setting every leaf key must parse (spot the table drifting from
        // the parser in the accept direction).
        let s = scenario(
            r#"{
                "cores": 8,
                "core_hz": 3.333e9,
                "core": {
                    "issue_width": 4, "commit_width": 4, "window": 96,
                    "l1_mshrs": 8, "nextline_degree": 1, "stride_entries": 64,
                    "dl1": {"size_bytes": 24576, "associativity": 12},
                    "branch": "tage-4kb"
                },
                "per_core": [{}, {}, {}, {}, {}, {}, {}, {}],
                "l2": {
                    "size_bytes": 12582912, "associativity": 24, "banks": 16,
                    "latency": 9, "interleave": "page", "prefetch": true
                },
                "mshr": {
                    "kind": "vbf", "total_entries": 16,
                    "dynamic": {"sample_cycles": 50000, "apply_cycles": 2000000,
                                "divisors": [1, 2, 4]}
                },
                "vm": {"entries": 64, "associativity": 4, "walk_latency": 30},
                "interconnect": {"hop_latency": 2},
                "memory": {
                    "kind": "true-3d-split", "total_bytes": 8589934592,
                    "banks_per_rank": 8,
                    "stacks": [{"mcs": 2, "ranks": 8}, {"mcs": 2, "ranks": 8}],
                    "row_buffer_entries": 4,
                    "timing": {"t_ras_ns": 24.3, "t_rcd_ns": 8.1, "t_cas_ns": 8.1,
                               "t_wr_ns": 8.1, "t_rp_ns": 8.1, "t_ccd_ns": 2.025},
                    "refresh_ms": 32.0, "smart_refresh": true, "page_policy": "open",
                    "bus_width_bytes": 64, "bus_clock_divisor": 1,
                    "mc_clock_divisor": 1, "path_latency": 0,
                    "critical_word_first": true, "mrq_total": 32,
                    "scheduler": "fr-fcfs"
                }
            }"#,
        )
        .unwrap();
        assert_eq!(s.config.cores, 8);
        assert_eq!(s.config.memory.stacks, 2);
        assert_eq!(s.config.interconnect.hop_latency, Cycles::new(2));
    }

    #[test]
    fn vm_null_disables_translation() {
        let s = scenario(r#"{"vm": null}"#).unwrap();
        assert!(s.config.vm.is_none());
    }

    #[test]
    fn refresh_null_disables_refresh() {
        let s = scenario(r#"{"memory": {"refresh_ms": null}}"#).unwrap();
        assert_eq!(s.config.memory.refresh, RefreshConfig::DISABLED);
    }

    #[test]
    fn from_path_reports_missing_file() {
        let err = Scenario::from_path(Path::new("/nonexistent/x.json")).unwrap_err();
        assert!(matches!(err, ScenarioError::Io { .. }));
    }
}
