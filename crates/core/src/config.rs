//! Whole-machine configuration.

use stacksim_cache::CacheConfig;
use stacksim_cpu::CoreConfig;
use stacksim_memctrl::SchedulerPolicy;
use stacksim_mshr::{MshrKind, TunerConfig};
use stacksim_types::{
    ConfigError, Cycles, DramTiming, InterleaveGranularity, MemoryGeometry, MemoryKind,
    RefreshConfig,
};
use stacksim_vm::TlbConfig;

/// Core→MC interconnect latency model.
///
/// The paper's quad-core floorplan puts every L2 bank adjacent to its MC, so
/// the baseline machines model no on-die distance. Larger scenario-described
/// machines (8/16 cores, multiple stacks) can charge a simple per-hop cost:
/// cores sit on a line at slots `0..cores`, MC `j` sits at slot
/// `j·cores/mcs`, and a request from core `i` to MC `j` pays
/// `hop_latency × |i − slot(j)|` extra cycles on the request path (demand
/// and L1-prefetch misses, L1 writebacks). L2-originated traffic (L2
/// prefetches, victim writebacks) is charged nothing — the L2 bank sits with
/// its MC. The default of zero hops reproduces the paper's machines exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct InterconnectConfig {
    /// Extra one-way latency per hop of core→MC distance (zero = the
    /// paper's adjacency assumption).
    pub hop_latency: Cycles,
}

impl InterconnectConfig {
    /// Cycles a request from `core` pays to reach memory controller `mc` on
    /// a machine with `cores` cores and `mcs` controllers.
    ///
    /// # Examples
    ///
    /// ```
    /// use stacksim::config::InterconnectConfig;
    /// use stacksim_types::Cycles;
    ///
    /// let ic = InterconnectConfig { hop_latency: Cycles::new(2) };
    /// // 8 cores, 2 MCs: MC1 sits at slot 4, so core 6 is 2 hops away.
    /// assert_eq!(ic.cost(6, 1, 8, 2), Cycles::new(4));
    /// assert_eq!(InterconnectConfig::default().cost(6, 1, 8, 2), Cycles::ZERO);
    /// ```
    pub fn cost(&self, core: usize, mc: u16, cores: usize, mcs: u16) -> Cycles {
        if self.hop_latency == Cycles::ZERO {
            return Cycles::ZERO;
        }
        let slot = (mc as usize * cores) / mcs as usize;
        let hops = core.abs_diff(slot) as u64;
        Cycles::new(self.hop_latency.raw() * hops)
    }
}

/// Configuration of the main-memory system (DRAM + controllers + buses).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemorySystemConfig {
    /// Physical implementation (off-chip, stacked, true-3D).
    pub kind: MemoryKind,
    /// Total physical memory (8 GB in the paper).
    pub total_bytes: u64,
    /// Global rank count (8 baseline, 16 aggressive).
    pub ranks: u16,
    /// Banks per rank (8).
    pub banks_per_rank: u16,
    /// Number of memory controllers (1, 2 or 4).
    pub mcs: u16,
    /// Number of physical DRAM stacks the controllers are grouped across
    /// (1 in the paper). Controllers are split evenly: MC `j` belongs to
    /// stack `j / (mcs/stacks)`, and ranks follow their controller. Purely
    /// a topology grouping today — all stacks share one timing set — but it
    /// is validated (`mcs % stacks == 0`) and part of the scenario hash.
    pub stacks: u16,
    /// Row-buffer cache entries per bank (1 conventional, up to 4).
    pub row_buffer_entries: usize,
    /// DRAM array timing.
    pub timing: DramTiming,
    /// Refresh policy (64 ms off-chip, 32 ms on-stack).
    pub refresh: RefreshConfig,
    /// Smart Refresh (Ghosh & Lee): skip refreshing rows whose recent
    /// activation already restored them — the refresh-energy optimization
    /// the paper cites for hot 3D stacks (§2.4).
    pub smart_refresh: bool,
    /// Row management policy (open-page in the paper — what FR-FCFS and
    /// the row-buffer caches exploit).
    pub page_policy: stacksim_dram::PagePolicy,
    /// Data bus width between MC and DRAM, bytes per transfer edge.
    pub bus_width_bytes: u32,
    /// Bus clock as a divisor of the core clock (2 for the 1.66 GT/s FSB,
    /// 1 on-stack).
    pub bus_clock_divisor: u64,
    /// MC command clock as a divisor of the core clock (4 for the 833 MHz
    /// off-chip controller, 1 on-stack).
    pub mc_clock_divisor: u64,
    /// Extra one-way wire/package latency to reach memory (package pins +
    /// PCB for 2D; zero on-stack).
    pub path_latency: Cycles,
    /// Critical-word-first delivery of read data (the demanded word wakes
    /// waiters after the first bus beat; §3 discusses why wide buses help
    /// multi-cores despite CWF).
    pub critical_word_first: bool,
    /// Aggregate memory-request-queue capacity across all MCs (32 in the
    /// paper, split evenly).
    pub mrq_total: usize,
    /// Request arbitration policy.
    pub policy: SchedulerPolicy,
}

/// Configuration of the L2 miss-handling architecture.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MshrSystemConfig {
    /// MSHR organization.
    pub kind: MshrKind,
    /// Aggregate L2 MSHR entries across all banks (8 baseline; Figure 7
    /// scales it ×2/×4/×8). Banks align one-to-one with MCs.
    pub total_entries: usize,
    /// Dynamic capacity tuning (§5.1), if enabled.
    pub dynamic: Option<TunerConfig>,
}

/// Configuration of the whole simulated machine.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (4 in the paper).
    pub cores: usize,
    /// Per-core microarchitecture shared by every core unless overridden
    /// per core via [`per_core`](SystemConfig::per_core).
    pub core: CoreConfig,
    /// Heterogeneous per-core overrides. Empty (the default and the paper's
    /// machines) means every core uses [`core`](SystemConfig::core);
    /// otherwise the vector must hold exactly [`cores`](SystemConfig::cores)
    /// entries and core `i` is built from `per_core[i]`.
    pub per_core: Vec<CoreConfig>,
    /// Core clock frequency, Hz (3.333 GHz).
    pub core_hz: f64,
    /// Shared L2 geometry (12 MB / 24-way).
    pub l2: CacheConfig,
    /// L2 bank count (16).
    pub l2_banks: u16,
    /// L2 access latency (9 cycles).
    pub l2_latency: Cycles,
    /// L2 bank interleaving granularity (line commodity, page streamlined).
    pub l2_interleave: InterleaveGranularity,
    /// Whether the L2-level next-line + stride prefetchers are active.
    pub l2_prefetch: bool,
    /// L2 miss-handling architecture.
    pub mshr: MshrSystemConfig,
    /// Virtual memory: per-core DTLB geometry plus the machine-wide FCFS
    /// page allocator (paper §2.4). `None` disables translation — programs
    /// then emit physical addresses directly from disjoint regions.
    pub vm: Option<TlbConfig>,
    /// Core→MC interconnect latency model (zero-hop by default).
    pub interconnect: InterconnectConfig,
    /// Main-memory system.
    pub memory: MemorySystemConfig,
}

// `core_hz` is a fixed design frequency (never NaN), so bitwise float
// identity is a sound equality. With it, a `SystemConfig` is usable as a
// memoization key over real configuration identity (the tentpole run
// cache), not a pointer or a name.
impl Eq for SystemConfig {}

impl std::hash::Hash for SystemConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let SystemConfig {
            cores,
            core,
            per_core,
            core_hz,
            l2,
            l2_banks,
            l2_latency,
            l2_interleave,
            l2_prefetch,
            mshr,
            vm,
            interconnect,
            memory,
        } = self;
        cores.hash(state);
        core.hash(state);
        per_core.hash(state);
        core_hz.to_bits().hash(state);
        l2.hash(state);
        l2_banks.hash(state);
        l2_latency.hash(state);
        l2_interleave.hash(state);
        l2_prefetch.hash(state);
        mshr.hash(state);
        vm.hash(state);
        interconnect.hash(state);
        memory.hash(state);
    }
}

impl SystemConfig {
    /// Derives the [`MemoryGeometry`] for the address mapper.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the geometry is inconsistent.
    #[must_use = "the derived geometry or the configuration problem"]
    pub fn geometry(&self) -> Result<MemoryGeometry, ConfigError> {
        MemoryGeometry::new(
            self.memory.total_bytes,
            self.memory.ranks,
            self.memory.banks_per_rank,
            4096,
            self.memory.mcs,
        )
    }

    /// Validates cross-component consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for: zero cores, a per-core override list
    /// whose length does not match the core count, a non-positive core
    /// clock, zero stacks or MCs not divisible among stacks,
    /// L2 banks not divisible by the MC count (the streamlined floorplan
    /// needs the alignment), MSHR entries not divisible by the MC count, an
    /// MRQ smaller than the MC count, an invalid memory geometry, zero row
    /// buffers per bank, or a refresh period that is non-positive or rounds
    /// to zero cycles per row (either would abort bank construction).
    #[must_use = "the Err is the configuration problem; dropping it defeats validation"]
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("need at least one core"));
        }
        if !self.per_core.is_empty() && self.per_core.len() != self.cores {
            return Err(ConfigError::new(format!(
                "{} per-core configs for {} cores",
                self.per_core.len(),
                self.cores
            )));
        }
        if let Err(msg) = self.core.check() {
            return Err(ConfigError::new(format!("core model: {msg}")));
        }
        for (i, c) in self.per_core.iter().enumerate() {
            if let Err(msg) = c.check() {
                return Err(ConfigError::new(format!("core {i}: {msg}")));
            }
        }
        if self.core_hz.is_nan() || self.core_hz <= 0.0 {
            return Err(ConfigError::new("core clock must be positive"));
        }
        if self.memory.stacks == 0 {
            return Err(ConfigError::new("need at least one stack"));
        }
        if !self.memory.mcs.is_multiple_of(self.memory.stacks) {
            return Err(ConfigError::new(format!(
                "{} MCs do not divide among {} stacks",
                self.memory.mcs, self.memory.stacks
            )));
        }
        let geometry = self.geometry()?;
        if self.memory.row_buffer_entries == 0 {
            return Err(ConfigError::new("need at least one row buffer per bank"));
        }
        if let Some(period) = self.memory.refresh.period_ms {
            if period.is_nan() || period <= 0.0 {
                return Err(ConfigError::new("refresh period must be positive"));
            }
            let interval = self
                .memory
                .refresh
                .row_interval(geometry.rows_per_bank(), self.core_hz);
            if interval.is_some_and(|i| i.raw() == 0) {
                return Err(ConfigError::new(
                    "refresh period rounds to zero cycles per row",
                ));
            }
        }
        let mcs = self.memory.mcs as usize;
        if !(self.l2_banks as usize).is_multiple_of(mcs) {
            return Err(ConfigError::new(format!(
                "{} L2 banks do not align with {} MCs",
                self.l2_banks, mcs
            )));
        }
        if !self.mshr.total_entries.is_multiple_of(mcs) || self.mshr.total_entries == 0 {
            return Err(ConfigError::new(format!(
                "{} MSHR entries do not divide among {} banks",
                self.mshr.total_entries, mcs
            )));
        }
        if self.memory.mrq_total < mcs {
            return Err(ConfigError::new(
                "memory request queue smaller than MC count",
            ));
        }
        if self.memory.bus_width_bytes == 0
            || self.memory.bus_clock_divisor == 0
            || self.memory.mc_clock_divisor == 0
        {
            return Err(ConfigError::new("bus/MC clocking must be non-zero"));
        }
        if let Some(tlb) = &self.vm {
            if tlb.associativity == 0 || tlb.entries % tlb.associativity != 0 {
                return Err(ConfigError::new("TLB entries must divide into whole sets"));
            }
        }
        Ok(())
    }

    /// The microarchitecture of core `i`: the per-core override when
    /// heterogeneous, the shared [`core`](SystemConfig::core) otherwise.
    pub fn core_for(&self, i: usize) -> &CoreConfig {
        if self.per_core.is_empty() {
            &self.core
        } else {
            &self.per_core[i]
        }
    }

    /// MSHR entries per bank (banks align with MCs).
    pub fn mshr_entries_per_bank(&self) -> usize {
        self.mshr.total_entries / self.memory.mcs as usize
    }

    /// MRQ entries per controller.
    pub fn mrq_per_mc(&self) -> usize {
        self.memory.mrq_total / self.memory.mcs as usize
    }

    /// Returns a copy with the aggregate L2 MSHR capacity multiplied by
    /// `factor` (the Figure 7 sweep).
    pub fn with_mshr_scale(&self, factor: usize) -> SystemConfig {
        let mut cfg = self.clone();
        cfg.mshr.total_entries = self.mshr.total_entries * factor;
        cfg
    }

    /// Returns a copy using the given MSHR organization.
    pub fn with_mshr_kind(&self, kind: MshrKind) -> SystemConfig {
        let mut cfg = self.clone();
        cfg.mshr.kind = kind;
        cfg
    }

    /// Returns a copy with dynamic MSHR capacity tuning enabled.
    pub fn with_dynamic_mshr(&self, tuner: TunerConfig) -> SystemConfig {
        let mut cfg = self.clone();
        cfg.mshr.dynamic = Some(tuner);
        cfg
    }

    /// Returns a copy with `extra_bytes` added to the L2 (the Figure 6(a)
    /// +512 KB / +1 MB alternatives).
    pub fn with_extra_l2(&self, extra_bytes: u64) -> SystemConfig {
        let mut cfg = self.clone();
        // Keep a whole number of sets per bank: round the extra capacity to
        // a multiple of line size x associativity x bank count.
        let quantum = 64 * self.l2.associativity as u64 * self.l2_banks as u64;
        let extra = (extra_bytes / quantum) * quantum;
        cfg.l2 = self.l2.grown_by(extra);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use crate::configs;

    #[test]
    fn named_configs_validate() {
        for cfg in [
            configs::cfg_2d(),
            configs::cfg_3d(),
            configs::cfg_3d_wide(),
            configs::cfg_3d_fast(),
            configs::cfg_aggressive(2, 8, 4),
            configs::cfg_aggressive(4, 16, 4),
        ] {
            cfg.validate().expect("named configuration must validate");
        }
    }

    #[test]
    fn misaligned_mcs_rejected() {
        let mut cfg = configs::cfg_3d_fast();
        cfg.memory.mcs = 3; // 8 ranks % 3 != 0
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn mshr_division_checked() {
        let mut cfg = configs::cfg_aggressive(4, 16, 1);
        cfg.mshr.total_entries = 6; // not divisible by 4
        assert!(cfg.validate().is_err());
        cfg.mshr.total_entries = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn degenerate_dram_parameters_rejected() {
        let mut cfg = configs::cfg_2d();
        cfg.memory.row_buffer_entries = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = configs::cfg_2d();
        cfg.memory.refresh.period_ms = Some(0.0);
        assert!(cfg.validate().is_err());
        let mut cfg = configs::cfg_2d();
        // A period this short rounds to zero cycles per row.
        cfg.memory.refresh.period_ms = Some(1e-9);
        assert!(cfg.validate().is_err());
        let mut cfg = configs::cfg_2d();
        cfg.core_hz = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn scaling_helpers() {
        let cfg = configs::cfg_aggressive(4, 16, 4);
        assert_eq!(
            cfg.with_mshr_scale(8).mshr.total_entries,
            cfg.mshr.total_entries * 8
        );
        assert_eq!(cfg.mshr_entries_per_bank() * 4, cfg.mshr.total_entries);
        assert_eq!(cfg.mrq_per_mc(), 8);
        let grown = cfg.with_extra_l2(512 << 10);
        assert!(grown.l2.size_bytes > cfg.l2.size_bytes);
        grown.validate().unwrap();
    }

    #[test]
    fn extra_l2_keeps_whole_sets() {
        let cfg = configs::cfg_3d_fast().with_extra_l2(1 << 20);
        // Per-bank capacity must still be a whole number of sets.
        let per_bank = cfg.l2.size_bytes / cfg.l2_banks as u64;
        assert_eq!(per_bank % (64 * cfg.l2.associativity as u64), 0);
    }
}
