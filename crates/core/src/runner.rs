//! The measurement harness: warmup, fixed measurement window, HMIPC.
//!
//! The paper warms the caches, then simulates a fixed instruction budget per
//! program, freezing each program's statistics when its budget is reached
//! while execution continues so the mix keeps competing for shared
//! resources (§2.4). For steady-state synthetic programs an equivalent and
//! simpler scheme is a fixed measurement *window*: warm up for
//! `warmup_cycles`, snapshot per-core committed counts, run
//! `measure_cycles`, and report each core's ∆committed / window as its IPC.
//! Multi-programmed throughput is the harmonic mean of the four per-core
//! IPCs (HMIPC, Table 2(b)).

use stacksim_stats::{harmonic_mean, StatRecord};
use stacksim_types::ConfigError;
use stacksim_workload::Mix;

use crate::config::SystemConfig;
use crate::system::System;

/// Length and seeding of one simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunConfig {
    /// Cache/branch warmup cycles before measurement starts.
    pub warmup_cycles: u64,
    /// Measured window length in cycles.
    pub measure_cycles: u64,
    /// Seed for the workload generators.
    pub seed: u64,
}

impl RunConfig {
    /// A short window for unit tests (fast, still past the warmup knee).
    pub fn quick() -> RunConfig {
        RunConfig { warmup_cycles: 10_000, measure_cycles: 60_000, seed: 0xC0FFEE }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { warmup_cycles: 30_000, measure_cycles: 250_000, seed: 0xC0FFEE }
    }
}

/// The outcome of one mix × configuration run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The mix that ran.
    pub mix: &'static str,
    /// Per-core IPC over the measured window.
    pub per_core_ipc: Vec<f64>,
    /// Harmonic-mean IPC across the mix's programs.
    pub hmipc: f64,
    /// µops committed per core during the window.
    pub committed: Vec<u64>,
    /// Full machine statistics at the end of the run.
    pub stats: StatRecord,
}

impl RunResult {
    /// Speedup of this run over a baseline run of the same mix.
    ///
    /// # Panics
    ///
    /// Panics if the runs are for different mixes.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        assert_eq!(self.mix, baseline.mix, "speedup across different mixes");
        self.hmipc / baseline.hmipc
    }
}

/// Runs one mix on one configuration.
///
/// # Errors
///
/// Returns [`ConfigError`] if the configuration is inconsistent.
pub fn run_mix(cfg: &SystemConfig, mix: &Mix, run: &RunConfig) -> Result<RunResult, ConfigError> {
    let mut system = System::for_mix(cfg, mix, run.seed)?;
    system.run_cycles(run.warmup_cycles);
    let before: Vec<u64> = (0..cfg.cores).map(|i| system.core_committed(i)).collect();
    system.run_cycles(run.measure_cycles);
    let committed: Vec<u64> = (0..cfg.cores)
        .map(|i| system.core_committed(i) - before[i])
        .collect();
    let per_core_ipc: Vec<f64> = committed
        .iter()
        .map(|&c| (c.max(1)) as f64 / run.measure_cycles as f64)
        .collect();
    let hmipc = harmonic_mean(&per_core_ipc).expect("ipc values are positive");
    Ok(RunResult {
        mix: mix.name,
        per_core_ipc,
        hmipc,
        committed,
        stats: system.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn moderate_mix_outruns_stream_mix() {
        let cfg = configs::cfg_2d();
        let run = RunConfig::quick();
        let m1 = run_mix(&cfg, Mix::by_name("M1").unwrap(), &run).unwrap();
        let vh1 = run_mix(&cfg, Mix::by_name("VH1").unwrap(), &run).unwrap();
        assert!(
            m1.hmipc > 3.0 * vh1.hmipc,
            "moderate {} vs stream {}",
            m1.hmipc,
            vh1.hmipc
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = configs::cfg_3d_fast();
        let run = RunConfig::quick();
        let a = run_mix(&cfg, Mix::by_name("H2").unwrap(), &run).unwrap();
        let b = run_mix(&cfg, Mix::by_name("H2").unwrap(), &run).unwrap();
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.hmipc, b.hmipc);
    }

    #[test]
    fn speedup_over_baseline() {
        let run = RunConfig::quick();
        let mix = Mix::by_name("VH2").unwrap();
        let base = run_mix(&configs::cfg_2d(), mix, &run).unwrap();
        let fast = run_mix(&configs::cfg_3d_fast(), mix, &run).unwrap();
        let s = fast.speedup_over(&base);
        assert!(s > 1.2, "3D-fast should clearly beat 2D on streams: {s}");
    }

    #[test]
    #[should_panic(expected = "different mixes")]
    fn speedup_requires_same_mix() {
        let run = RunConfig::quick();
        let a = run_mix(&configs::cfg_2d(), Mix::by_name("M1").unwrap(), &run).unwrap();
        let b = run_mix(&configs::cfg_2d(), Mix::by_name("M2").unwrap(), &run).unwrap();
        let _ = a.speedup_over(&b);
    }
}
