//! The measurement harness: warmup, fixed measurement window, HMIPC.
//!
//! The paper warms the caches, then simulates a fixed instruction budget per
//! program, freezing each program's statistics when its budget is reached
//! while execution continues so the mix keeps competing for shared
//! resources (§2.4). For steady-state synthetic programs an equivalent and
//! simpler scheme is a fixed measurement *window*: warm up for
//! `warmup_cycles`, snapshot per-core committed counts, run
//! `measure_cycles`, and report each core's ∆committed / window as its IPC.
//! Multi-programmed throughput is the harmonic mean of the four per-core
//! IPCs (HMIPC, Table 2(b)).
//!
//! Each run is a pure function of `(SystemConfig, Mix, RunConfig)`: the
//! simulator is deterministic per seed and shares no state across runs.
//! That purity is what the parallel engine exploits — [`run_matrix`] fans
//! independent points across worker threads with bit-identical results to
//! a sequential loop, and [`run_mix_cached`] memoizes on the full
//! configuration identity so baselines shared between figures simulate
//! exactly once per process.

use core::fmt;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use stacksim_stats::{harmonic_mean, MetricsSink};
use stacksim_types::ConfigError;
use stacksim_workload::Mix;

use crate::config::SystemConfig;
use crate::scenario::ScenarioHash;
use crate::system::System;
use crate::trace::{Trace, TraceConfig};

/// Length, seeding and tracing of one simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunConfig {
    /// Cache/branch warmup cycles before measurement starts.
    pub warmup_cycles: u64,
    /// Measured window length in cycles.
    pub measure_cycles: u64,
    /// Seed for the workload generators.
    pub seed: u64,
    /// Event streams to record during the measured window (off by default).
    /// Part of the run identity, so traced and untraced runs of the same
    /// point never share a memo entry.
    pub trace: TraceConfig,
    /// Quiescence fast-forwarding (on by default): skip cycles in which
    /// the whole machine provably does nothing. Purely a simulator-speed
    /// knob — every simulated outcome is bit-identical either way — but
    /// part of the run identity so verification runs that disable it
    /// never alias a fast-forwarded memo entry.
    pub fast_forward: bool,
}

impl RunConfig {
    /// A short window for unit tests (fast, still past the warmup knee).
    pub fn quick() -> RunConfig {
        RunConfig {
            warmup_cycles: 10_000,
            measure_cycles: 60_000,
            seed: 0xC0FFEE,
            trace: TraceConfig::off(),
            fast_forward: true,
        }
    }

    /// This configuration with fast-forwarding disabled (full per-cycle
    /// simulation), for verifying that skipping changes nothing.
    pub fn tick_by_tick(mut self) -> RunConfig {
        self.fast_forward = false;
        self
    }

    /// This configuration with the given trace streams enabled.
    ///
    /// # Examples
    ///
    /// ```
    /// use stacksim::runner::RunConfig;
    /// use stacksim::trace::TraceConfig;
    ///
    /// let run = RunConfig::quick().with_trace(TraceConfig::all());
    /// assert!(run.trace.any());
    /// ```
    pub fn with_trace(mut self, trace: TraceConfig) -> RunConfig {
        self.trace = trace;
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warmup_cycles: 30_000,
            measure_cycles: 250_000,
            seed: 0xC0FFEE,
            trace: TraceConfig::off(),
            fast_forward: true,
        }
    }
}

/// The outcome of one mix × configuration run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The mix that ran.
    pub mix: &'static str,
    /// Per-core IPC over the measured window.
    pub per_core_ipc: Vec<f64>,
    /// Harmonic-mean IPC across the mix's programs.
    pub hmipc: f64,
    /// µops committed per core during the window.
    pub committed: Vec<u64>,
    /// Cores that committed *zero* µops during the window. Their IPC is
    /// floored to `1 / measure_cycles` in [`per_core_ipc`](Self::per_core_ipc)
    /// so the harmonic mean stays defined, but the floor is no longer
    /// silent: the affected cores are recorded here and warned on stderr.
    pub zero_commit_cores: Vec<usize>,
    /// Full machine statistics at the end of the run, as a hierarchical
    /// metrics tree (use [`MetricsSink::get`] with the same dotted names
    /// the old flat record used, e.g. `"l2.misses"`).
    pub stats: MetricsSink,
    /// Event streams recorded during the run; `None` unless
    /// [`RunConfig::trace`] enabled at least one stream.
    pub trace: Option<Trace>,
}

/// A speedup was requested between runs of *different* mixes, which is
/// meaningless — HMIPC ratios only compare like against like.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MixMismatch {
    /// Mix of the run the speedup was asked of.
    pub ours: &'static str,
    /// Mix of the baseline it was compared against.
    pub baseline: &'static str,
}

impl fmt::Display for MixMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "speedup across different mixes: {} vs baseline {}",
            self.ours, self.baseline
        )
    }
}

impl std::error::Error for MixMismatch {}

impl From<MixMismatch> for ConfigError {
    fn from(e: MixMismatch) -> ConfigError {
        ConfigError::new(e.to_string())
    }
}

impl RunResult {
    /// Speedup of this run over a baseline run of the same mix.
    ///
    /// # Errors
    ///
    /// Returns [`MixMismatch`] if the runs are for different mixes — a
    /// cross-mix HMIPC ratio compares unrelated workloads and is never
    /// meaningful, so the contract is an error, not a number.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use stacksim::configs;
    /// use stacksim::runner::{run_mix, RunConfig};
    /// use stacksim_workload::Mix;
    ///
    /// let run = RunConfig::quick();
    /// let mix = Mix::by_name("VH1").unwrap();
    /// let base = run_mix(&configs::cfg_2d(), mix, &run).unwrap();
    /// let fast = run_mix(&configs::cfg_3d_fast(), mix, &run).unwrap();
    /// let speedup = fast.speedup_over(&base).unwrap();
    /// assert!(speedup > 1.0);
    /// ```
    #[must_use = "the speedup ratio or the mix mismatch"]
    pub fn speedup_over(&self, baseline: &RunResult) -> Result<f64, MixMismatch> {
        if self.mix != baseline.mix {
            return Err(MixMismatch {
                ours: self.mix,
                baseline: baseline.mix,
            });
        }
        Ok(self.hmipc / baseline.hmipc)
    }
}

/// Runs one mix on one configuration.
///
/// # Errors
///
/// Returns [`ConfigError`] if the configuration is inconsistent.
#[must_use = "the run's results or the reason the configuration is invalid"]
pub fn run_mix(cfg: &SystemConfig, mix: &Mix, run: &RunConfig) -> Result<RunResult, ConfigError> {
    let mut system = System::for_mix(cfg, mix, run.seed)?;
    system.set_fast_forward(run.fast_forward);
    system.run_cycles(run.warmup_cycles);
    if run.trace.any() {
        // Trace the measured window only; warmup events are not evaluation
        // artifacts.
        system.enable_tracing(run.trace);
    }
    let before: Vec<u64> = (0..cfg.cores).map(|i| system.core_committed(i)).collect();
    system.run_cycles(run.measure_cycles);
    let committed: Vec<u64> = (0..cfg.cores)
        .map(|i| system.core_committed(i) - before[i])
        .collect();
    // A zero-commit core would make the harmonic mean undefined; floor it
    // to one committed µop but report the floor instead of hiding it.
    let zero_commit_cores: Vec<usize> = committed
        .iter()
        .enumerate()
        .filter(|(_, &c)| c == 0)
        .map(|(i, _)| i)
        .collect();
    if !zero_commit_cores.is_empty() {
        eprintln!(
            "warning: mix {} seed {:#x}: cores {:?} committed zero µops in the \
             {}-cycle window; their IPC is floored to 1/window for the harmonic mean",
            mix.name, run.seed, zero_commit_cores, run.measure_cycles
        );
    }
    let per_core_ipc: Vec<f64> = committed
        .iter()
        .map(|&c| (c.max(1)) as f64 / run.measure_cycles as f64)
        .collect();
    let hmipc = harmonic_mean(&per_core_ipc).expect("ipc values are positive"); // simlint::allow(P002, reason = "per-core IPCs are floored to 1/window, so the harmonic mean is defined")
    SKIPPED_CYCLES_TOTAL.fetch_add(system.skipped_cycles(), Ordering::Relaxed);
    TICKED_CYCLES_TOTAL.fetch_add(system.ticked_cycles(), Ordering::Relaxed);
    let trace = system.take_trace();
    Ok(RunResult {
        mix: mix.name,
        per_core_ipc,
        hmipc,
        committed,
        zero_commit_cores,
        stats: system.metrics(),
        trace,
    })
}

// ---------------------------------------------------------------------------
// Parallel engine
// ---------------------------------------------------------------------------

/// One point of a run matrix: a machine configuration, the mix to run on
/// it, and the run window.
pub type RunPoint = (SystemConfig, &'static Mix, RunConfig);

/// Process-wide totals of cycles fast-forwarded vs fully ticked across
/// every [`run_mix`] in this process. Memoized results do not re-count:
/// the totals measure simulation work actually performed.
static SKIPPED_CYCLES_TOTAL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static TICKED_CYCLES_TOTAL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// `(skipped, ticked)` cycle totals over every run simulated so far in
/// this process (fresh simulations only — memo hits add nothing). The
/// reproduce binary snapshots deltas around each experiment to report
/// per-experiment skipped-cycle fractions.
pub fn skip_totals() -> (u64, u64) {
    (
        SKIPPED_CYCLES_TOTAL.load(Ordering::Relaxed),
        TICKED_CYCLES_TOTAL.load(Ordering::Relaxed),
    )
}

/// Process-global default worker count set by `--jobs` (0 = unset).
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// A per-point progress callback: `(points_done, points_total)` for the
/// matrix currently running.
pub type ProgressFn = Box<dyn Fn(usize, usize) + Send + Sync>;

/// The process-wide progress reporter (see [`set_progress_reporter`]).
static PROGRESS: OnceLock<Mutex<Option<ProgressFn>>> = OnceLock::new();

fn progress_slot() -> &'static Mutex<Option<ProgressFn>> {
    PROGRESS.get_or_init(|| Mutex::new(None))
}

/// Installs (or, with `None`, removes) a process-wide callback invoked once
/// per completed matrix point by [`ParallelRunner::run_matrix`], with the
/// number of points finished so far and the matrix size. Callbacks may be
/// invoked from any worker thread; keep them cheap and re-entrant.
pub fn set_progress_reporter(reporter: Option<ProgressFn>) {
    *progress_slot().lock().expect("progress slot poisoned") = reporter; // simlint::allow(P002, reason = "slot mutex poisoning means a worker already panicked; propagating is correct")
}

fn report_progress(done: usize, total: usize) {
    if let Some(f) = progress_slot()
        .lock()
        .expect("progress slot poisoned") // simlint::allow(P002, reason = "slot mutex poisoning means a worker already panicked; propagating is correct")
        .as_ref()
    {
        f(done, total);
    }
}

/// Sets the process-wide default worker count used by [`ParallelRunner::new`]
/// (and therefore [`run_matrix`] / [`parallel_map`]). Overrides the
/// `RAYON_NUM_THREADS` environment variable; `0` restores auto-detection.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// Resolves the worker count: explicit [`set_default_jobs`] value, then the
/// `RAYON_NUM_THREADS` environment variable, then the machine's available
/// parallelism.
pub fn default_jobs() -> usize {
    let set = DEFAULT_JOBS.load(Ordering::Relaxed);
    if set > 0 {
        return set;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Fans independent work items across a fixed pool of worker threads,
/// returning the outputs **in input order** regardless of which worker
/// finished when.
///
/// Workers pull items off a shared atomic cursor, so uneven item costs
/// balance automatically. With `jobs == 1` (or one item) this degrades to
/// a plain in-place loop.
pub fn parallel_map<T, U, F>(jobs: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(out); // simlint::allow(P002, reason = "slot mutex poisoning means a worker already panicked; propagating is correct")
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned") // simlint::allow(P002, reason = "slot mutex poisoning means a worker already panicked; propagating is correct")
                .expect("worker filled every slot") // simlint::allow(P002, reason = "the scoped-thread join proves every worker filled its slot")
        })
        .collect()
}

/// The parallel experiment engine: fans independent [`run_mix`] points
/// across threads and deduplicates repeated points through the process-wide
/// memo cache.
#[derive(Clone, Copy, Debug)]
pub struct ParallelRunner {
    jobs: usize,
}

impl ParallelRunner {
    /// A runner with the default worker count (see [`set_default_jobs`]
    /// and `RAYON_NUM_THREADS`).
    pub fn new() -> ParallelRunner {
        ParallelRunner {
            jobs: default_jobs(),
        }
    }

    /// A runner with an explicit worker count (`0` means auto-detect).
    pub fn with_jobs(jobs: usize) -> ParallelRunner {
        if jobs == 0 {
            ParallelRunner::new()
        } else {
            ParallelRunner { jobs }
        }
    }

    /// The worker count this runner fans out to.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every point of the matrix, in parallel and memoized, returning
    /// results in input order.
    ///
    /// Scheduling cannot perturb the numbers: each point is a pure function
    /// of its `(config, mix, run)` triple, so the output is bit-identical
    /// to a sequential loop of [`run_mix`] calls over the same slice.
    ///
    /// # Errors
    ///
    /// Returns the first (by input order) [`ConfigError`] if any point has
    /// an inconsistent configuration.
    #[must_use = "the matrix results or the reason a configuration is invalid"]
    pub fn run_matrix(&self, points: &[RunPoint]) -> Result<Vec<Arc<RunResult>>, ConfigError> {
        let done = AtomicUsize::new(0);
        let total = points.len();
        parallel_map(self.jobs, points, |(cfg, mix, run)| {
            let result = run_mix_cached(cfg, mix, run);
            report_progress(done.fetch_add(1, Ordering::Relaxed) + 1, total);
            result
        })
        .into_iter()
        .collect()
    }
}

impl Default for ParallelRunner {
    fn default() -> Self {
        ParallelRunner::new()
    }
}

/// Runs a matrix of points on a default-configured [`ParallelRunner`].
///
/// # Errors
///
/// Returns the first (by input order) [`ConfigError`] if any point has an
/// inconsistent configuration.
#[must_use = "the matrix results or the reason a configuration is invalid"]
pub fn run_matrix(points: &[RunPoint]) -> Result<Vec<Arc<RunResult>>, ConfigError> {
    ParallelRunner::new().run_matrix(points)
}

/// Memo cache key: the machine's [`ScenarioHash`] leads, so a lookup
/// hashes one precomputed u64 instead of re-walking the whole
/// configuration; the full configuration stays in the key as the equality
/// backstop, so two machines colliding on the 64-bit digest still memoize
/// separately. This is the same digest `reproduce --scenario` prints,
/// making "one hash = one simulated machine" the process-wide contract.
#[derive(Clone, PartialEq, Eq)]
struct MemoKey {
    scenario: ScenarioHash,
    cfg: SystemConfig,
    mix: &'static str,
    run: RunConfig,
}

impl MemoKey {
    fn new(cfg: &SystemConfig, mix: &'static str, run: &RunConfig) -> MemoKey {
        MemoKey {
            scenario: ScenarioHash::of(cfg),
            cfg: cfg.clone(),
            mix,
            run: *run,
        }
    }
}

impl std::hash::Hash for MemoKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // `cfg` is deliberately omitted: `scenario` already digests it.
        self.scenario.hash(state);
        self.mix.hash(state);
        self.run.hash(state);
    }
}

/// A durable second-tier result cache consulted by [`run_mix_cached`]
/// after the in-process memo misses and before simulating.
///
/// The canonical implementation is `stacksim-store`'s on-disk
/// content-addressed store (see `docs/STORE.md`); the trait lives here so
/// the kernel crate depends only on the *shape* of a durable cache, never
/// on filesystem code. Implementations must be infallible from the
/// runner's point of view: a corrupt or unreadable entry is a `None`
/// (recompute), never a panic, and a failed persist must not fail the run.
pub trait ResultStore: Send + Sync {
    /// Returns the stored result for this exact `(cfg, mix, run)` point,
    /// or `None` to make the runner simulate it.
    fn load(&self, cfg: &SystemConfig, mix: &'static str, run: &RunConfig) -> Option<RunResult>;

    /// Persists a freshly simulated result for later processes.
    fn store(&self, cfg: &SystemConfig, mix: &'static str, run: &RunConfig, result: &RunResult);
}

/// The process-wide durable store, if one was installed (tier 2 of the
/// lookup; tier 1 is the in-process memo).
static RESULT_STORE: OnceLock<Mutex<Option<Arc<dyn ResultStore>>>> = OnceLock::new();

fn result_store_slot() -> &'static Mutex<Option<Arc<dyn ResultStore>>> {
    RESULT_STORE.get_or_init(|| Mutex::new(None))
}

/// Installs (or, with `None`, removes) the process-wide durable result
/// store. Once installed, every [`run_mix_cached`] miss of the in-process
/// memo consults the store before simulating, and every fresh simulation
/// is written through to it.
///
/// Traced runs ([`TraceConfig::any`]) bypass the store entirely: event
/// streams are not persisted, so serving a stored result for a traced
/// request would silently drop its streams.
pub fn set_result_store(store: Option<Arc<dyn ResultStore>>) {
    *result_store_slot().lock().expect("store slot poisoned") = store; // simlint::allow(P002, reason = "slot mutex poisoning means a worker already panicked; propagating is correct")
}

fn result_store() -> Option<Arc<dyn ResultStore>> {
    result_store_slot()
        .lock()
        .expect("store slot poisoned") // simlint::allow(P002, reason = "slot mutex poisoning means a worker already panicked; propagating is correct")
        .clone()
}

/// Process-wide tier accounting for [`run_mix_cached`] (see
/// [`tier_stats`]).
static STORE_HITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static STORE_MISSES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static SIMULATED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// `(store_hits, store_misses, simulated)` totals across every
/// [`run_mix_cached`] call in this process: points served from the durable
/// store, points the store was asked for but did not have, and points that
/// ran the simulator. In-process memo hits touch none of the three. With
/// no store installed, `store_hits`/`store_misses` stay zero and
/// `simulated` still counts fresh runs.
pub fn tier_stats() -> (u64, u64, u64) {
    (
        STORE_HITS.load(Ordering::Relaxed),
        STORE_MISSES.load(Ordering::Relaxed),
        SIMULATED.load(Ordering::Relaxed),
    )
}

/// Where [`run_mix_cached_with_source`] found a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunSource {
    /// Served by the in-process memo (including waiting on another thread
    /// that was already computing the same point).
    Memo,
    /// Loaded from the installed durable [`ResultStore`].
    Store,
    /// Freshly simulated by this call.
    Simulated,
}

impl RunSource {
    /// Lower-case label used in logs and the `stacksim-serve` event stream.
    pub const fn label(self) -> &'static str {
        match self {
            RunSource::Memo => "memo",
            RunSource::Store => "store",
            RunSource::Simulated => "computed",
        }
    }
}

/// Per-key cell: concurrent callers of the same point block on one cell
/// while the first caller simulates, instead of duplicating the run.
type MemoCell = Arc<OnceLock<Result<Arc<RunResult>, ConfigError>>>;

/// The process-wide memo of completed runs.
static MEMO: OnceLock<Mutex<HashMap<MemoKey, MemoCell>>> = OnceLock::new();

fn memo() -> &'static Mutex<HashMap<MemoKey, MemoCell>> {
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of distinct `(config, mix, run)` points simulated so far in this
/// process (diagnostic; pairs with the reproduce binary's run accounting).
pub fn memo_len() -> usize {
    // simlint::allow(P002, reason = "memo mutex poisoning means a worker already panicked; propagating is correct")
    // simlint::allow(L002, reason = "`.len()` here is HashMap::len on the guard; the Store::len edge is simlint's documented name-collision over-approximation")
    memo().lock().expect("memo poisoned").len()
}

/// Snapshot of the memo's cells, taken under the lock and returned by
/// value. Keeping the guard confined to this helper means callers iterate
/// — and in particular hit the durable store or the simulator — with the
/// memo lock already released.
fn memo_snapshot() -> Vec<(MemoKey, MemoCell)> {
    let map = memo().lock().expect("memo poisoned"); // simlint::allow(P002, reason = "memo mutex poisoning means a worker already panicked; propagating is correct")
    map.iter().map(|(k, v)| (k.clone(), v.clone())).collect() // simlint::allow(D003, reason = "snapshot of the process-wide memo; consumers are order-independent")
}

/// Looks up (or inserts) the cell for `key`, holding the memo lock only
/// for the map operation itself. Callers fill the cell — tier-2 store
/// lookup, simulation — after this returns, so the process-wide lock is
/// never held across file I/O.
fn memo_cell(key: MemoKey) -> MemoCell {
    // simlint::allow(P002, reason = "memo mutex poisoning means a worker already panicked; propagating is correct")
    // simlint::allow(L002, reason = "HashMap::entry only; the path to Store I/O is the `.len()` name-collision over-approximation (entry -> find -> len), not a real call")
    let mut map = memo().lock().expect("memo poisoned");
    map.entry(key).or_default().clone()
}

/// Visits every *successful* memoized run in this process, in no
/// particular order. The post-hoc audit hook: `reproduce
/// --check-protocol` replays the protocol checker over every traced run
/// the experiments produced, without re-simulating anything.
///
/// The callback runs outside the memo lock, so it may itself trigger
/// [`run_mix_cached`] calls; runs completing concurrently with the
/// snapshot may or may not be visited.
pub fn for_each_cached_run<F>(mut f: F)
where
    F: FnMut(&SystemConfig, &'static str, &RunConfig, &Arc<RunResult>),
{
    let cells = memo_snapshot();
    for (key, cell) in &cells {
        if let Some(Ok(result)) = cell.get() {
            f(&key.cfg, key.mix, &key.run, result);
        }
    }
}

/// Memoized [`run_mix`]: the first call for a given `(cfg, mix, run)`
/// triple simulates, every later call — from any thread — returns the same
/// shared [`RunResult`]. Baselines shared across experiments therefore
/// simulate exactly once per process.
///
/// The mix is taken by `'static` reference (the workload registry) so the
/// name used in the key cannot outlive or diverge from its definition.
///
/// # Errors
///
/// Returns [`ConfigError`] if the configuration is inconsistent (also
/// memoized: a bad point is validated once).
#[must_use = "the run's results or the reason the configuration is invalid"]
pub fn run_mix_cached(
    cfg: &SystemConfig,
    mix: &'static Mix,
    run: &RunConfig,
) -> Result<Arc<RunResult>, ConfigError> {
    run_mix_cached_with_source(cfg, mix, run).map(|(result, _)| result)
}

/// [`run_mix_cached`] plus the provenance of the returned result: memo
/// hit, durable-store hit, or fresh simulation. The `stacksim-serve`
/// daemon streams this per point; plain callers use [`run_mix_cached`].
///
/// # Errors
///
/// Returns [`ConfigError`] if the configuration is inconsistent (also
/// memoized: a bad point is validated once).
#[must_use = "the run's results or the reason the configuration is invalid"]
pub fn run_mix_cached_with_source(
    cfg: &SystemConfig,
    mix: &'static Mix,
    run: &RunConfig,
) -> Result<(Arc<RunResult>, RunSource), ConfigError> {
    let cell = memo_cell(MemoKey::new(cfg, mix.name, run));
    // If the closure runs, this cell is ours to fill: tier 2 (durable
    // store), then the simulator. Otherwise the point was already memoized
    // (or another thread is computing it and get_or_init waits) — a memo
    // hit either way.
    let source = std::cell::Cell::new(RunSource::Memo);
    let result = cell
        .get_or_init(|| {
            // Traced runs bypass the store: event streams are not
            // persisted, so a stored result could not honor the request.
            let store = if run.trace.any() {
                None
            } else {
                result_store()
            };
            if let Some(store) = &store {
                if let Some(stored) = store.load(cfg, mix.name, run) {
                    STORE_HITS.fetch_add(1, Ordering::Relaxed);
                    source.set(RunSource::Store);
                    return Ok(Arc::new(stored));
                }
                STORE_MISSES.fetch_add(1, Ordering::Relaxed);
            }
            let result = run_mix(cfg, mix, run).map(Arc::new);
            if let Ok(result) = &result {
                SIMULATED.fetch_add(1, Ordering::Relaxed);
                source.set(RunSource::Simulated);
                if let Some(store) = &store {
                    store.store(cfg, mix.name, run, result);
                }
            }
            result
        })
        .clone()?;
    Ok((result, source.get()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn moderate_mix_outruns_stream_mix() {
        let cfg = configs::cfg_2d();
        let run = RunConfig::quick();
        let m1 = run_mix(&cfg, Mix::by_name("M1").unwrap(), &run).unwrap();
        let vh1 = run_mix(&cfg, Mix::by_name("VH1").unwrap(), &run).unwrap();
        assert!(
            m1.hmipc > 3.0 * vh1.hmipc,
            "moderate {} vs stream {}",
            m1.hmipc,
            vh1.hmipc
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = configs::cfg_3d_fast();
        let run = RunConfig::quick();
        let a = run_mix(&cfg, Mix::by_name("H2").unwrap(), &run).unwrap();
        let b = run_mix(&cfg, Mix::by_name("H2").unwrap(), &run).unwrap();
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.hmipc, b.hmipc);
    }

    #[test]
    fn speedup_over_baseline() {
        let run = RunConfig::quick();
        let mix = Mix::by_name("VH2").unwrap();
        let base = run_mix(&configs::cfg_2d(), mix, &run).unwrap();
        let fast = run_mix(&configs::cfg_3d_fast(), mix, &run).unwrap();
        let s = fast.speedup_over(&base).unwrap();
        assert!(s > 1.2, "3D-fast should clearly beat 2D on streams: {s}");
    }

    #[test]
    fn speedup_requires_same_mix() {
        let run = RunConfig::quick();
        let a = run_mix(&configs::cfg_2d(), Mix::by_name("M1").unwrap(), &run).unwrap();
        let b = run_mix(&configs::cfg_2d(), Mix::by_name("M2").unwrap(), &run).unwrap();
        let err = a.speedup_over(&b).unwrap_err();
        assert_eq!(
            err,
            MixMismatch {
                ours: "M1",
                baseline: "M2"
            }
        );
        assert!(err.to_string().contains("different mixes"));
        let as_config: ConfigError = err.into();
        assert!(as_config.to_string().contains("M2"));
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        let cfg = configs::cfg_3d_fast();
        let mix = Mix::by_name("H2").unwrap();
        let plain_cfg = RunConfig::quick();
        let traced_cfg = RunConfig::quick().with_trace(crate::trace::TraceConfig::all());
        let plain = run_mix(&cfg, mix, &plain_cfg).unwrap();
        let traced = run_mix(&cfg, mix, &traced_cfg).unwrap();
        // Tracing is observational: every measured number is bit-identical.
        // Only the fast-forward bookkeeping may differ — trace sampling
        // imposes extra skip barriers, changing how the run was *executed*
        // (more ticks, fewer skips) but nothing the machine *did*.
        let machine = |r: &RunResult| {
            r.stats
                .flatten()
                .into_iter()
                .filter(|(name, _)| name != "ticked_cycles" && name != "skipped_cycles")
                .collect::<Vec<_>>()
        };
        assert_eq!(plain.committed, traced.committed);
        assert_eq!(plain.per_core_ipc, traced.per_core_ipc);
        assert_eq!(plain.hmipc, traced.hmipc);
        assert_eq!(machine(&plain), machine(&traced));
        // And only the traced run carries streams.
        assert_eq!(plain.trace, None);
        let trace = traced.trace.as_ref().expect("trace requested");
        assert!(!trace.is_empty());
    }

    #[test]
    fn progress_reporter_sees_every_point() {
        use std::sync::atomic::AtomicUsize;
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        static LAST_TOTAL: AtomicUsize = AtomicUsize::new(0);
        set_progress_reporter(Some(Box::new(|_done, total| {
            CALLS.fetch_add(1, Ordering::Relaxed);
            LAST_TOTAL.store(total, Ordering::Relaxed);
        })));
        let cfg = configs::cfg_2d();
        let run = RunConfig::quick();
        let points: Vec<RunPoint> = ["M1", "M2"]
            .iter()
            .map(|m| (cfg.clone(), Mix::by_name(m).unwrap(), run))
            .collect();
        let results = ParallelRunner::with_jobs(2).run_matrix(&points).unwrap();
        set_progress_reporter(None);
        assert_eq!(results.len(), 2);
        assert_eq!(CALLS.load(Ordering::Relaxed), 2);
        assert_eq!(LAST_TOTAL.load(Ordering::Relaxed), 2);
    }
}
