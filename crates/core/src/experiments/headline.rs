//! The paper's headline numbers (§4.2 and §5.2): cumulative speedups of
//! the aggressive 3D organization plus the scalable MHA over 3D-fast and
//! over the conventional 2D machine.

use stacksim_mshr::{MshrKind, TunerConfig};
use stacksim_stats::Table;
use stacksim_types::ConfigError;
use stacksim_workload::Mix;

use crate::config::SystemConfig;
use crate::runner::{run_matrix, RunConfig, RunPoint};
use crate::scenario::Machines;

use super::gm_memory_intensive;

/// The cumulative-speedup summary.
#[derive(Clone, Debug)]
pub struct HeadlineResult {
    /// GM(H,VH) speedup of 3D-fast over 2D (the paper reports 2.17×).
    pub fast_over_2d: f64,
    /// GM(H,VH) speedup of the aggressive organization (4 row buffers)
    /// over 3D-fast (the paper reports 1.75×).
    pub aggressive_over_fast: f64,
    /// GM(H,VH) speedup of aggressive + scalable MHA (VBF + dynamic, 8×)
    /// over the aggressive organization (the paper reports +17.8 % for the
    /// quad-MC configuration).
    pub mha_over_aggressive: f64,
    /// GM(H,VH) speedup of the full proposal over 2D (the paper reports
    /// 4.46× quad-MC).
    pub total_over_2d: f64,
}

impl HeadlineResult {
    /// Renders the summary.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["comparison".into(), "paper".into(), "measured".into()]);
        t.title("Headline cumulative speedups, GM(H,VH)");
        t.numeric();
        t.row(vec![
            "3D-fast / 2D".into(),
            "2.17x".into(),
            format!("{:.2}x", self.fast_over_2d),
        ]);
        t.row(vec![
            "aggressive / 3D-fast".into(),
            "1.75x".into(),
            format!("{:.2}x", self.aggressive_over_fast),
        ]);
        t.row(vec![
            "+scalable MHA".into(),
            "+17.8%".into(),
            format!("{:+.1}%", (self.mha_over_aggressive - 1.0) * 100.0),
        ]);
        t.row(vec![
            "total / 2D".into(),
            "4.46x".into(),
            format!("{:.2}x", self.total_over_2d),
        ]);
        t
    }
}

/// Computes the headline numbers on the quad-MC configuration.
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn headline(
    machines: &Machines,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<HeadlineResult, ConfigError> {
    let cfg_2d = machines.m2d.clone();
    let cfg_fast = machines.m3d_fast.clone();
    let cfg_aggr = machines.quad_mc.clone();
    let cfg_mha: SystemConfig = cfg_aggr
        .with_mshr_scale(8)
        .with_mshr_kind(MshrKind::Vbf)
        .with_dynamic_mshr(TunerConfig {
            sample_cycles: 2_000,
            apply_cycles: 30_000,
            divisors: vec![1, 2, 4],
        });

    let cfgs = [cfg_2d, cfg_fast, cfg_aggr, cfg_mha];
    let points: Vec<RunPoint> = mixes
        .iter()
        .flat_map(|&mix| cfgs.iter().map(move |cfg| (cfg.clone(), mix, *run)))
        .collect();
    let results = run_matrix(&points)?;
    let mut fast_over_2d = Vec::new();
    let mut aggr_over_fast = Vec::new();
    let mut mha_over_aggr = Vec::new();
    let mut total_over_2d = Vec::new();
    for (i, &mix) in mixes.iter().enumerate() {
        let [r2d, rfast, raggr, rmha] = &results[cfgs.len() * i..cfgs.len() * (i + 1)] else {
            unreachable!("run_matrix preserves point count") // simlint::allow(P003, reason = "run_matrix returns exactly one result per input point")
        };
        fast_over_2d.push((mix, rfast.speedup_over(r2d)?));
        aggr_over_fast.push((mix, raggr.speedup_over(rfast)?));
        mha_over_aggr.push((mix, rmha.speedup_over(raggr)?));
        total_over_2d.push((mix, rmha.speedup_over(r2d)?));
    }
    Ok(HeadlineResult {
        fast_over_2d: gm_memory_intensive(&fast_over_2d),
        aggressive_over_fast: gm_memory_intensive(&aggr_over_fast),
        mha_over_aggressive: gm_memory_intensive(&mha_over_aggr),
        total_over_2d: gm_memory_intensive(&total_over_2d),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_ordering_holds() {
        let mixes = [Mix::by_name("VH1").unwrap(), Mix::by_name("H1").unwrap()];
        let r = headline(&Machines::builtin(), &RunConfig::quick(), &mixes).unwrap();
        assert!(r.fast_over_2d > 1.1, "3D-fast/2D {:.2}", r.fast_over_2d);
        assert!(
            r.aggressive_over_fast > 1.0,
            "aggr/fast {:.2}",
            r.aggressive_over_fast
        );
        assert!(
            r.total_over_2d > r.fast_over_2d,
            "total {:.2} must exceed fast {:.2}",
            r.total_over_2d,
            r.fast_over_2d
        );
        assert!(r.table().to_string().contains("4.46x"));
    }
}
