//! Ablation studies for the design choices DESIGN.md calls out: memory
//! scheduling policy, L2 bank interleaving granularity, MSHR probing
//! scheme, and the energy side of the row-buffer cache.

use stacksim_dram::EnergyModel;
use stacksim_memctrl::SchedulerPolicy;
use stacksim_mshr::MshrKind;
use stacksim_stats::{geometric_mean, Table};
use stacksim_types::{ConfigError, InterleaveGranularity};
use stacksim_workload::Mix;

use crate::config::SystemConfig;
use crate::runner::{default_jobs, parallel_map, run_matrix, RunConfig, RunPoint};
use crate::scenario::Machines;
use crate::system::System;

/// GM speedup of `cfg` over `base` across `mixes`, with both columns fanned
/// out as one matrix (and the shared quad-MC baseline memoized across the
/// ablations that reuse it).
fn gm_speedup(
    cfg: &SystemConfig,
    base: &SystemConfig,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<f64, ConfigError> {
    let points: Vec<RunPoint> = mixes
        .iter()
        .flat_map(|&mix| [(base.clone(), mix, *run), (cfg.clone(), mix, *run)])
        .collect();
    let results = run_matrix(&points)?;
    let vals: Vec<f64> = results
        .chunks(2)
        .map(|pair| pair[1].speedup_over(&pair[0]).map_err(ConfigError::from))
        .collect::<Result<_, _>>()?;
    Ok(geometric_mean(&vals).expect("speedups are positive")) // simlint::allow(P002, reason = "speedup_over returns positive ratios, so the geometric mean is defined")
}

/// FR-FCFS versus FIFO scheduling (the paper assumes Rixner-style
/// row-hit-first scheduling, §2.4). Returns the GM speedup of FR-FCFS over
/// FIFO on the quad-MC machine.
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn ablation_scheduler(
    machines: &Machines,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<f64, ConfigError> {
    let frfcfs = machines.quad_mc.clone();
    let mut fifo = frfcfs.clone();
    fifo.memory.policy = SchedulerPolicy::Fifo;
    gm_speedup(&frfcfs, &fifo, run, mixes)
}

/// Critical-word-first on versus off, measured on the *narrow-bus* 3D
/// machine where it matters most (§3's debate with Liu et al.: CWF hides
/// most of a narrow bus's latency for a single core, but not its
/// contention). Returns the GM speedup of CWF over full-line delivery.
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn ablation_cwf(
    machines: &Machines,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<f64, ConfigError> {
    let cwf = machines.m3d.clone(); // 8-byte on-stack bus
    let mut full_line = cwf.clone();
    full_line.memory.critical_word_first = false;
    gm_speedup(&cwf, &full_line, run, mixes)
}

/// Page- versus line-granularity L2 bank interleaving on the quad-MC
/// machine (§4.1's streamlined floorplan). Returns the GM speedup of page
/// interleaving over line interleaving.
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn ablation_interleave(
    machines: &Machines,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<f64, ConfigError> {
    let page = machines.quad_mc.clone();
    let mut line = page.clone();
    line.l2_interleave = InterleaveGranularity::Line;
    gm_speedup(&page, &line, run, mixes)
}

/// One row of the probing-scheme comparison (paper footnote 2).
#[derive(Clone, Debug)]
pub struct ProbingRow {
    /// MSHR organization.
    pub kind: MshrKind,
    /// GM speedup over the plain direct-mapped linear-probing MSHR.
    pub speedup_vs_linear: f64,
    /// Mean probes per MSHR access.
    pub probes_per_access: f64,
}

/// Compares MSHR organizations at 8× capacity on the quad-MC machine:
/// direct-mapped linear probing (the baseline the VBF accelerates),
/// quadratic probing, the VBF, and the ideal CAM.
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn ablation_probing(
    machines: &Machines,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<Vec<ProbingRow>, ConfigError> {
    let base = machines.quad_mc.clone().with_mshr_scale(8);
    let linear = base.with_mshr_kind(MshrKind::DirectLinear);
    let kinds = [
        MshrKind::DirectLinear,
        MshrKind::DirectQuadratic,
        MshrKind::Vbf,
        MshrKind::Cam,
    ];
    // One matrix over every (kind, mix) pair plus the shared linear
    // baseline; the memo collapses the baseline to a single run per mix.
    let points: Vec<RunPoint> = kinds
        .iter()
        .flat_map(|&kind| {
            let cfg = base.with_mshr_kind(kind);
            let linear = linear.clone();
            mixes
                .iter()
                .flat_map(move |&mix| [(linear.clone(), mix, *run), (cfg.clone(), mix, *run)])
        })
        .collect();
    let results = run_matrix(&points)?;
    let mut rows = Vec::new();
    for (k, &kind) in kinds.iter().enumerate() {
        let group = &results[2 * mixes.len() * k..2 * mixes.len() * (k + 1)];
        let mut probe_sum = 0.0;
        let mut vals = Vec::with_capacity(mixes.len());
        for pair in group.chunks(2) {
            let (b, c) = (&pair[0], &pair[1]);
            vals.push(c.speedup_over(b)?);
            probe_sum += c.stats.get("mshr_probes_per_access").unwrap_or(1.0);
        }
        rows.push(ProbingRow {
            kind,
            speedup_vs_linear: geometric_mean(&vals).expect("speedups are positive"), // simlint::allow(P002, reason = "speedup_over returns positive ratios, so the geometric mean is defined")
            probes_per_access: probe_sum / mixes.len().max(1) as f64,
        });
    }
    Ok(rows)
}

/// Renders the probing comparison.
pub fn probing_table(rows: &[ProbingRow]) -> Table {
    let mut t = Table::new(vec![
        "organization".into(),
        "speedup vs linear".into(),
        "probes/access".into(),
    ]);
    t.title("Ablation: MSHR probing schemes at 8x capacity (quad-MC)");
    t.numeric();
    for r in rows {
        t.row(vec![
            r.kind.to_string(),
            format!("{:.3}", r.speedup_vs_linear),
            format!("{:.2}", r.probes_per_access),
        ]);
    }
    t
}

/// Open- versus closed-page row management on the quad-MC machine. The
/// paper's whole §4 rests on exploiting open rows (FR-FCFS + row-buffer
/// caches); this quantifies what closing the page after every access would
/// forfeit. Returns the GM speedup of open over closed.
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn ablation_page_policy(
    machines: &Machines,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<f64, ConfigError> {
    let open = machines.quad_mc.clone();
    let mut closed = open.clone();
    closed.memory.page_policy = stacksim_dram::PagePolicy::Closed;
    gm_speedup(&open, &closed, run, mixes)
}

/// Smart Refresh on versus off, on the quad-MC stacked machine (32 ms
/// refresh — the hotter stack refreshes twice as often, which is exactly
/// where refresh-skipping pays). Returns `(gm_speedup, refreshes_plain,
/// refreshes_smart)` over one memory-intensive mix.
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn ablation_smart_refresh(
    machines: &Machines,
    run: &RunConfig,
    mix: &'static Mix,
) -> Result<(f64, f64, f64), ConfigError> {
    let plain = machines.quad_mc.clone();
    let mut smart = plain.clone();
    smart.memory.smart_refresh = true;
    // Two independent full-length simulations — run them side by side.
    let cfgs = [plain, smart];
    let measured = parallel_map(
        default_jobs(),
        &cfgs,
        |cfg| -> Result<(f64, f64), ConfigError> {
            let mut sys = System::for_mix(cfg, mix, run.seed)?;
            sys.run_cycles(run.warmup_cycles + run.measure_cycles);
            let stats = sys.stats();
            let refreshes: f64 = (0..cfg.memory.mcs as usize)
                .map(|i| stats.get(&format!("mc{i}.ranks.refreshes")).unwrap_or(0.0))
                .sum();
            Ok((sys.total_committed() as f64, refreshes))
        },
    );
    let mut measured = measured.into_iter();
    let (committed_plain, refreshes_plain) = measured.next().expect("plain run present")?; // simlint::allow(P002, reason = "map_parallel returns one result per input; two runs in, two results out")
    let (committed_smart, refreshes_smart) = measured.next().expect("smart run present")?; // simlint::allow(P002, reason = "map_parallel returns one result per input; two runs in, two results out")
    Ok((
        committed_smart / committed_plain.max(1.0),
        refreshes_plain,
        refreshes_smart,
    ))
}

/// One row of the row-buffer-cache energy study.
#[derive(Clone, Copy, Debug)]
pub struct EnergyRow {
    /// Row-buffer entries per bank.
    pub row_buffers: usize,
    /// DRAM row-buffer hit rate achieved.
    pub row_hit_rate: f64,
    /// DRAM energy per committed kilo-instruction, nanojoules.
    pub nj_per_kilo_instruction: f64,
}

/// §4.2's energy argument: "each row buffer cache hit avoids the power
/// needed to perform a full array access". Sweeps row-buffer entries on the
/// quad-MC machine and reports hit rate and DRAM energy per work done.
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn ablation_energy(
    machines: &Machines,
    run: &RunConfig,
    mix: &'static Mix,
) -> Result<Vec<EnergyRow>, ConfigError> {
    let model = EnergyModel::DDR2;
    let sweep: Vec<usize> = (1..=4).collect();
    // The four sweep points are independent full-length simulations.
    parallel_map(
        default_jobs(),
        &sweep,
        |&row_buffers| -> Result<EnergyRow, ConfigError> {
            let cfg = machines.aggressive(4, 16, row_buffers);
            let mut sys = System::for_mix(&cfg, mix, run.seed)?;
            sys.run_cycles(run.warmup_cycles + run.measure_cycles);
            let stats = sys.stats();
            let energy = sys.dram_energy(&model);
            let committed = sys.total_committed().max(1) as f64;
            let hits: f64 = (0..4)
                .map(|i| stats.get(&format!("mc{i}.ranks.row_hits")).unwrap_or(0.0))
                .sum();
            let misses: f64 = (0..4)
                .map(|i| stats.get(&format!("mc{i}.ranks.row_misses")).unwrap_or(0.0))
                .sum();
            Ok(EnergyRow {
                row_buffers,
                row_hit_rate: hits / (hits + misses).max(1.0),
                nj_per_kilo_instruction: energy.total_nj() / committed * 1000.0,
            })
        },
    )
    .into_iter()
    .collect()
}

/// Renders the energy sweep.
pub fn energy_table(rows: &[EnergyRow]) -> Table {
    let mut t = Table::new(vec![
        "row buffers".into(),
        "row hit rate".into(),
        "nJ / kilo-instruction".into(),
    ]);
    t.title("Ablation: row-buffer cache size vs DRAM energy (quad-MC)");
    t.numeric();
    for r in rows {
        t.row(vec![
            r.row_buffers.to_string(),
            format!("{:.3}", r.row_hit_rate),
            format!("{:.1}", r.nj_per_kilo_instruction),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunConfig {
        RunConfig {
            warmup_cycles: 8_000,
            measure_cycles: 50_000,
            seed: 3,
            ..RunConfig::default()
        }
    }

    #[test]
    fn frfcfs_beats_fifo_on_streams() {
        let mixes = [Mix::by_name("VH2").unwrap()];
        let s = ablation_scheduler(&Machines::builtin(), &quick(), &mixes).unwrap();
        assert!(s > 0.95, "FR-FCFS {s:.3} should not lose badly to FIFO");
    }

    #[test]
    fn critical_word_first_helps_narrow_buses() {
        // M1's moderate bandwidth demand keeps queueing noise below the CWF
        // gain at this short measurement window; the very-high mixes flip
        // sign run-to-run at 50k cycles.
        let mixes = [Mix::by_name("M1").unwrap()];
        let s = ablation_cwf(&Machines::builtin(), &quick(), &mixes).unwrap();
        assert!(s > 1.0, "CWF must help on an 8-byte bus: {s:.3}");
    }

    #[test]
    fn probing_schemes_ordered_by_probes() {
        let mixes = [Mix::by_name("VH1").unwrap()];
        let rows = ablation_probing(&Machines::builtin(), &quick(), &mixes).unwrap();
        let probe_of = |k: MshrKind| rows.iter().find(|r| r.kind == k).unwrap().probes_per_access;
        assert!(probe_of(MshrKind::Cam) <= probe_of(MshrKind::Vbf));
        assert!(probe_of(MshrKind::Vbf) < probe_of(MshrKind::DirectLinear));
        let t = probing_table(&rows).to_string();
        assert!(t.contains("vbf"));
    }

    #[test]
    fn open_page_beats_closed_on_streams() {
        let mixes = [Mix::by_name("VH2").unwrap()];
        let s = ablation_page_policy(&Machines::builtin(), &quick(), &mixes).unwrap();
        assert!(
            s > 1.0,
            "open-page must win on row-friendly streams: {s:.3}"
        );
    }

    #[test]
    fn smart_refresh_reduces_refresh_count_without_hurting() {
        let (speedup, plain, smart) =
            ablation_smart_refresh(&Machines::builtin(), &quick(), Mix::by_name("VH1").unwrap())
                .unwrap();
        assert!(
            smart < plain,
            "smart {smart} must refresh less than plain {plain}"
        );
        assert!(
            speedup > 0.97,
            "smart refresh must not slow the machine: {speedup:.3}"
        );
    }

    #[test]
    fn bigger_row_buffer_cache_raises_hit_rate() {
        let rows =
            ablation_energy(&Machines::builtin(), &quick(), Mix::by_name("H2").unwrap()).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(
            rows[3].row_hit_rate >= rows[0].row_hit_rate,
            "rb4 hit rate {:.3} vs rb1 {:.3}",
            rows[3].row_hit_rate,
            rows[0].row_hit_rate
        );
        assert!(energy_table(&rows).to_string().contains("row hit rate"));
    }
}
