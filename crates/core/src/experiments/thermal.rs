//! The §2.4 thermal check: the DRAM-on-CPU stack stays within the SDRAM
//! thermal limit.

use stacksim_stats::Table;
use stacksim_thermal::{StackConfig, ThermalGrid, ThermalReport, DRAM_THERMAL_LIMIT_C};

/// The thermal-analysis outcome.
#[derive(Clone, Debug)]
pub struct ThermalCheck {
    /// The solved stack report.
    pub report: ThermalReport,
    /// Number of DRAM layers analysed.
    pub dram_layers: usize,
    /// Whether the stack stays within the SDRAM limit (the paper's
    /// conclusion).
    pub within_limit: bool,
}

impl ThermalCheck {
    /// Renders the per-layer temperatures.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["layer".into(), "max temp (C)".into()]);
        t.title(format!(
            "Thermal check: {} DRAM layers on CPU (limit {DRAM_THERMAL_LIMIT_C} C)",
            self.dram_layers
        ));
        t.numeric();
        for (i, temp) in self.report.layer_max_c.iter().enumerate() {
            let name = if i == 0 {
                "cpu".to_string()
            } else {
                format!("dram{}", i - 1)
            };
            t.row(vec![name, format!("{temp:.1}")]);
        }
        t.row(vec![
            "within DRAM limit".into(),
            if self.within_limit { "yes" } else { "NO" }.into(),
        ]);
        t
    }
}

/// Solves the steady-state thermal state of the paper's 8-layer (plus CPU)
/// stack, with per-core hotspots on the processor die.
pub fn thermal_check(cpu_power_w: f64, dram_layers: usize) -> ThermalCheck {
    let cfg = StackConfig::dram_on_cpu(cpu_power_w, dram_layers, 0.6);
    let mut grid = ThermalGrid::new(cfg);
    // Four core hotspots on the CPU die, one per quadrant (each core
    // concentrates a few watts beyond the uniform background).
    for (x, y) in [(2, 2), (2, 5), (5, 2), (5, 5)] {
        grid.add_hotspot(0, x, y, 3.0);
    }
    let report = grid.solve_steady_state();
    ThermalCheck {
        within_limit: report.within_dram_limit(),
        dram_layers,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stack_is_within_limit() {
        let check = thermal_check(65.0, 8);
        assert!(
            check.within_limit,
            "paper's conclusion must reproduce: {:?}",
            check.report
        );
        assert_eq!(check.report.layer_max_c.len(), 9);
        assert!(check.table().to_string().contains("yes"));
    }

    #[test]
    fn absurd_power_violates_limit() {
        let check = thermal_check(400.0, 8);
        assert!(!check.within_limit);
        assert!(check.table().to_string().contains("NO"));
    }
}
