//! Figure 9: the scalable L2 MHA — the ideal 8× CAM versus the VBF-based
//! direct-mapped MSHR, with and without dynamic capacity tuning, over the
//! default-sized baseline.

use stacksim_mshr::{MshrKind, TunerConfig};
use stacksim_stats::Table;
use stacksim_types::ConfigError;
use stacksim_workload::Mix;

use crate::config::SystemConfig;
use crate::runner::{run_matrix, RunConfig, RunPoint};

use super::{gm_all, gm_memory_intensive};

/// The MHA variants of Figure 9, all built on 8× aggregate MSHR capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MhaVariant {
    /// The ideal (impractical) single-cycle fully-associative CAM at 8×.
    IdealCam,
    /// The practical VBF direct-mapped MSHR at 8×.
    Vbf,
    /// The ideal CAM at 8× with dynamic capacity tuning.
    Dynamic,
    /// VBF + dynamic tuning — the paper's proposed design (V+D).
    VbfDynamic,
}

impl MhaVariant {
    /// Table label matching the paper's legend.
    pub fn label(&self) -> &'static str {
        match self {
            MhaVariant::IdealCam => "8xMSHR",
            MhaVariant::Vbf => "VBF",
            MhaVariant::Dynamic => "Dynamic",
            MhaVariant::VbfDynamic => "V+D",
        }
    }

    /// Applies this variant to a base configuration.
    pub fn apply(&self, base: &SystemConfig) -> SystemConfig {
        let tuner = TunerConfig {
            sample_cycles: 2_000,
            apply_cycles: 30_000,
            divisors: vec![1, 2, 4],
        };
        let scaled = base.with_mshr_scale(8);
        match self {
            MhaVariant::IdealCam => scaled,
            MhaVariant::Vbf => scaled.with_mshr_kind(MshrKind::Vbf),
            MhaVariant::Dynamic => scaled.with_dynamic_mshr(tuner),
            MhaVariant::VbfDynamic => scaled
                .with_mshr_kind(MshrKind::Vbf)
                .with_dynamic_mshr(tuner),
        }
    }
}

/// One mix's improvements under each variant.
#[derive(Clone, Debug)]
pub struct Figure9Row {
    /// The workload mix.
    pub mix: &'static Mix,
    /// Improvement (%) over the default-MSHR baseline, aligned with
    /// [`Figure9Result::variants`].
    pub improvement_pct: Vec<f64>,
}

/// The Figure 9 result for one base configuration.
#[derive(Clone, Debug)]
pub struct Figure9Result {
    /// Base configuration label.
    pub base_label: String,
    /// Variants measured, in column order.
    pub variants: Vec<MhaVariant>,
    /// Per-mix rows.
    pub rows: Vec<Figure9Row>,
    /// GM(H,VH) improvement (%) per variant, when H/VH mixes were run.
    pub gm_hvh_pct: Option<Vec<f64>>,
    /// GM(all) improvement (%) per variant.
    pub gm_all_pct: Vec<f64>,
    /// Mean MSHR probes per access observed under the VBF variant
    /// (the paper reports 2.31 dual-MC / 2.21 quad-MC).
    pub vbf_probes_per_access: f64,
}

impl Figure9Result {
    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut headers = vec!["mix".to_string()];
        headers.extend(self.variants.iter().map(|v| v.label().to_string()));
        let mut t = Table::new(headers);
        t.title(format!(
            "Figure 9: scalable L2 MHA on {} (% improvement; VBF probes/access {:.2})",
            self.base_label, self.vbf_probes_per_access
        ));
        t.numeric();
        for row in &self.rows {
            let mut cells = vec![row.mix.name.to_string()];
            cells.extend(row.improvement_pct.iter().map(|v| format!("{v:+.1}%")));
            t.row(cells);
        }
        if let Some(gm) = &self.gm_hvh_pct {
            let mut cells = vec!["GM(H,VH)".to_string()];
            cells.extend(gm.iter().map(|v| format!("{v:+.1}%")));
            t.row(cells);
        }
        let mut cells = vec!["GM(all)".to_string()];
        cells.extend(self.gm_all_pct.iter().map(|v| format!("{v:+.1}%")));
        t.row(cells);
        t
    }
}

/// Runs the Figure 9 experiment on `base` (use [`crate::configs::cfg_dual_mc`]
/// for (a) and [`crate::configs::cfg_quad_mc`] for (b)).
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn figure9(
    base: &SystemConfig,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<Figure9Result, ConfigError> {
    let variants = vec![
        MhaVariant::IdealCam,
        MhaVariant::Vbf,
        MhaVariant::Dynamic,
        MhaVariant::VbfDynamic,
    ];
    // Baseline first, then one column per variant; the full mix x column
    // grid runs as a single matrix.
    let mut cfgs = vec![base.clone()];
    cfgs.extend(variants.iter().map(|v| v.apply(base)));
    let points: Vec<RunPoint> = mixes
        .iter()
        .flat_map(|&mix| cfgs.iter().map(move |cfg| (cfg.clone(), mix, *run)))
        .collect();
    let results = run_matrix(&points)?;
    let mut rows = Vec::with_capacity(mixes.len());
    let mut vbf_probe_sum = 0.0;
    let mut vbf_probe_count = 0usize;
    for (i, &mix) in mixes.iter().enumerate() {
        let group = &results[cfgs.len() * i..cfgs.len() * (i + 1)];
        let baseline = &group[0];
        let mut improvements = Vec::with_capacity(variants.len());
        for (v, r) in variants.iter().zip(&group[1..]) {
            if *v == MhaVariant::Vbf {
                if let Some(p) = r.stats.get("mshr_probes_per_access") {
                    vbf_probe_sum += p;
                    vbf_probe_count += 1;
                }
            }
            improvements.push((r.speedup_over(baseline)? - 1.0) * 100.0);
        }
        rows.push(Figure9Row {
            mix,
            improvement_pct: improvements,
        });
    }
    let per_variant = |i: usize| -> Vec<(&'static Mix, f64)> {
        rows.iter()
            .map(|r| (r.mix, 1.0 + r.improvement_pct[i] / 100.0))
            .collect()
    };
    let has_hvh = mixes.iter().any(|m| {
        matches!(
            m.class,
            stacksim_workload::MixClass::High | stacksim_workload::MixClass::VeryHigh
        )
    });
    let gm_hvh_pct = has_hvh.then(|| {
        (0..variants.len())
            .map(|i| (gm_memory_intensive(&per_variant(i)) - 1.0) * 100.0)
            .collect()
    });
    let gm_all_pct = (0..variants.len())
        .map(|i| (gm_all(&per_variant(i)) - 1.0) * 100.0)
        .collect();
    Ok(Figure9Result {
        base_label: format!(
            "{} MCs, {} Ranks, {} Row Buffers",
            base.memory.mcs, base.memory.ranks, base.memory.row_buffer_entries
        ),
        variants,
        rows,
        gm_hvh_pct,
        gm_all_pct,
        vbf_probes_per_access: if vbf_probe_count > 0 {
            vbf_probe_sum / vbf_probe_count as f64
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn vbf_tracks_the_ideal_cam() {
        let base = configs::cfg_quad_mc();
        let mixes = [Mix::by_name("VH1").unwrap()];
        let r = figure9(&base, &RunConfig::quick(), &mixes).unwrap();
        let row = &r.rows[0];
        let ideal = row.improvement_pct[0];
        let vbf = row.improvement_pct[1];
        // The paper's §5.2 finding: the VBF performs about the same as the
        // ideal fully-associative MSHR.
        assert!(
            (ideal - vbf).abs() < 10.0,
            "VBF {vbf:.1}% should track ideal {ideal:.1}%"
        );
        // And its filter keeps probes low.
        assert!(
            r.vbf_probes_per_access > 0.9 && r.vbf_probes_per_access < 4.0,
            "probes/access {:.2}",
            r.vbf_probes_per_access
        );
    }

    #[test]
    fn table_mentions_probe_statistic() {
        let base = configs::cfg_dual_mc();
        let mixes = [Mix::by_name("VH2").unwrap()];
        let r = figure9(&base, &RunConfig::quick(), &mixes).unwrap();
        let s = r.table().to_string();
        assert!(s.contains("probes/access"));
        assert!(s.contains("V+D"));
    }
}
