//! Figure 4: speedups of the simple 3D-stacked organizations over off-chip
//! 2D memory.

use stacksim_stats::Table;
use stacksim_types::ConfigError;
use stacksim_workload::Mix;

use crate::runner::{run_matrix, RunConfig, RunPoint};
use crate::scenario::Machines;

use super::{gm_all, gm_memory_intensive};

/// Per-mix speedups of the three stacked organizations over 2D.
#[derive(Clone, Debug)]
pub struct Figure4Row {
    /// The workload mix.
    pub mix: &'static Mix,
    /// Baseline HMIPC (2D) — the reference everything divides by.
    pub hmipc_2d: f64,
    /// 3D (on-stack commodity DRAM) speedup.
    pub speedup_3d: f64,
    /// 3D-wide (64-byte bus) speedup.
    pub speedup_wide: f64,
    /// 3D-fast (true-3D arrays) speedup.
    pub speedup_fast: f64,
}

/// The full figure.
#[derive(Clone, Debug)]
pub struct Figure4Result {
    /// One row per mix, in the paper's order.
    pub rows: Vec<Figure4Row>,
    /// GM(H,VH) of `[3D, 3D-wide, 3D-fast]`, when H/VH mixes were run.
    pub gm_hvh: Option<[f64; 3]>,
    /// GM(all) of `[3D, 3D-wide, 3D-fast]`.
    pub gm_all: [f64; 3],
}

impl Figure4Result {
    /// Renders the figure as the paper's bar-chart data.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "mix".into(),
            "2D".into(),
            "3D".into(),
            "+wide bus".into(),
            "+true 3D".into(),
        ]);
        t.title("Figure 4: speedup over off-chip (2D) memory");
        t.numeric();
        for row in &self.rows {
            t.row(vec![
                row.mix.name.into(),
                "1.000".into(),
                format!("{:.3}", row.speedup_3d),
                format!("{:.3}", row.speedup_wide),
                format!("{:.3}", row.speedup_fast),
            ]);
        }
        if let Some(gm) = self.gm_hvh {
            t.row(vec![
                "GM(H,VH)".into(),
                "1.000".into(),
                format!("{:.3}", gm[0]),
                format!("{:.3}", gm[1]),
                format!("{:.3}", gm[2]),
            ]);
        }
        t.row(vec![
            "GM(all)".into(),
            "1.000".into(),
            format!("{:.3}", self.gm_all[0]),
            format!("{:.3}", self.gm_all[1]),
            format!("{:.3}", self.gm_all[2]),
        ]);
        t
    }
}

/// Runs the Figure 4 experiment over `mixes` (pass [`Mix::all`] for the
/// full figure) on the four progression machines of `machines`.
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn figure4(
    machines: &Machines,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<Figure4Result, ConfigError> {
    let cfgs = [
        machines.m2d.clone(),
        machines.m3d.clone(),
        machines.m3d_wide.clone(),
        machines.m3d_fast.clone(),
    ];
    let points: Vec<RunPoint> = mixes
        .iter()
        .flat_map(|&mix| cfgs.iter().map(move |cfg| (cfg.clone(), mix, *run)))
        .collect();
    let results = run_matrix(&points)?;
    let mut rows = Vec::with_capacity(mixes.len());
    for (i, &mix) in mixes.iter().enumerate() {
        let [base, d3, wide, fast] = &results[cfgs.len() * i..cfgs.len() * (i + 1)] else {
            unreachable!("run_matrix preserves point count") // simlint::allow(P003, reason = "run_matrix returns exactly one result per input point")
        };
        rows.push(Figure4Row {
            mix,
            hmipc_2d: base.hmipc,
            speedup_3d: d3.speedup_over(base)?,
            speedup_wide: wide.speedup_over(base)?,
            speedup_fast: fast.speedup_over(base)?,
        });
    }
    let columns = |f: fn(&Figure4Row) -> f64| -> Vec<(&'static Mix, f64)> {
        rows.iter().map(|r| (r.mix, f(r))).collect()
    };
    let col3d = columns(|r| r.speedup_3d);
    let colwide = columns(|r| r.speedup_wide);
    let colfast = columns(|r| r.speedup_fast);
    let has_hvh = mixes.iter().any(|m| {
        matches!(
            m.class,
            stacksim_workload::MixClass::High | stacksim_workload::MixClass::VeryHigh
        )
    });
    let gm_hvh = has_hvh.then(|| {
        [
            gm_memory_intensive(&col3d),
            gm_memory_intensive(&colwide),
            gm_memory_intensive(&colfast),
        ]
    });
    Ok(Figure4Result {
        gm_hvh,
        gm_all: [gm_all(&col3d), gm_all(&colwide), gm_all(&colfast)],
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacking_progression_holds_on_stream_mix() {
        let mixes = [Mix::by_name("VH1").unwrap()];
        let r = figure4(&Machines::builtin(), &RunConfig::quick(), &mixes).unwrap();
        let row = &r.rows[0];
        // The paper's headline shape: each step helps, in order.
        assert!(row.speedup_3d > 1.05, "3D {:.3}", row.speedup_3d);
        assert!(
            row.speedup_wide > row.speedup_3d,
            "wide {:.3}",
            row.speedup_wide
        );
        assert!(
            row.speedup_fast > row.speedup_wide,
            "fast {:.3}",
            row.speedup_fast
        );
        assert!((r.gm_hvh.unwrap()[2] - row.speedup_fast).abs() < 1e-9);
    }

    #[test]
    fn moderate_mix_benefits_less() {
        let mixes = [Mix::by_name("VH1").unwrap(), Mix::by_name("M3").unwrap()];
        let r = figure4(&Machines::builtin(), &RunConfig::quick(), &mixes).unwrap();
        let vh = &r.rows[0];
        let m = &r.rows[1];
        assert!(
            vh.speedup_fast > m.speedup_fast,
            "memory-bound {} must gain more than moderate {}",
            vh.speedup_fast,
            m.speedup_fast
        );
    }

    #[test]
    fn table_renders_all_rows() {
        let mixes = [Mix::by_name("VH1").unwrap()];
        let r = figure4(&Machines::builtin(), &RunConfig::quick(), &mixes).unwrap();
        let t = r.table();
        let s = t.to_string();
        assert!(s.contains("VH1") && s.contains("GM(all)"));
    }
}
