//! Table 2: (a) stand-alone MPKI characterization at 6 MB; (b) the mixes
//! and their baseline HMIPC on the 2D machine.

use stacksim_cache::CacheConfig;
use stacksim_stats::Table;
use stacksim_types::ConfigError;
use stacksim_workload::{Benchmark, Mix, SyntheticWorkload, TraceGenerator};

use crate::runner::{default_jobs, parallel_map, run_matrix, RunConfig, RunPoint};
use crate::scenario::Machines;
use crate::system::System;

/// One benchmark's characterization row.
#[derive(Clone, Debug)]
pub struct Table2aRow {
    /// The benchmark.
    pub benchmark: &'static Benchmark,
    /// MPKI measured by this simulator (single core, 6 MB L2, prefetchers
    /// off, matching the paper's characterization setup).
    pub measured_mpki: f64,
}

/// Runs the Table 2(a) characterization: each benchmark alone on one core
/// with a 6 MB L2 and prefetchers disabled.
///
/// # Errors
///
/// Returns [`ConfigError`] if the characterization configuration fails
/// validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn table2a(
    machines: &Machines,
    run: &RunConfig,
    benchmarks: &[&'static Benchmark],
) -> Result<Vec<Table2aRow>, ConfigError> {
    let mut cfg = machines.m2d.clone();
    cfg.cores = 1;
    cfg.core = cfg.core.without_prefetchers();
    cfg.l2 = CacheConfig::dl2_6mb();
    cfg.l2_prefetch = false;
    // Each benchmark's characterization run is independent — fan them out.
    parallel_map(default_jobs(), benchmarks, |&benchmark| {
        let generator: Vec<Box<dyn TraceGenerator>> =
            vec![Box::new(SyntheticWorkload::new(benchmark, run.seed, 0))];
        let mut system = System::with_generators(&cfg, generator)?;
        system.run_cycles(run.warmup_cycles);
        let misses0 = system.stats().get("l2.misses").unwrap_or(0.0);
        let committed0 = system.core_committed(0);
        system.run_cycles(run.measure_cycles);
        let misses = system.stats().get("l2.misses").unwrap_or(0.0) - misses0;
        let committed = (system.core_committed(0) - committed0).max(1);
        Ok(Table2aRow {
            benchmark,
            measured_mpki: misses / committed as f64 * 1000.0,
        })
    })
    .into_iter()
    .collect()
}

/// Renders Table 2(a) rows.
pub fn table2a_table(rows: &[Table2aRow]) -> Table {
    let mut t = Table::new(vec![
        "benchmark".into(),
        "suite".into(),
        "paper MPKI".into(),
        "measured MPKI".into(),
    ]);
    t.title("Table 2(a): stand-alone DL2 MPKI at 6 MB");
    t.numeric();
    for row in rows {
        t.row(vec![
            row.benchmark.name.into(),
            row.benchmark.suite.to_string(),
            format!("{:.1}", row.benchmark.mpki_6mb),
            format!("{:.1}", row.measured_mpki),
        ]);
    }
    t
}

/// One mix row of Table 2(b).
#[derive(Clone, Debug)]
pub struct Table2bRow {
    /// The mix.
    pub mix: &'static Mix,
    /// HMIPC measured on the baseline 2D machine.
    pub measured_hmipc: f64,
}

/// Runs Table 2(b): every requested mix on the 2D baseline.
///
/// # Errors
///
/// Returns [`ConfigError`] if the baseline configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn table2b(
    machines: &Machines,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<Vec<Table2bRow>, ConfigError> {
    let cfg = machines.m2d.clone();
    let points: Vec<RunPoint> = mixes.iter().map(|&mix| (cfg.clone(), mix, *run)).collect();
    let results = run_matrix(&points)?;
    Ok(mixes
        .iter()
        .zip(results)
        .map(|(&mix, r)| Table2bRow {
            mix,
            measured_hmipc: r.hmipc,
        })
        .collect())
}

/// Renders Table 2(b) rows.
pub fn table2b_table(rows: &[Table2bRow]) -> Table {
    let mut t = Table::new(vec![
        "mix".into(),
        "class".into(),
        "programs".into(),
        "paper HMIPC".into(),
        "measured HMIPC".into(),
    ]);
    t.title("Table 2(b): workload mixes on the 2D baseline");
    for row in rows {
        t.row(vec![
            row.mix.name.into(),
            row.mix.class.to_string(),
            row.mix.programs.join(", "),
            format!("{:.3}", row.mix.paper_hmipc),
            format!("{:.3}", row.measured_hmipc),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_ordering_matches_the_paper() {
        // Spot-check the extremes of the published table: the synthetic
        // models must keep the ranking and rough magnitude.
        let names = ["S.copy", "libquantum", "mcf", "namd"];
        let benchmarks: Vec<&'static Benchmark> = names
            .iter()
            .map(|n| Benchmark::by_name(n).unwrap())
            .collect();
        let rows = table2a(&Machines::builtin(), &RunConfig::quick(), &benchmarks).unwrap();
        assert!(rows[0].measured_mpki > rows[1].measured_mpki);
        assert!(rows[1].measured_mpki > rows[2].measured_mpki);
        assert!(rows[2].measured_mpki > rows[3].measured_mpki);
        // Magnitudes within a loose band of the published values.
        for row in &rows {
            let expect = row.benchmark.mpki_6mb;
            assert!(
                row.measured_mpki > expect * 0.5 && row.measured_mpki < expect * 2.0 + 2.0,
                "{}: measured {:.1} vs paper {:.1}",
                row.benchmark.name,
                row.measured_mpki,
                expect
            );
        }
    }

    #[test]
    fn hmipc_classes_are_ordered() {
        let mixes = [Mix::by_name("VH1").unwrap(), Mix::by_name("M3").unwrap()];
        let rows = table2b(&Machines::builtin(), &RunConfig::quick(), &mixes).unwrap();
        assert!(
            rows[0].measured_hmipc < rows[1].measured_hmipc,
            "VH1 ({:.3}) must be slower than M3 ({:.3})",
            rows[0].measured_hmipc,
            rows[1].measured_hmipc
        );
        let t = table2b_table(&rows).to_string();
        assert!(t.contains("VH1") && t.contains("paper HMIPC"));
    }

    #[test]
    fn table2a_renders() {
        let benchmarks = [Benchmark::by_name("namd").unwrap()];
        let rows = table2a(&Machines::builtin(), &RunConfig::quick(), &benchmarks).unwrap();
        let t = table2a_table(&rows).to_string();
        assert!(t.contains("namd") && t.contains("F'06"));
    }
}
