//! Multiprogram throughput and fairness metrics.
//!
//! The paper reports HMIPC (harmonic-mean IPC). Two complementary
//! standard metrics complete the multiprogrammed picture:
//!
//! * **weighted speedup** `Σᵢ IPCᵢ(shared) / IPCᵢ(alone)` — system
//!   throughput in units of "programs' worth of progress";
//! * **fairness** `minᵢ(slowdownᵢ) / maxᵢ(slowdownᵢ)` — 1.0 when every
//!   program suffers equally from sharing, → 0 when one is starved.
//!
//! `IPC(alone)` is measured on the *same* machine with the program on core
//! 0 and [`IdleProgram`](stacksim_workload::IdleProgram)s occupying the
//! other cores, so shared-resource plumbing is identical.

use stacksim_stats::Table;
use stacksim_types::ConfigError;
use stacksim_workload::{Benchmark, IdleProgram, Mix, SyntheticWorkload, TraceGenerator};

use crate::config::SystemConfig;
use crate::runner::{default_jobs, parallel_map, RunConfig};
use crate::system::System;

/// Metrics for one mix on one configuration.
#[derive(Clone, Debug)]
pub struct FairnessRow {
    /// The workload mix.
    pub mix: &'static Mix,
    /// Harmonic-mean IPC (the paper's metric).
    pub hmipc: f64,
    /// Weighted speedup (≤ number of programs; higher is better).
    pub weighted_speedup: f64,
    /// min/max slowdown ratio in (0, 1]; higher is fairer.
    pub fairness: f64,
    /// Per-program slowdowns `IPC(alone) / IPC(shared)` (≥ ~1).
    pub slowdowns: Vec<f64>,
}

/// Measures one program's IPC alone on the machine (idle co-runners).
fn alone_ipc(
    cfg: &SystemConfig,
    spec: &'static Benchmark,
    run: &RunConfig,
) -> Result<f64, ConfigError> {
    let mut generators: Vec<Box<dyn TraceGenerator>> =
        vec![Box::new(SyntheticWorkload::new(spec, run.seed, 0))];
    for _ in 1..cfg.cores {
        generators.push(Box::new(IdleProgram::new()));
    }
    let mut system = System::with_generators(cfg, generators)?;
    system.run_cycles(run.warmup_cycles);
    let before = system.core_committed(0);
    system.run_cycles(run.measure_cycles);
    Ok((system.core_committed(0) - before).max(1) as f64 / run.measure_cycles as f64)
}

/// Computes weighted speedup and fairness for each mix on `cfg`.
///
/// # Errors
///
/// Returns [`ConfigError`] if the configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn fairness(
    cfg: &SystemConfig,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<Vec<FairnessRow>, ConfigError> {
    // Each mix needs one shared run plus one alone run per program slot,
    // all independent — fan the mixes across the worker pool.
    parallel_map(
        default_jobs(),
        mixes,
        |&mix| -> Result<FairnessRow, ConfigError> {
            // Shared run.
            let mut system = System::for_mix(cfg, mix, run.seed)?;
            system.run_cycles(run.warmup_cycles);
            let before: Vec<u64> = (0..cfg.cores).map(|i| system.core_committed(i)).collect();
            system.run_cycles(run.measure_cycles);
            let shared_ipc: Vec<f64> = (0..cfg.cores)
                .map(|i| {
                    (system.core_committed(i) - before[i]).max(1) as f64 / run.measure_cycles as f64
                })
                .collect();
            // Alone runs, one per program slot.
            let mut weighted_speedup = 0.0;
            let mut slowdowns = Vec::with_capacity(cfg.cores);
            for (i, spec) in mix.benchmarks().iter().enumerate() {
                let alone = alone_ipc(cfg, spec, run)?;
                weighted_speedup += shared_ipc[i] / alone;
                slowdowns.push(alone / shared_ipc[i]);
            }
            let min = slowdowns.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = slowdowns.iter().cloned().fold(0.0, f64::max);
            let inv: f64 = shared_ipc.iter().map(|i| 1.0 / i).sum();
            Ok(FairnessRow {
                mix,
                hmipc: shared_ipc.len() as f64 / inv,
                weighted_speedup,
                fairness: min / max,
                slowdowns,
            })
        },
    )
    .into_iter()
    .collect()
}

/// Renders fairness rows.
pub fn fairness_table(rows: &[FairnessRow]) -> Table {
    let mut t = Table::new(vec![
        "mix".into(),
        "HMIPC".into(),
        "weighted speedup".into(),
        "fairness".into(),
    ]);
    t.title("Multiprogram throughput and fairness");
    t.numeric();
    for r in rows {
        t.row(vec![
            r.mix.name.into(),
            format!("{:.3}", r.hmipc),
            format!("{:.2}", r.weighted_speedup),
            format!("{:.2}", r.fairness),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn metrics_are_well_formed() {
        let run = RunConfig {
            warmup_cycles: 8_000,
            measure_cycles: 40_000,
            seed: 6,
            ..RunConfig::default()
        };
        let mixes = [Mix::by_name("HM3").unwrap()];
        let rows = fairness(&configs::cfg_3d_fast(), &run, &mixes).unwrap();
        let r = &rows[0];
        assert_eq!(r.slowdowns.len(), 4);
        // Weighted speedup is bounded by the program count and positive.
        assert!(
            r.weighted_speedup > 0.5 && r.weighted_speedup <= 4.2,
            "{}",
            r.weighted_speedup
        );
        // Fairness is a ratio in (0, 1].
        assert!(r.fairness > 0.0 && r.fairness <= 1.0, "{}", r.fairness);
        // Sharing cannot speed a program up by much (tiny timing wiggle ok).
        for s in &r.slowdowns {
            assert!(*s > 0.8, "slowdown {s}");
        }
        assert!(fairness_table(&rows).to_string().contains("HM3"));
    }

    #[test]
    fn contended_machines_are_less_fair_or_slower() {
        // A mix on 2D (heavily contended) versus quad-MC 3D: weighted
        // speedup must improve with the better memory system.
        let run = RunConfig {
            warmup_cycles: 8_000,
            measure_cycles: 40_000,
            seed: 6,
            ..RunConfig::default()
        };
        let mixes = [Mix::by_name("VH3").unwrap()];
        let slow = fairness(&configs::cfg_2d(), &run, &mixes).unwrap();
        let fast = fairness(&configs::cfg_quad_mc(), &run, &mixes).unwrap();
        assert!(
            fast[0].weighted_speedup > slow[0].weighted_speedup,
            "quad {:.2} must beat 2d {:.2}",
            fast[0].weighted_speedup,
            slow[0].weighted_speedup
        );
    }
}
