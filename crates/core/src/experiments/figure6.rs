//! Figure 6: (a) memory controllers × ranks, plus extra-L2 alternatives;
//! (b) row-buffer cache entries. All speedups are over the 3D-fast
//! baseline.

use std::sync::Arc;

use stacksim_stats::Table;
use stacksim_types::ConfigError;
use stacksim_workload::Mix;

use crate::config::SystemConfig;
use crate::runner::{run_matrix, RunConfig, RunPoint, RunResult};
use crate::scenario::Machines;

use super::{gm_all, gm_memory_intensive};

/// One (MC count, rank count) grid cell of Figure 6(a).
#[derive(Clone, Copy, Debug)]
pub struct GridCell {
    /// Memory controllers.
    pub mcs: u16,
    /// Global ranks.
    pub ranks: u16,
    /// GM(H,VH) speedup over 3D-fast.
    pub speedup_hvh: f64,
    /// GM(all) speedup over 3D-fast.
    pub speedup_all: f64,
}

/// The Figure 6(a) result: the MC × rank grid and the spend-the-transistors-
/// on-L2-instead alternatives.
#[derive(Clone, Debug)]
pub struct Figure6aResult {
    /// Grid cells for MCs ∈ {1, 2, 4} × ranks ∈ {8, 16}.
    pub grid: Vec<GridCell>,
    /// Speedups for +512 KB and +1 MB of extra L2 on the unmodified
    /// baseline, `(extra_bytes, gm_hvh, gm_all)`.
    pub extra_l2: Vec<(u64, f64, f64)>,
}

impl Figure6aResult {
    /// The speedup of a specific grid cell, if present.
    pub fn cell(&self, mcs: u16, ranks: u16) -> Option<&GridCell> {
        self.grid.iter().find(|c| c.mcs == mcs && c.ranks == ranks)
    }

    /// Renders the grid as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["config".into(), "GM(H,VH)".into(), "GM(all)".into()]);
        t.title("Figure 6(a): speedup over 3D-fast, varying MCs and ranks");
        t.numeric();
        for c in &self.grid {
            t.row(vec![
                format!("{} MC, {} ranks", c.mcs, c.ranks),
                format!("{:.3}", c.speedup_hvh),
                format!("{:.3}", c.speedup_all),
            ]);
        }
        for &(bytes, hvh, all) in &self.extra_l2 {
            t.row(vec![
                format!("+{} KB L2", bytes >> 10),
                format!("{hvh:.3}"),
                format!("{all:.3}"),
            ]);
        }
        t
    }
}

/// One row-buffer sweep point of Figure 6(b).
#[derive(Clone, Copy, Debug)]
pub struct RbCell {
    /// Memory controllers of the underlying configuration.
    pub mcs: u16,
    /// Ranks of the underlying configuration.
    pub ranks: u16,
    /// Row-buffer entries per bank.
    pub row_buffers: usize,
    /// GM(H,VH) speedup over 3D-fast.
    pub speedup_hvh: f64,
    /// GM(all) speedup over 3D-fast.
    pub speedup_all: f64,
}

/// The Figure 6(b) result: row-buffer entries 1→4 on the two highlighted
/// configurations.
#[derive(Clone, Debug)]
pub struct Figure6bResult {
    /// All sweep points.
    pub cells: Vec<RbCell>,
}

impl Figure6bResult {
    /// A specific sweep point, if present.
    pub fn cell(&self, mcs: u16, row_buffers: usize) -> Option<&RbCell> {
        self.cells
            .iter()
            .find(|c| c.mcs == mcs && c.row_buffers == row_buffers)
    }

    /// Renders the sweep as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "config".into(),
            "row buffers".into(),
            "GM(H,VH)".into(),
            "GM(all)".into(),
        ]);
        t.title("Figure 6(b): speedup over 3D-fast, varying row-buffer entries");
        t.numeric();
        for c in &self.cells {
            t.row(vec![
                format!("{} MC, {} ranks", c.mcs, c.ranks),
                c.row_buffers.to_string(),
                format!("{:.3}", c.speedup_hvh),
                format!("{:.3}", c.speedup_all),
            ]);
        }
        t
    }
}

/// Baseline runs of 3D-fast, one per mix, reused by every comparison.
fn baselines(
    machines: &Machines,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<Vec<(&'static Mix, Arc<RunResult>)>, ConfigError> {
    let cfg = machines.m3d_fast.clone();
    let points: Vec<RunPoint> = mixes.iter().map(|&m| (cfg.clone(), m, *run)).collect();
    let results = run_matrix(&points)?;
    Ok(mixes.iter().copied().zip(results).collect())
}

/// Speedup GMs of one configuration's per-mix results over the prepared
/// baselines.
fn gms_vs(
    results: &[Arc<RunResult>],
    baselines: &[(&'static Mix, Arc<RunResult>)],
) -> Result<(f64, f64), ConfigError> {
    let rows: Vec<(&'static Mix, f64)> = baselines
        .iter()
        .zip(results)
        .map(|((mix, base), r)| Ok((*mix, r.speedup_over(base)?)))
        .collect::<Result<_, ConfigError>>()?;
    let hvh = if rows.iter().any(|(m, _)| {
        matches!(
            m.class,
            stacksim_workload::MixClass::High | stacksim_workload::MixClass::VeryHigh
        )
    }) {
        gm_memory_intensive(&rows)
    } else {
        gm_all(&rows)
    };
    Ok((hvh, gm_all(&rows)))
}

/// Runs every listed configuration over every mix as one matrix (so the
/// whole figure fans out across the worker pool at once) and reduces each
/// configuration's results to its two speedup GMs.
fn gms_per_config(
    cfgs: &[SystemConfig],
    baselines: &[(&'static Mix, Arc<RunResult>)],
    run: &RunConfig,
) -> Result<Vec<(f64, f64)>, ConfigError> {
    let points: Vec<RunPoint> = cfgs
        .iter()
        .flat_map(|cfg| baselines.iter().map(|&(mix, _)| (cfg.clone(), mix, *run)))
        .collect();
    let results = run_matrix(&points)?;
    results
        .chunks(baselines.len())
        .map(|chunk| gms_vs(chunk, baselines))
        .collect()
}

/// Runs the Figure 6(a) experiment.
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn figure6a(
    machines: &Machines,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<Figure6aResult, ConfigError> {
    let base = baselines(machines, run, mixes)?;
    let grid_shape: Vec<(u16, u16)> = [8u16, 16]
        .iter()
        .flat_map(|&ranks| [1u16, 2, 4].map(|mcs| (mcs, ranks)))
        .collect();
    let l2_bytes = [512u64 << 10, 1 << 20];
    let mut cfgs: Vec<SystemConfig> = grid_shape
        .iter()
        .map(|&(mcs, ranks)| machines.aggressive(mcs, ranks, 1))
        .collect();
    cfgs.extend(
        l2_bytes
            .iter()
            .map(|&b| machines.m3d_fast.clone().with_extra_l2(b)),
    );
    let gms = gms_per_config(&cfgs, &base, run)?;
    let grid = grid_shape
        .iter()
        .zip(&gms)
        .map(|(&(mcs, ranks), &(hvh, all))| GridCell {
            mcs,
            ranks,
            speedup_hvh: hvh,
            speedup_all: all,
        })
        .collect();
    let extra_l2 = l2_bytes
        .iter()
        .zip(&gms[grid_shape.len()..])
        .map(|(&bytes, &(hvh, all))| (bytes, hvh, all))
        .collect();
    Ok(Figure6aResult { grid, extra_l2 })
}

/// Runs the Figure 6(b) experiment.
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn figure6b(
    machines: &Machines,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<Figure6bResult, ConfigError> {
    let base = baselines(machines, run, mixes)?;
    let shape: Vec<(u16, u16, usize)> = [(2u16, 8u16), (4, 16)]
        .iter()
        .flat_map(|&(mcs, ranks)| (1..=4usize).map(move |rb| (mcs, ranks, rb)))
        .collect();
    let cfgs: Vec<SystemConfig> = shape
        .iter()
        .map(|&(mcs, ranks, rb)| machines.aggressive(mcs, ranks, rb))
        .collect();
    let gms = gms_per_config(&cfgs, &base, run)?;
    let cells = shape
        .iter()
        .zip(&gms)
        .map(|(&(mcs, ranks, row_buffers), &(hvh, all))| RbCell {
            mcs,
            ranks,
            row_buffers,
            speedup_hvh: hvh,
            speedup_all: all,
        })
        .collect();
    Ok(Figure6bResult { cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_mixes() -> Vec<&'static Mix> {
        vec![Mix::by_name("VH1").unwrap(), Mix::by_name("VH2").unwrap()]
    }

    #[test]
    fn more_mcs_help_memory_bound_mixes() {
        let r = figure6a(&Machines::builtin(), &RunConfig::quick(), &quick_mixes()).unwrap();
        let one = r.cell(1, 8).unwrap().speedup_hvh;
        let four = r.cell(4, 8).unwrap().speedup_hvh;
        assert!(
            four > one,
            "4 MCs ({four:.3}) must beat 1 MC ({one:.3}) on stream mixes"
        );
        assert_eq!(r.grid.len(), 6);
        assert_eq!(r.extra_l2.len(), 2);
    }

    #[test]
    fn row_buffers_help_and_saturate() {
        let r = figure6b(&Machines::builtin(), &RunConfig::quick(), &quick_mixes()).unwrap();
        assert_eq!(r.cells.len(), 8);
        let rb1 = r.cell(4, 1).unwrap().speedup_hvh;
        let rb4 = r.cell(4, 4).unwrap().speedup_hvh;
        assert!(
            rb4 >= rb1 * 0.98,
            "row buffers must not hurt: {rb1:.3} -> {rb4:.3}"
        );
        let t = r.table().to_string();
        assert!(t.contains("4 MC, 16 ranks"));
    }
}
