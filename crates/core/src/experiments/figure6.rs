//! Figure 6: (a) memory controllers × ranks, plus extra-L2 alternatives;
//! (b) row-buffer cache entries. All speedups are over the 3D-fast
//! baseline.

use stacksim_stats::Table;
use stacksim_types::ConfigError;
use stacksim_workload::Mix;

use crate::configs;
use crate::runner::{run_mix, RunConfig, RunResult};

use super::{gm_all, gm_memory_intensive};

/// One (MC count, rank count) grid cell of Figure 6(a).
#[derive(Clone, Copy, Debug)]
pub struct GridCell {
    /// Memory controllers.
    pub mcs: u16,
    /// Global ranks.
    pub ranks: u16,
    /// GM(H,VH) speedup over 3D-fast.
    pub speedup_hvh: f64,
    /// GM(all) speedup over 3D-fast.
    pub speedup_all: f64,
}

/// The Figure 6(a) result: the MC × rank grid and the spend-the-transistors-
/// on-L2-instead alternatives.
#[derive(Clone, Debug)]
pub struct Figure6aResult {
    /// Grid cells for MCs ∈ {1, 2, 4} × ranks ∈ {8, 16}.
    pub grid: Vec<GridCell>,
    /// Speedups for +512 KB and +1 MB of extra L2 on the unmodified
    /// baseline, `(extra_bytes, gm_hvh, gm_all)`.
    pub extra_l2: Vec<(u64, f64, f64)>,
}

impl Figure6aResult {
    /// The speedup of a specific grid cell, if present.
    pub fn cell(&self, mcs: u16, ranks: u16) -> Option<&GridCell> {
        self.grid.iter().find(|c| c.mcs == mcs && c.ranks == ranks)
    }

    /// Renders the grid as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "config".into(),
            "GM(H,VH)".into(),
            "GM(all)".into(),
        ]);
        t.title("Figure 6(a): speedup over 3D-fast, varying MCs and ranks");
        t.numeric();
        for c in &self.grid {
            t.row(vec![
                format!("{} MC, {} ranks", c.mcs, c.ranks),
                format!("{:.3}", c.speedup_hvh),
                format!("{:.3}", c.speedup_all),
            ]);
        }
        for &(bytes, hvh, all) in &self.extra_l2 {
            t.row(vec![
                format!("+{} KB L2", bytes >> 10),
                format!("{hvh:.3}"),
                format!("{all:.3}"),
            ]);
        }
        t
    }
}

/// One row-buffer sweep point of Figure 6(b).
#[derive(Clone, Copy, Debug)]
pub struct RbCell {
    /// Memory controllers of the underlying configuration.
    pub mcs: u16,
    /// Ranks of the underlying configuration.
    pub ranks: u16,
    /// Row-buffer entries per bank.
    pub row_buffers: usize,
    /// GM(H,VH) speedup over 3D-fast.
    pub speedup_hvh: f64,
    /// GM(all) speedup over 3D-fast.
    pub speedup_all: f64,
}

/// The Figure 6(b) result: row-buffer entries 1→4 on the two highlighted
/// configurations.
#[derive(Clone, Debug)]
pub struct Figure6bResult {
    /// All sweep points.
    pub cells: Vec<RbCell>,
}

impl Figure6bResult {
    /// A specific sweep point, if present.
    pub fn cell(&self, mcs: u16, row_buffers: usize) -> Option<&RbCell> {
        self.cells
            .iter()
            .find(|c| c.mcs == mcs && c.row_buffers == row_buffers)
    }

    /// Renders the sweep as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "config".into(),
            "row buffers".into(),
            "GM(H,VH)".into(),
            "GM(all)".into(),
        ]);
        t.title("Figure 6(b): speedup over 3D-fast, varying row-buffer entries");
        t.numeric();
        for c in &self.cells {
            t.row(vec![
                format!("{} MC, {} ranks", c.mcs, c.ranks),
                c.row_buffers.to_string(),
                format!("{:.3}", c.speedup_hvh),
                format!("{:.3}", c.speedup_all),
            ]);
        }
        t
    }
}

/// Baseline runs of 3D-fast, one per mix, reused by every comparison.
fn baselines(
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<Vec<(&'static Mix, RunResult)>, ConfigError> {
    let cfg = configs::cfg_3d_fast();
    mixes
        .iter()
        .map(|&m| Ok((m, run_mix(&cfg, m, run)?)))
        .collect()
}

/// Speedup GMs of `cfg` over the prepared baselines.
fn speedups_vs(
    cfg: &crate::SystemConfig,
    baselines: &[(&'static Mix, RunResult)],
    run: &RunConfig,
) -> Result<(f64, f64), ConfigError> {
    let mut rows = Vec::with_capacity(baselines.len());
    for (mix, base) in baselines {
        let r = run_mix(cfg, mix, run)?;
        rows.push((*mix, r.speedup_over(base)));
    }
    let hvh = if rows
        .iter()
        .any(|(m, _)| matches!(m.class, stacksim_workload::MixClass::High | stacksim_workload::MixClass::VeryHigh))
    {
        gm_memory_intensive(&rows)
    } else {
        gm_all(&rows)
    };
    Ok((hvh, gm_all(&rows)))
}

/// Runs the Figure 6(a) experiment.
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
pub fn figure6a(run: &RunConfig, mixes: &[&'static Mix]) -> Result<Figure6aResult, ConfigError> {
    let base = baselines(run, mixes)?;
    let mut grid = Vec::new();
    for &ranks in &[8u16, 16] {
        for &mcs in &[1u16, 2, 4] {
            let cfg = configs::cfg_aggressive(mcs, ranks, 1);
            let (hvh, all) = speedups_vs(&cfg, &base, run)?;
            grid.push(GridCell { mcs, ranks, speedup_hvh: hvh, speedup_all: all });
        }
    }
    let mut extra_l2 = Vec::new();
    for &bytes in &[512u64 << 10, 1 << 20] {
        let cfg = configs::cfg_3d_fast().with_extra_l2(bytes);
        let (hvh, all) = speedups_vs(&cfg, &base, run)?;
        extra_l2.push((bytes, hvh, all));
    }
    Ok(Figure6aResult { grid, extra_l2 })
}

/// Runs the Figure 6(b) experiment.
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
pub fn figure6b(run: &RunConfig, mixes: &[&'static Mix]) -> Result<Figure6bResult, ConfigError> {
    let base = baselines(run, mixes)?;
    let mut cells = Vec::new();
    for &(mcs, ranks) in &[(2u16, 8u16), (4, 16)] {
        for row_buffers in 1..=4usize {
            let cfg = configs::cfg_aggressive(mcs, ranks, row_buffers);
            let (hvh, all) = speedups_vs(&cfg, &base, run)?;
            cells.push(RbCell { mcs, ranks, row_buffers, speedup_hvh: hvh, speedup_all: all });
        }
    }
    Ok(Figure6bResult { cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_mixes() -> Vec<&'static Mix> {
        vec![Mix::by_name("VH1").unwrap(), Mix::by_name("VH2").unwrap()]
    }

    #[test]
    fn more_mcs_help_memory_bound_mixes() {
        let r = figure6a(&RunConfig::quick(), &quick_mixes()).unwrap();
        let one = r.cell(1, 8).unwrap().speedup_hvh;
        let four = r.cell(4, 8).unwrap().speedup_hvh;
        assert!(
            four > one,
            "4 MCs ({four:.3}) must beat 1 MC ({one:.3}) on stream mixes"
        );
        assert_eq!(r.grid.len(), 6);
        assert_eq!(r.extra_l2.len(), 2);
    }

    #[test]
    fn row_buffers_help_and_saturate() {
        let r = figure6b(&RunConfig::quick(), &quick_mixes()).unwrap();
        assert_eq!(r.cells.len(), 8);
        let rb1 = r.cell(4, 1).unwrap().speedup_hvh;
        let rb4 = r.cell(4, 4).unwrap().speedup_hvh;
        assert!(rb4 >= rb1 * 0.98, "row buffers must not hurt: {rb1:.3} -> {rb4:.3}");
        let t = r.table().to_string();
        assert!(t.contains("4 MC, 16 ranks"));
    }
}
