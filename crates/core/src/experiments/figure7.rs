//! Figure 7: the performance impact of scaling the L2 MSHR capacity
//! (×2 / ×4 / ×8 / dynamic) on the two highlighted 3D configurations.

use stacksim_mshr::TunerConfig;
use stacksim_stats::Table;
use stacksim_types::ConfigError;
use stacksim_workload::Mix;

use crate::config::SystemConfig;
use crate::runner::{run_matrix, RunConfig, RunPoint};

use super::{gm_all, gm_memory_intensive};
#[cfg(test)]
use crate::configs;

/// One MSHR sizing variant of the sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrVariant {
    /// Aggregate capacity multiplied by the factor (1 = baseline sizing).
    Scale(usize),
    /// ×8 capacity with the §5.1 dynamic capacity tuner.
    Dynamic,
}

impl MshrVariant {
    /// Label used in tables ("2xMSHR", "Dynamic", …).
    pub fn label(&self) -> String {
        match self {
            MshrVariant::Scale(1) => "baseline".into(),
            MshrVariant::Scale(n) => format!("{n}xMSHR"),
            MshrVariant::Dynamic => "Dynamic".into(),
        }
    }

    /// Applies this variant to a configuration.
    pub fn apply(&self, cfg: &SystemConfig) -> SystemConfig {
        match self {
            MshrVariant::Scale(n) => cfg.with_mshr_scale(*n),
            MshrVariant::Dynamic => cfg
                .with_mshr_scale(8)
                .with_dynamic_mshr(TunerConfig::default_for_sim()),
        }
    }
}

/// Tuner parameters proportionate to simulated windows (shorter than the
/// silicon-scale defaults).
trait SimTuner {
    fn default_for_sim() -> TunerConfig;
}

impl SimTuner for TunerConfig {
    fn default_for_sim() -> TunerConfig {
        TunerConfig {
            sample_cycles: 2_000,
            apply_cycles: 30_000,
            divisors: vec![1, 2, 4],
        }
    }
}

/// One mix's improvements under each variant, in percent over the baseline
/// MSHR sizing.
#[derive(Clone, Debug)]
pub struct Figure7Row {
    /// The workload mix.
    pub mix: &'static Mix,
    /// Improvement (%) per variant, aligned with
    /// [`Figure7Result::variants`].
    pub improvement_pct: Vec<f64>,
}

/// The Figure 7 result for one base configuration.
#[derive(Clone, Debug)]
pub struct Figure7Result {
    /// Base configuration label ("2 MCs, 8 Ranks, 4 Row Buffers").
    pub base_label: String,
    /// The variants measured, in column order.
    pub variants: Vec<MshrVariant>,
    /// Per-mix rows.
    pub rows: Vec<Figure7Row>,
    /// GM(H,VH) improvement (%) per variant, when H/VH mixes were run.
    pub gm_hvh_pct: Option<Vec<f64>>,
    /// GM(all) improvement (%) per variant.
    pub gm_all_pct: Vec<f64>,
}

impl Figure7Result {
    /// Renders the figure as a table.
    pub fn table(&self) -> Table {
        let mut headers = vec!["mix".to_string()];
        headers.extend(self.variants.iter().map(MshrVariant::label));
        let mut t = Table::new(headers);
        t.title(format!(
            "Figure 7: L2 MSHR scaling on {} (% improvement)",
            self.base_label
        ));
        t.numeric();
        for row in &self.rows {
            let mut cells = vec![row.mix.name.to_string()];
            cells.extend(row.improvement_pct.iter().map(|v| format!("{v:+.1}%")));
            t.row(cells);
        }
        if let Some(gm) = &self.gm_hvh_pct {
            let mut cells = vec!["GM(H,VH)".to_string()];
            cells.extend(gm.iter().map(|v| format!("{v:+.1}%")));
            t.row(cells);
        }
        let mut cells = vec!["GM(all)".to_string()];
        cells.extend(self.gm_all_pct.iter().map(|v| format!("{v:+.1}%")));
        t.row(cells);
        t
    }
}

/// Runs the Figure 7 sweep on `base` (use [`crate::configs::cfg_dual_mc`]
/// for (a) and [`crate::configs::cfg_quad_mc`] for (b)).
///
/// # Errors
///
/// Returns [`ConfigError`] if a configuration fails validation.
#[must_use = "holds the experiment's results or the reason it could not run"]
pub fn figure7(
    base: &SystemConfig,
    run: &RunConfig,
    mixes: &[&'static Mix],
) -> Result<Figure7Result, ConfigError> {
    let variants = vec![
        MshrVariant::Scale(2),
        MshrVariant::Scale(4),
        MshrVariant::Scale(8),
        MshrVariant::Dynamic,
    ];
    // One configuration column per variant, plus the baseline in front; the
    // whole mix x column grid fans out as a single matrix.
    let mut cfgs = vec![base.clone()];
    cfgs.extend(variants.iter().map(|v| v.apply(base)));
    let points: Vec<RunPoint> = mixes
        .iter()
        .flat_map(|&mix| cfgs.iter().map(move |cfg| (cfg.clone(), mix, *run)))
        .collect();
    let results = run_matrix(&points)?;
    let mut rows = Vec::with_capacity(mixes.len());
    for (i, &mix) in mixes.iter().enumerate() {
        let group = &results[cfgs.len() * i..cfgs.len() * (i + 1)];
        let baseline = &group[0];
        let improvements = group[1..]
            .iter()
            .map(|r| Ok((r.speedup_over(baseline)? - 1.0) * 100.0))
            .collect::<Result<_, ConfigError>>()?;
        rows.push(Figure7Row {
            mix,
            improvement_pct: improvements,
        });
    }
    let per_variant = |i: usize| -> Vec<(&'static Mix, f64)> {
        rows.iter()
            .map(|r| (r.mix, 1.0 + r.improvement_pct[i] / 100.0))
            .collect()
    };
    let has_hvh = mixes.iter().any(|m| {
        matches!(
            m.class,
            stacksim_workload::MixClass::High | stacksim_workload::MixClass::VeryHigh
        )
    });
    let gm_hvh_pct = has_hvh.then(|| {
        (0..variants.len())
            .map(|i| (gm_memory_intensive(&per_variant(i)) - 1.0) * 100.0)
            .collect()
    });
    let gm_all_pct = (0..variants.len())
        .map(|i| (gm_all(&per_variant(i)) - 1.0) * 100.0)
        .collect();
    Ok(Figure7Result {
        base_label: format!(
            "{} MCs, {} Ranks, {} Row Buffers",
            base.memory.mcs, base.memory.ranks, base.memory.row_buffer_entries
        ),
        variants,
        rows,
        gm_hvh_pct,
        gm_all_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_mshrs_help_stream_mixes() {
        let base = configs::cfg_quad_mc();
        let mixes = [Mix::by_name("VH3").unwrap()];
        let run = RunConfig {
            warmup_cycles: 10_000,
            measure_cycles: 100_000,
            seed: 0xC0FFEE,
            ..RunConfig::default()
        };
        let r = figure7(&base, &run, &mixes).unwrap();
        let row = &r.rows[0];
        // 4x capacity must clearly beat the 8-entry baseline on streams.
        let x4 = row.improvement_pct[1];
        assert!(x4 > 2.0, "4xMSHR improvement {x4:.1}% too small");
        assert_eq!(r.variants.len(), 4);
        assert!(r.table().to_string().contains("4xMSHR"));
    }

    #[test]
    fn dynamic_stays_close_to_best_static() {
        let base = configs::cfg_dual_mc();
        let mixes = [Mix::by_name("VH2").unwrap()];
        let r = figure7(&base, &RunConfig::quick(), &mixes).unwrap();
        let row = &r.rows[0];
        let best_static = row.improvement_pct[..3]
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        let dynamic = row.improvement_pct[3];
        assert!(
            dynamic > best_static - 15.0,
            "dynamic {dynamic:.1}% too far from best static {best_static:.1}%"
        );
    }
}
