//! Experiment drivers, one per table/figure of the paper's evaluation.
//!
//! Every driver takes a [`RunConfig`](crate::runner::RunConfig) so callers
//! choose fidelity (tests run short windows; the bench harness runs longer
//! ones), returns structured rows, and renders the same table the paper
//! prints via [`Table`](stacksim_stats::Table).

mod ablation;
mod fairness;
mod figure4;
mod figure6;
mod figure7;
mod figure9;
mod headline;
mod table2;
mod thermal;

pub use ablation::{
    ablation_cwf, ablation_energy, ablation_interleave, ablation_page_policy, ablation_probing,
    ablation_scheduler, ablation_smart_refresh, energy_table, probing_table, EnergyRow, ProbingRow,
};
pub use fairness::{fairness, fairness_table, FairnessRow};
pub use figure4::{figure4, Figure4Result, Figure4Row};
pub use figure6::{figure6a, figure6b, Figure6aResult, Figure6bResult, GridCell, RbCell};
pub use figure7::{figure7, Figure7Result, Figure7Row, MshrVariant};
pub use figure9::{figure9, Figure9Result, Figure9Row, MhaVariant};
pub use headline::{headline, HeadlineResult};
pub use table2::{table2a, table2a_table, table2b, table2b_table, Table2aRow, Table2bRow};
pub use thermal::{thermal_check, ThermalCheck};

use stacksim_stats::geometric_mean;
use stacksim_workload::{Mix, MixClass};

/// Geometric mean over the rows whose mix is memory-intensive (H and VH) —
/// the paper's primary summary statistic.
pub(crate) fn gm_memory_intensive(rows: &[(&'static Mix, f64)]) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|(m, _)| matches!(m.class, MixClass::High | MixClass::VeryHigh))
        .map(|&(_, v)| v)
        .collect();
    geometric_mean(&vals).expect("H/VH rows present") // simlint::allow(P002, reason = "the paper's mix table always contains High and VeryHigh rows")
}

/// Geometric mean over all rows (the parenthesized numbers in the paper).
pub(crate) fn gm_all(rows: &[(&'static Mix, f64)]) -> f64 {
    let vals: Vec<f64> = rows.iter().map(|&(_, v)| v).collect();
    geometric_mean(&vals).expect("rows present") // simlint::allow(P002, reason = "callers pass the full non-empty row set")
}
