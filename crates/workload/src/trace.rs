//! Trace recording and replay.
//!
//! Besides the synthetic generators, the simulator can be driven from
//! recorded instruction traces — the classic trace-driven methodology of
//! SimpleScalar-era studies. The format is deliberately plain text, one
//! µop per line, so traces can be produced by any tool:
//!
//! ```text
//! # comment
//! C              <- compute µop
//! L <pc> <addr>  <- load  (hex, 0x prefix optional)
//! S <pc> <addr>  <- store
//! B <pc> <T|N>   <- branch, taken or not-taken
//! ```

use std::io::{self, BufRead, Write};

use stacksim_types::PhysAddr;

use crate::block::InstrBlock;
use crate::instr::Instr;
use crate::synth::TraceGenerator;

/// Writes µops in the text trace format.
///
/// # Examples
///
/// ```
/// use stacksim_workload::{record_trace, Benchmark, SyntheticWorkload};
///
/// let spec = Benchmark::by_name("mcf").unwrap();
/// let mut generator = SyntheticWorkload::new(spec, 1, 0);
/// let mut buffer = Vec::new();
/// record_trace(&mut generator, 100, &mut buffer)?;
/// assert_eq!(buffer.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count(), 100);
/// # Ok::<(), std::io::Error>(())
/// ```
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn record_trace<G: TraceGenerator + ?Sized, W: Write>(
    generator: &mut G,
    count: u64,
    writer: W,
) -> io::Result<()> {
    let mut writer = io::BufWriter::new(writer);
    for _ in 0..count {
        match generator.next_instr() {
            Instr::Compute => writeln!(writer, "C")?,
            Instr::Load { pc, addr } => writeln!(writer, "L {pc:#x} {:#x}", addr.raw())?,
            Instr::Store { pc, addr } => writeln!(writer, "S {pc:#x} {:#x}", addr.raw())?,
            Instr::Branch { pc, taken } => {
                writeln!(writer, "B {pc:#x} {}", if taken { "T" } else { "N" })?
            }
        }
    }
    writer.flush()
}

/// Parses a text trace into µops.
///
/// Blank lines and lines starting with `#` are skipped.
///
/// # Errors
///
/// Returns an [`io::Error`] of kind `InvalidData` naming the offending line
/// for any malformed record, or propagates reader errors.
pub fn parse_trace<R: BufRead>(reader: R) -> io::Result<Vec<Instr>> {
    let mut instrs = Vec::new();
    for (number, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        instrs.push(parse_line(trimmed).map_err(|reason| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: {reason}: {trimmed:?}", number + 1),
            )
        })?);
    }
    Ok(instrs)
}

fn parse_line(line: &str) -> Result<Instr, &'static str> {
    let mut fields = line.split_whitespace();
    let kind = fields.next().ok_or("empty record")?;
    let parse_hex = |field: Option<&str>| -> Result<u64, &'static str> {
        let f = field.ok_or("missing field")?;
        let digits = f.strip_prefix("0x").unwrap_or(f);
        u64::from_str_radix(digits, 16).map_err(|_| "bad hex value")
    };
    let instr = match kind {
        "C" | "c" => Instr::Compute,
        "L" | "l" => {
            let pc = parse_hex(fields.next())?;
            let addr = PhysAddr::new(parse_hex(fields.next())?);
            Instr::Load { pc, addr }
        }
        "S" | "s" => {
            let pc = parse_hex(fields.next())?;
            let addr = PhysAddr::new(parse_hex(fields.next())?);
            Instr::Store { pc, addr }
        }
        "B" | "b" => {
            let pc = parse_hex(fields.next())?;
            let taken = match fields.next() {
                Some("T") | Some("t") => true,
                Some("N") | Some("n") => false,
                _ => return Err("branch outcome must be T or N"),
            };
            Instr::Branch { pc, taken }
        }
        _ => return Err("unknown record kind"),
    };
    if fields.next().is_some() {
        return Err("trailing fields");
    }
    Ok(instr)
}

/// Replays a recorded trace as an infinite instruction stream.
///
/// The trace wraps around at its end — programs in the paper's methodology
/// keep running (and competing for shared resources) after their statistics
/// freeze, so generators must never run dry.
#[derive(Clone, Debug)]
pub struct TraceReplay {
    name: String,
    instrs: Vec<Instr>,
    pos: usize,
    laps: u64,
}

impl TraceReplay {
    /// Creates a replay over a parsed trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>) -> Self {
        assert!(!instrs.is_empty(), "cannot replay an empty trace");
        TraceReplay {
            name: name.into(),
            instrs,
            pos: 0,
            laps: 0,
        }
    }

    /// Creates a replay by parsing `reader`.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed traces (see [`parse_trace`]) or an
    /// empty trace.
    pub fn from_reader<R: BufRead>(name: impl Into<String>, reader: R) -> io::Result<Self> {
        let instrs = parse_trace(reader)?;
        if instrs.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty trace"));
        }
        Ok(TraceReplay::new(name, instrs))
    }

    /// Number of µops in one lap of the trace.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Complete laps through the trace so far.
    pub const fn laps(&self) -> u64 {
        self.laps
    }
}

impl TraceGenerator for TraceReplay {
    fn next_instr(&mut self) -> Instr {
        let i = self.instrs[self.pos];
        self.pos += 1;
        if self.pos == self.instrs.len() {
            self.pos = 0;
            self.laps += 1;
        }
        i
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// Slice-copy refill: drains the trace in wrapping chunks instead of
    /// one indexed load (and bounds check) per µop.
    fn refill(&mut self, block: &mut InstrBlock) {
        block.clear();
        let mut needed = block.capacity();
        while needed > 0 {
            let run = needed.min(self.instrs.len() - self.pos);
            block.extend_from_slice(&self.instrs[self.pos..self.pos + run]);
            self.pos += run;
            if self.pos == self.instrs.len() {
                self.pos = 0;
                self.laps += 1;
            }
            needed -= run;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Benchmark;
    use crate::synth::SyntheticWorkload;

    #[test]
    fn roundtrip_preserves_instructions() {
        let spec = Benchmark::by_name("soplex").unwrap();
        let mut generator = SyntheticWorkload::new(spec, 3, 0);
        let mut buffer = Vec::new();
        record_trace(&mut generator, 500, &mut buffer).unwrap();

        // Re-generate the same stream for comparison.
        let mut reference = SyntheticWorkload::new(spec, 3, 0);
        let expected: Vec<Instr> = (0..500).map(|_| reference.next_instr()).collect();
        let parsed = parse_trace(buffer.as_slice()).unwrap();
        assert_eq!(parsed, expected);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\nC\nL 0x10 0x40\n  \nS 20 80\nB 0x30 T\n";
        let instrs = parse_trace(text.as_bytes()).unwrap();
        assert_eq!(instrs.len(), 4);
        assert_eq!(
            instrs[3],
            Instr::Branch {
                pc: 0x30,
                taken: true
            }
        );
        assert_eq!(
            instrs[1],
            Instr::Load {
                pc: 0x10,
                addr: PhysAddr::new(0x40)
            }
        );
        assert_eq!(
            instrs[2],
            Instr::Store {
                pc: 0x20,
                addr: PhysAddr::new(0x80)
            }
        );
    }

    #[test]
    fn malformed_lines_name_the_line() {
        for bad in ["X 1 2", "L zz 0x40", "L 0x10", "C extra", "B 0x10 Q"] {
            let err = parse_trace(bad.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad}");
            assert!(err.to_string().contains("line 1"), "{bad}: {err}");
        }
    }

    #[test]
    fn replay_wraps_and_counts_laps() {
        let mut replay = TraceReplay::new("t", vec![Instr::Compute, Instr::Compute]);
        for _ in 0..5 {
            replay.next_instr();
        }
        assert_eq!(replay.laps(), 2);
        assert_eq!(replay.len(), 2);
        assert_eq!(replay.name(), "t");
    }

    #[test]
    fn from_reader_rejects_empty() {
        let err = TraceReplay::from_reader("t", "# nothing\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn new_rejects_empty() {
        let _ = TraceReplay::new("t", Vec::new());
    }
}
