//! Synthetic workload models for the `stacksim` simulator.
//!
//! The paper drives its machine with multi-programmed mixes of SPECcpu
//! 2000/2006, BioBench, MediaBench, MiBench and STREAM (Table 2). Those
//! binaries cannot be shipped; what the memory system actually *sees* from
//! each of them is an address stream with a characteristic intensity,
//! footprint, spatial pattern and write ratio. This crate models each
//! benchmark as a deterministic synthetic generator over exactly those axes,
//! calibrated so that its stand-alone L2 miss rate at 6 MB reproduces the
//! MPKI column of Table 2(a):
//!
//! * STREAM kernels → multi-stream sequential sweeps (row-buffer friendly,
//!   prefetchable, enormous intensity);
//! * `libquantum`/`milc`-style FP codes → long strided sweeps;
//! * `mcf`/`omnetpp`-style codes → pointer-chase walks (unprefetchable);
//! * low-MPKI integer codes → small-footprint compute loops.
//!
//! [`Benchmark`] is the per-program spec + registry (Table 2(a)),
//! [`SyntheticWorkload`] turns a spec into an instruction stream, and
//! [`Mix`] names the twelve four-program workloads of Table 2(b).
//!
//! # Examples
//!
//! ```
//! use stacksim_workload::{Benchmark, SyntheticWorkload, TraceGenerator};
//!
//! let spec = Benchmark::by_name("mcf").unwrap();
//! let mut gen = SyntheticWorkload::new(spec, 42, 0);
//! let instr = gen.next_instr();
//! let _ = instr; // Compute, Load or Store
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod idle;
mod instr;
mod mix;
mod pattern;
mod spec;
mod synth;
mod trace;

pub use block::{InstrBlock, BLOCK_LEN};
pub use idle::IdleProgram;
pub use instr::Instr;
pub use mix::{Mix, MixClass};
pub use pattern::{AccessPattern, FreshStream};
pub use spec::{Benchmark, Suite};
pub use synth::{SyntheticWorkload, TraceGenerator};
pub use trace::{parse_trace, record_trace, TraceReplay};
