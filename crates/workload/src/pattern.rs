//! Spatial access patterns for the "fresh" (cache-missing) address streams.

use core::fmt;
use rand::rngs::SmallRng;
use rand::Rng;
use stacksim_types::LineAddr;

/// How a benchmark's cache-missing accesses move through its footprint.
///
/// Each variant produces a different *memory-system* personality — the axis
/// that matters for the paper's experiments: sequential streams hit open
/// DRAM rows and train prefetchers; strides still prefetch but span pages
/// faster; random/pointer traffic defeats both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// `streams` interleaved sequential sweeps (STREAM, memcpy-like loops).
    Sequential {
        /// Number of concurrent arrays being swept.
        streams: u8,
    },
    /// A single sweep advancing `stride_lines` cache lines per access.
    Strided {
        /// Lines skipped between accesses (1 = sequential).
        stride_lines: u16,
    },
    /// Uniformly random lines within the footprint (hash-table-like).
    Random,
    /// A full-period pseudo-random walk: every line visited once per lap,
    /// in unpredictable order (linked-data-structure traversal).
    PointerChase,
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPattern::Sequential { streams } => write!(f, "seq x{streams}"),
            AccessPattern::Strided { stride_lines } => write!(f, "stride {stride_lines}"),
            AccessPattern::Random => f.write_str("random"),
            AccessPattern::PointerChase => f.write_str("pointer"),
        }
    }
}

/// Stateful generator of the fresh-line stream for one program.
///
/// Produces line addresses **relative to the program's footprint** (the
/// caller adds the per-core base offset). Every returned address is a new
/// cache line — by construction a miss in any cache smaller than the
/// footprint — so a program's miss intensity is controlled purely by how
/// often its [`SyntheticWorkload`](crate::SyntheticWorkload) consults this
/// stream.
#[derive(Clone, Debug)]
pub struct FreshStream {
    pattern: AccessPattern,
    footprint_lines: u64,
    /// Per-stream cursors (sequential) or single cursor (strided/pointer).
    cursors: Vec<u64>,
    next_stream: usize,
    last_slot: usize,
}

impl FreshStream {
    /// Creates a stream over `footprint_lines` cache lines.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is zero, smaller than the stream count, or —
    /// for [`AccessPattern::PointerChase`] — not a power of two (the
    /// full-period walk requires it).
    pub fn new(pattern: AccessPattern, footprint_lines: u64) -> Self {
        assert!(footprint_lines > 0, "footprint must be non-zero");
        let cursors = match pattern {
            AccessPattern::Sequential { streams } => {
                assert!(streams > 0, "need at least one stream");
                assert!(
                    footprint_lines >= streams as u64,
                    "footprint smaller than stream count"
                );
                // Spread stream bases evenly through the footprint.
                (0..streams as u64)
                    .map(|s| s * (footprint_lines / streams as u64))
                    .collect()
            }
            AccessPattern::Strided { stride_lines } => {
                assert!(stride_lines > 0, "stride must be non-zero");
                vec![0]
            }
            AccessPattern::Random => vec![],
            AccessPattern::PointerChase => {
                assert!(
                    footprint_lines.is_power_of_two(),
                    "pointer chase needs a power-of-two footprint"
                );
                vec![1]
            }
        };
        FreshStream {
            pattern,
            footprint_lines,
            cursors,
            next_stream: 0,
            last_slot: 0,
        }
    }

    /// The pattern in force.
    pub const fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// Footprint in cache lines.
    pub const fn footprint_lines(&self) -> u64 {
        self.footprint_lines
    }

    /// Index of the pc "slot" the most recent [`next_line`](Self::next_line)
    /// belongs to, so each sequential stream trains its own
    /// stride-prefetcher entry. Zero for single-cursor patterns.
    pub fn last_slot(&self) -> usize {
        self.last_slot
    }

    /// Offsets every cursor by a random amount so that concurrently running
    /// programs do not start phase-aligned (all sweeping the same memory
    /// controller in lockstep — an artifact real program placement does not
    /// have).
    pub fn randomize_phase(&mut self, rng: &mut SmallRng) {
        let n = self.footprint_lines;
        for cursor in &mut self.cursors {
            *cursor = (*cursor + rng.gen_range(0..n)) % n;
        }
    }

    /// Produces the next fresh line (relative to the footprint base).
    pub fn next_line(&mut self, rng: &mut SmallRng) -> LineAddr {
        match self.pattern {
            AccessPattern::Sequential { streams } => {
                let s = self.next_stream;
                self.last_slot = s;
                self.next_stream = (self.next_stream + 1) % streams as usize;
                let line = self.cursors[s];
                self.cursors[s] = (self.cursors[s] + 1) % self.footprint_lines;
                LineAddr::new(line)
            }
            AccessPattern::Strided { stride_lines } => {
                let line = self.cursors[0];
                self.cursors[0] = (self.cursors[0] + stride_lines as u64) % self.footprint_lines;
                LineAddr::new(line)
            }
            AccessPattern::Random => LineAddr::new(rng.gen_range(0..self.footprint_lines)),
            AccessPattern::PointerChase => {
                // Full-period LCG over the power-of-two footprint
                // (Hull–Dobell: c odd, a ≡ 1 mod 4).
                let m = self.footprint_lines;
                let line = self.cursors[0];
                self.cursors[0] = (self.cursors[0]
                    .wrapping_mul(1_664_525)
                    .wrapping_add(1_013_904_223))
                    % m;
                LineAddr::new(line)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn sequential_streams_advance_independently() {
        let mut s = FreshStream::new(AccessPattern::Sequential { streams: 2 }, 100);
        let mut r = rng();
        let a0 = s.next_line(&mut r); // stream 0 base 0
        let b0 = s.next_line(&mut r); // stream 1 base 50
        let a1 = s.next_line(&mut r);
        let b1 = s.next_line(&mut r);
        assert_eq!(a0.index(), 0);
        assert_eq!(b0.index(), 50);
        assert_eq!(a1.index(), 1);
        assert_eq!(b1.index(), 51);
    }

    #[test]
    fn sequential_wraps_at_footprint() {
        let mut s = FreshStream::new(AccessPattern::Sequential { streams: 1 }, 3);
        let mut r = rng();
        let seq: Vec<u64> = (0..6).map(|_| s.next_line(&mut r).index()).collect();
        assert_eq!(seq, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn strided_skips_lines() {
        let mut s = FreshStream::new(AccessPattern::Strided { stride_lines: 16 }, 64);
        let mut r = rng();
        let seq: Vec<u64> = (0..5).map(|_| s.next_line(&mut r).index()).collect();
        assert_eq!(seq, [0, 16, 32, 48, 0]);
    }

    #[test]
    fn random_stays_in_footprint() {
        let mut s = FreshStream::new(AccessPattern::Random, 128);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(s.next_line(&mut r).index() < 128);
        }
    }

    #[test]
    fn pointer_chase_covers_whole_footprint_per_lap() {
        let n = 256;
        let mut s = FreshStream::new(AccessPattern::PointerChase, n);
        let mut r = rng();
        let seen: HashSet<u64> = (0..n).map(|_| s.next_line(&mut r).index()).collect();
        assert_eq!(
            seen.len() as u64,
            n,
            "full-period walk must visit every line"
        );
    }

    #[test]
    fn pointer_chase_is_not_sequential() {
        let mut s = FreshStream::new(AccessPattern::PointerChase, 1024);
        let mut r = rng();
        let mut sequential_pairs = 0;
        let mut prev = s.next_line(&mut r).index();
        for _ in 0..100 {
            let cur = s.next_line(&mut r).index();
            if cur == prev + 1 {
                sequential_pairs += 1;
            }
            prev = cur;
        }
        assert!(
            sequential_pairs < 5,
            "walk must defeat a next-line prefetcher"
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn pointer_chase_requires_power_of_two() {
        let _ = FreshStream::new(AccessPattern::PointerChase, 100);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            AccessPattern::Sequential { streams: 3 }.to_string(),
            "seq x3"
        );
        assert_eq!(
            AccessPattern::Strided { stride_lines: 8 }.to_string(),
            "stride 8"
        );
        assert_eq!(AccessPattern::Random.to_string(), "random");
        assert_eq!(AccessPattern::PointerChase.to_string(), "pointer");
    }
}
