//! The benchmark registry: Table 2(a) of the paper.

use core::fmt;

use crate::pattern::AccessPattern;

/// Originating benchmark suite (Table 2(a) legend).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECcpu 2000 integer.
    SpecInt2000,
    /// SPECcpu 2006 integer.
    SpecInt2006,
    /// SPECcpu 2000 floating point.
    SpecFp2000,
    /// SPECcpu 2006 floating point.
    SpecFp2006,
    /// BioBench bioinformatics suite.
    BioBench,
    /// MediaBench-I.
    MediaBench1,
    /// MediaBench-II.
    MediaBench2,
    /// MiBench embedded suite.
    MiBench,
    /// McCalpin's STREAM (and its decomposed kernels).
    Stream,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::SpecInt2000 => "I'00",
            Suite::SpecInt2006 => "I'06",
            Suite::SpecFp2000 => "F'00",
            Suite::SpecFp2006 => "F'06",
            Suite::BioBench => "BioBench",
            Suite::MediaBench1 => "Media-I",
            Suite::MediaBench2 => "Media-II",
            Suite::MiBench => "MiBench",
            Suite::Stream => "Stream",
        };
        f.write_str(s)
    }
}

/// The static model of one benchmark: its paper-reported miss intensity and
/// the synthetic personality that reproduces it.
///
/// `mpki_6mb` is the published stand-alone DL2 miss rate at 6 MB
/// (Table 2(a)); the generator consults its fresh-line stream with
/// probability `mpki_6mb / 1000` per instruction, which makes the simulated
/// MPKI land on the published value by construction once the footprint
/// exceeds the cache.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Benchmark {
    /// Short benchmark name as used in the paper ("S.copy", "mcf", …).
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// Published stand-alone L2 MPKI with a 6 MB cache.
    pub mpki_6mb: f64,
    /// Spatial pattern of the cache-missing accesses.
    pub pattern: AccessPattern,
    /// Footprint of the missing stream, in 64-byte cache lines.
    pub footprint_lines: u64,
    /// Fraction of instructions that are memory operations.
    pub mem_fraction: f64,
    /// Fraction of memory operations that are stores.
    pub write_fraction: f64,
}

/// 64 MB expressed in cache lines — the streaming footprint (far larger
/// than any cache evaluated).
const BIG: u64 = (64 << 20) / 64;
/// 16 MB footprint for the moderate programs (still misses a 12 MB L2's
/// per-program share).
const MID: u64 = (16 << 20) / 64;
/// Power-of-two footprints for the pointer chasers.
const BIG_POW2: u64 = 1 << 20; // 64 MB of lines
const MID_POW2: u64 = 1 << 18; // 16 MB of lines

const fn seq(streams: u8) -> AccessPattern {
    AccessPattern::Sequential { streams }
}

const fn stride(lines: u16) -> AccessPattern {
    AccessPattern::Strided {
        stride_lines: lines,
    }
}

/// All 28 benchmarks of Table 2(a), ordered by descending MPKI as printed
/// in the paper.
pub const BENCHMARKS: &[Benchmark] = &[
    Benchmark {
        name: "S.copy",
        suite: Suite::Stream,
        mpki_6mb: 326.9,
        pattern: seq(2),
        footprint_lines: BIG,
        mem_fraction: 0.60,
        write_fraction: 0.50,
    },
    Benchmark {
        name: "S.add",
        suite: Suite::Stream,
        mpki_6mb: 313.2,
        pattern: seq(3),
        footprint_lines: BIG,
        mem_fraction: 0.60,
        write_fraction: 0.33,
    },
    Benchmark {
        name: "S.all",
        suite: Suite::Stream,
        mpki_6mb: 282.2,
        pattern: seq(5),
        footprint_lines: BIG,
        mem_fraction: 0.58,
        write_fraction: 0.40,
    },
    Benchmark {
        name: "S.triad",
        suite: Suite::Stream,
        mpki_6mb: 254.0,
        pattern: seq(3),
        footprint_lines: BIG,
        mem_fraction: 0.55,
        write_fraction: 0.33,
    },
    Benchmark {
        name: "S.scale",
        suite: Suite::Stream,
        mpki_6mb: 252.1,
        pattern: seq(2),
        footprint_lines: BIG,
        mem_fraction: 0.55,
        write_fraction: 0.50,
    },
    Benchmark {
        name: "tigr",
        suite: Suite::BioBench,
        mpki_6mb: 170.6,
        pattern: seq(2),
        footprint_lines: BIG,
        mem_fraction: 0.50,
        write_fraction: 0.15,
    },
    Benchmark {
        name: "qsort",
        suite: Suite::MiBench,
        mpki_6mb: 153.6,
        pattern: seq(2),
        footprint_lines: BIG,
        mem_fraction: 0.45,
        write_fraction: 0.40,
    },
    Benchmark {
        name: "libquantum",
        suite: Suite::SpecInt2006,
        mpki_6mb: 134.5,
        pattern: seq(1),
        footprint_lines: BIG,
        mem_fraction: 0.40,
        write_fraction: 0.25,
    },
    Benchmark {
        name: "soplex",
        suite: Suite::SpecFp2006,
        mpki_6mb: 80.2,
        pattern: AccessPattern::Random,
        footprint_lines: BIG,
        mem_fraction: 0.40,
        write_fraction: 0.20,
    },
    Benchmark {
        name: "milc",
        suite: Suite::SpecFp2006,
        mpki_6mb: 52.6,
        pattern: stride(2),
        footprint_lines: BIG,
        mem_fraction: 0.40,
        write_fraction: 0.30,
    },
    Benchmark {
        name: "wupwise",
        suite: Suite::SpecFp2000,
        mpki_6mb: 40.4,
        pattern: seq(2),
        footprint_lines: BIG,
        mem_fraction: 0.38,
        write_fraction: 0.30,
    },
    Benchmark {
        name: "equake",
        suite: Suite::SpecFp2000,
        mpki_6mb: 37.3,
        pattern: AccessPattern::Random,
        footprint_lines: BIG,
        mem_fraction: 0.40,
        write_fraction: 0.20,
    },
    Benchmark {
        name: "lbm",
        suite: Suite::SpecFp2006,
        mpki_6mb: 36.5,
        pattern: seq(3),
        footprint_lines: BIG,
        mem_fraction: 0.40,
        write_fraction: 0.45,
    },
    Benchmark {
        name: "mcf",
        suite: Suite::SpecInt2006,
        mpki_6mb: 35.1,
        pattern: AccessPattern::PointerChase,
        footprint_lines: BIG_POW2,
        mem_fraction: 0.40,
        write_fraction: 0.15,
    },
    Benchmark {
        name: "mummer",
        suite: Suite::BioBench,
        mpki_6mb: 29.2,
        pattern: AccessPattern::PointerChase,
        footprint_lines: BIG_POW2,
        mem_fraction: 0.42,
        write_fraction: 0.10,
    },
    Benchmark {
        name: "swim",
        suite: Suite::SpecFp2000,
        mpki_6mb: 18.7,
        pattern: seq(3),
        footprint_lines: BIG,
        mem_fraction: 0.38,
        write_fraction: 0.35,
    },
    Benchmark {
        name: "omnetpp",
        suite: Suite::SpecInt2006,
        mpki_6mb: 14.6,
        pattern: AccessPattern::PointerChase,
        footprint_lines: MID_POW2,
        mem_fraction: 0.38,
        write_fraction: 0.25,
    },
    Benchmark {
        name: "applu",
        suite: Suite::SpecFp2006,
        mpki_6mb: 12.2,
        pattern: stride(4),
        footprint_lines: MID,
        mem_fraction: 0.38,
        write_fraction: 0.30,
    },
    Benchmark {
        name: "mgrid",
        suite: Suite::SpecFp2006,
        mpki_6mb: 9.2,
        pattern: stride(8),
        footprint_lines: MID,
        mem_fraction: 0.38,
        write_fraction: 0.25,
    },
    Benchmark {
        name: "apsi",
        suite: Suite::SpecFp2006,
        mpki_6mb: 3.9,
        pattern: stride(2),
        footprint_lines: MID,
        mem_fraction: 0.35,
        write_fraction: 0.25,
    },
    Benchmark {
        name: "h264",
        suite: Suite::MediaBench2,
        mpki_6mb: 2.9,
        pattern: seq(2),
        footprint_lines: MID,
        mem_fraction: 0.35,
        write_fraction: 0.30,
    },
    Benchmark {
        name: "mesa",
        suite: Suite::MediaBench1,
        mpki_6mb: 2.4,
        pattern: seq(1),
        footprint_lines: MID,
        mem_fraction: 0.35,
        write_fraction: 0.30,
    },
    Benchmark {
        name: "gzip",
        suite: Suite::SpecInt2000,
        mpki_6mb: 1.4,
        pattern: seq(1),
        footprint_lines: MID,
        mem_fraction: 0.33,
        write_fraction: 0.30,
    },
    Benchmark {
        name: "astar",
        suite: Suite::SpecInt2006,
        mpki_6mb: 1.4,
        pattern: AccessPattern::PointerChase,
        footprint_lines: MID_POW2,
        mem_fraction: 0.35,
        write_fraction: 0.20,
    },
    Benchmark {
        name: "zeusmp",
        suite: Suite::SpecFp2006,
        mpki_6mb: 1.4,
        pattern: stride(2),
        footprint_lines: MID,
        mem_fraction: 0.35,
        write_fraction: 0.30,
    },
    Benchmark {
        name: "bzip2",
        suite: Suite::SpecInt2006,
        mpki_6mb: 1.4,
        pattern: AccessPattern::Random,
        footprint_lines: MID,
        mem_fraction: 0.33,
        write_fraction: 0.30,
    },
    Benchmark {
        name: "vortex",
        suite: Suite::SpecInt2000,
        mpki_6mb: 1.3,
        pattern: AccessPattern::PointerChase,
        footprint_lines: MID_POW2,
        mem_fraction: 0.33,
        write_fraction: 0.25,
    },
    Benchmark {
        name: "namd",
        suite: Suite::SpecFp2006,
        mpki_6mb: 1.0,
        pattern: AccessPattern::Random,
        footprint_lines: MID,
        mem_fraction: 0.35,
        write_fraction: 0.15,
    },
];

impl Benchmark {
    /// Looks up a benchmark by its paper name.
    pub fn by_name(name: &str) -> Option<&'static Benchmark> {
        BENCHMARKS.iter().find(|b| b.name == name)
    }

    /// All benchmarks in Table 2(a) order (descending MPKI).
    pub fn all() -> &'static [Benchmark] {
        BENCHMARKS
    }

    /// Probability that one instruction consults the fresh (missing)
    /// stream: the published MPKI over 1000.
    pub fn fresh_probability(&self) -> f64 {
        self.mpki_6mb / 1000.0
    }

    /// The footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_lines * 64
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {:.1} MPKI)",
            self.name, self.suite, self.mpki_6mb
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        assert_eq!(BENCHMARKS.len(), 28);
        for pair in BENCHMARKS.windows(2) {
            assert!(
                pair[0].mpki_6mb >= pair[1].mpki_6mb,
                "must be sorted by MPKI"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<&str> = BENCHMARKS.iter().map(|b| b.name).collect();
        assert_eq!(names.len(), 28);
    }

    #[test]
    fn lookup_by_name() {
        let mcf = Benchmark::by_name("mcf").unwrap();
        assert_eq!(mcf.suite, Suite::SpecInt2006);
        assert_eq!(mcf.mpki_6mb, 35.1);
        assert!(Benchmark::by_name("doom").is_none());
    }

    #[test]
    fn fresh_probability_is_consistent() {
        for b in BENCHMARKS {
            let p = b.fresh_probability();
            assert!(
                p > 0.0 && p < b.mem_fraction,
                "{}: fresh rate must fit in mem ops",
                b.name
            );
        }
    }

    #[test]
    fn pointer_chasers_have_power_of_two_footprints() {
        for b in BENCHMARKS {
            if b.pattern == AccessPattern::PointerChase {
                assert!(b.footprint_lines.is_power_of_two(), "{}", b.name);
            }
        }
    }

    #[test]
    fn footprints_exceed_six_megabytes() {
        // Every benchmark's missing stream must actually miss a 6 MB cache.
        for b in BENCHMARKS {
            assert!(b.footprint_bytes() > (6 << 20), "{}", b.name);
        }
    }

    #[test]
    fn stream_kernels_present_with_paper_mpki() {
        assert_eq!(Benchmark::by_name("S.copy").unwrap().mpki_6mb, 326.9);
        assert_eq!(Benchmark::by_name("S.add").unwrap().mpki_6mb, 313.2);
        assert_eq!(Benchmark::by_name("S.all").unwrap().mpki_6mb, 282.2);
        assert_eq!(Benchmark::by_name("S.triad").unwrap().mpki_6mb, 254.0);
        assert_eq!(Benchmark::by_name("S.scale").unwrap().mpki_6mb, 252.1);
    }

    #[test]
    fn display_mentions_suite() {
        let s = Benchmark::by_name("tigr").unwrap().to_string();
        assert!(s.contains("BioBench"));
    }
}
