//! Fixed-size instruction blocks for batched generation.
//!
//! Pulling µops one [`next_instr`](crate::TraceGenerator::next_instr) call
//! at a time costs a virtual dispatch, a generator-state reload and a
//! branch-predictor-hostile call chain *per instruction* — measurable when
//! a run commits billions of µops. A [`InstrBlock`] amortizes all of that:
//! the consumer asks the generator to [`refill`](crate::TraceGenerator::refill)
//! a whole block in one call, then drains it through a bump cursor. The
//! observable instruction sequence is identical by contract (and enforced
//! by the generator-equivalence test suite).

use crate::instr::Instr;

/// Default µops per refill. Large enough to amortize the per-call overhead
/// into noise, small enough that a block stays resident in L1 (256 × 24 B =
/// 6 KB) and never runs meaningfully ahead of the simulation's needs.
pub const BLOCK_LEN: usize = 256;

/// A drainable batch of µops produced by one generator refill.
///
/// The block is a plain buffer plus a read cursor: `refill` fills it to
/// capacity, [`take`](InstrBlock::take) hands out µops in order, and a
/// drained block returns `None` until the next refill.
///
/// # Examples
///
/// ```
/// use stacksim_workload::{Benchmark, InstrBlock, SyntheticWorkload, TraceGenerator};
///
/// let spec = Benchmark::by_name("mcf").unwrap();
/// let mut gen = SyntheticWorkload::new(spec, 42, 0);
/// let mut reference = SyntheticWorkload::new(spec, 42, 0);
/// let mut block = InstrBlock::default();
/// gen.refill(&mut block);
/// // Block generation replays the per-instruction sequence exactly.
/// while let Some(instr) = block.take() {
///     assert_eq!(instr, reference.next_instr());
/// }
/// ```
#[derive(Clone, Debug)]
pub struct InstrBlock {
    instrs: Vec<Instr>,
    pos: usize,
    capacity: usize,
}

impl Default for InstrBlock {
    fn default() -> Self {
        InstrBlock::new(BLOCK_LEN)
    }
}

impl InstrBlock {
    /// Creates an empty block that refills `capacity` µops at a time.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "an instruction block must hold at least one µop"
        );
        InstrBlock {
            instrs: Vec::with_capacity(capacity),
            pos: 0,
            capacity,
        }
    }

    /// Number of µops one refill produces.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// µops still available before the next refill is needed.
    pub fn remaining(&self) -> usize {
        self.instrs.len() - self.pos
    }

    /// Whether every buffered µop has been consumed.
    pub fn is_drained(&self) -> bool {
        self.pos == self.instrs.len()
    }

    /// Empties the block so a refill can start from scratch.
    pub fn clear(&mut self) {
        self.instrs.clear();
        self.pos = 0;
    }

    /// Appends one µop during a refill.
    ///
    /// # Panics
    ///
    /// Panics if the block is already at capacity.
    #[inline]
    pub fn push(&mut self, instr: Instr) {
        assert!(
            self.instrs.len() < self.capacity,
            "instruction block overfilled"
        );
        self.instrs.push(instr);
    }

    /// Bulk-appends µops during a refill (for slice-backed generators).
    ///
    /// # Panics
    ///
    /// Panics if the µops would not fit.
    pub fn extend_from_slice(&mut self, instrs: &[Instr]) {
        assert!(
            self.instrs.len() + instrs.len() <= self.capacity,
            "instruction block overfilled"
        );
        self.instrs.extend_from_slice(instrs);
    }

    /// Takes the next buffered µop, or `None` if the block is drained.
    #[inline]
    pub fn take(&mut self) -> Option<Instr> {
        let instr = *self.instrs.get(self.pos)?;
        self.pos += 1;
        Some(instr)
    }

    /// The µops still buffered, in the order [`take`](InstrBlock::take)
    /// will hand them out. Consumers that can prove a computation depends
    /// only on the upcoming µop sequence (e.g. branch-predictor outcomes)
    /// may precompute it over this slice once per refill instead of once
    /// per µop.
    pub fn pending(&self) -> &[Instr] {
        &self.instrs[self.pos..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_push_order() {
        let mut b = InstrBlock::new(3);
        assert!(b.is_drained());
        b.push(Instr::Compute);
        b.push(Instr::Branch { pc: 1, taken: true });
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.take(), Some(Instr::Compute));
        assert_eq!(b.take(), Some(Instr::Branch { pc: 1, taken: true }));
        assert_eq!(b.take(), None);
        assert!(b.is_drained());
    }

    #[test]
    fn clear_resets_cursor_and_contents() {
        let mut b = InstrBlock::new(2);
        b.push(Instr::Compute);
        let _ = b.take();
        b.clear();
        assert_eq!(b.remaining(), 0);
        b.push(Instr::Compute);
        assert_eq!(b.take(), Some(Instr::Compute));
    }

    #[test]
    fn default_uses_block_len() {
        assert_eq!(InstrBlock::default().capacity(), BLOCK_LEN);
    }

    #[test]
    #[should_panic(expected = "overfilled")]
    fn overfill_panics() {
        let mut b = InstrBlock::new(1);
        b.push(Instr::Compute);
        b.push(Instr::Compute);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_panics() {
        let _ = InstrBlock::new(0);
    }
}
