//! The instruction vocabulary the CPU model executes.

use core::fmt;
use stacksim_types::PhysAddr;

/// One committed µop of a synthetic program.
///
/// The timing model only needs to distinguish memory operations (which walk
/// the cache hierarchy) from everything else (which retires at pipeline
/// speed), plus the instruction pointer for the IP-indexed stride
/// prefetcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// A non-memory µop (ALU, branch, …).
    Compute,
    /// A load from `addr`, issued by the static instruction at `pc`.
    Load {
        /// Instruction pointer (prefetcher training key).
        pc: u64,
        /// Physical address accessed.
        addr: PhysAddr,
    },
    /// A store to `addr`, issued by the static instruction at `pc`.
    Store {
        /// Instruction pointer (prefetcher training key).
        pc: u64,
        /// Physical address accessed.
        addr: PhysAddr,
    },
    /// A conditional branch at `pc` that resolves to `taken`.
    Branch {
        /// Instruction pointer (branch-predictor key).
        pc: u64,
        /// The architectural outcome.
        taken: bool,
    },
}

impl Instr {
    /// Whether this µop accesses memory.
    pub const fn is_mem(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// Whether this µop writes memory.
    pub const fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }

    /// Whether this µop is a conditional branch.
    pub const fn is_branch(&self) -> bool {
        matches!(self, Instr::Branch { .. })
    }

    /// The accessed address, if any.
    pub const fn addr(&self) -> Option<PhysAddr> {
        match self {
            Instr::Load { addr, .. } | Instr::Store { addr, .. } => Some(*addr),
            Instr::Compute | Instr::Branch { .. } => None,
        }
    }

    /// The instruction pointer, if a memory µop or branch.
    pub const fn pc(&self) -> Option<u64> {
        match self {
            Instr::Load { pc, .. } | Instr::Store { pc, .. } | Instr::Branch { pc, .. } => {
                Some(*pc)
            }
            Instr::Compute => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Compute => f.write_str("nop"),
            Instr::Load { pc, addr } => write!(f, "ld[{pc:#x}] {addr}"),
            Instr::Store { pc, addr } => write!(f, "st[{pc:#x}] {addr}"),
            Instr::Branch { pc, taken } => {
                write!(f, "br[{pc:#x}] {}", if *taken { "T" } else { "N" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let l = Instr::Load {
            pc: 1,
            addr: PhysAddr::new(64),
        };
        let s = Instr::Store {
            pc: 2,
            addr: PhysAddr::new(128),
        };
        assert!(l.is_mem() && !l.is_store());
        assert!(s.is_mem() && s.is_store());
        assert!(!Instr::Compute.is_mem());
        let b = Instr::Branch { pc: 3, taken: true };
        assert!(!b.is_mem() && b.is_branch() && b.addr().is_none());
        assert_eq!(b.pc(), Some(3));
        assert!(!Instr::Compute.is_branch());
        assert_eq!(l.addr(), Some(PhysAddr::new(64)));
        assert_eq!(Instr::Compute.addr(), None);
        assert_eq!(s.pc(), Some(2));
        assert_eq!(Instr::Compute.pc(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Instr::Compute.to_string(), "nop");
        let l = Instr::Load {
            pc: 16,
            addr: PhysAddr::new(64),
        };
        assert_eq!(l.to_string(), "ld[0x10] 0x40");
        assert_eq!(
            Instr::Branch {
                pc: 16,
                taken: false
            }
            .to_string(),
            "br[0x10] N"
        );
    }
}
