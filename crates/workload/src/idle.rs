//! An idle program: compute-only filler for partially-occupied machines.

use crate::block::InstrBlock;
use crate::instr::Instr;
use crate::synth::TraceGenerator;

/// A generator that only ever retires compute µops — it occupies a core
/// without touching memory.
///
/// Used to measure a program's *alone* IPC on an otherwise-idle machine
/// (the denominator of weighted-speedup and fairness metrics): the real
/// program runs on one core while [`IdleProgram`]s fill the others, so the
/// machine configuration (and its shared-resource plumbing) stays
/// identical to the multi-programmed runs.
///
/// # Examples
///
/// ```
/// use stacksim_workload::{IdleProgram, Instr, TraceGenerator};
///
/// let mut idle = IdleProgram::new();
/// assert_eq!(idle.next_instr(), Instr::Compute);
/// assert_eq!(idle.name(), "idle");
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct IdleProgram;

impl IdleProgram {
    /// Creates an idle program.
    pub fn new() -> Self {
        IdleProgram
    }
}

impl TraceGenerator for IdleProgram {
    fn next_instr(&mut self) -> Instr {
        Instr::Compute
    }

    fn name(&self) -> &str {
        "idle"
    }

    fn refill(&mut self, block: &mut InstrBlock) {
        block.clear();
        for _ in 0..block.capacity() {
            block.push(Instr::Compute);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_touches_memory() {
        let mut idle = IdleProgram::new();
        for _ in 0..1000 {
            let i = idle.next_instr();
            assert!(!i.is_mem() && !i.is_branch());
        }
    }
}
