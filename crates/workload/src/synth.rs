//! The synthetic instruction-stream generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stacksim_types::{PhysAddr, LINE_BYTES};

use crate::block::InstrBlock;
use crate::instr::Instr;
use crate::pattern::FreshStream;
use crate::spec::Benchmark;

/// Number of hot cache lines every program cycles through for its
/// cache-hitting memory operations (16 KB — comfortably inside the 24 KB
/// DL1, so hot traffic behaves like the L1-resident working set of a real
/// program).
const HOT_LINES: u64 = 256;

/// Fraction of non-memory µops that are conditional branches (one branch
/// per ~5-6 instructions, typical of integer code).
const BRANCH_FRACTION: f64 = 0.18;

/// Fraction of branch executions steered by the hard (data-dependent,
/// near-random) branch rather than a predictable loop branch.
const HARD_BRANCH_FRACTION: f64 = 0.10;

/// Static loop branches per program.
const LOOP_BRANCHES: usize = 4;

/// A deterministic, infinite source of committed µops.
///
/// The CPU model pulls instructions one at a time; generators must be
/// infinitely repeatable (programs in the paper keep running and competing
/// for shared resources even after their statistics freeze, §2.4).
pub trait TraceGenerator {
    /// Produces the next µop.
    fn next_instr(&mut self) -> Instr;

    /// The benchmark's display name.
    fn name(&self) -> &str;

    /// Refills `block` with the next `block.capacity()` µops in one call.
    ///
    /// The contract is bit-identity: a refill must produce **exactly** the
    /// sequence that the same number of [`next_instr`](Self::next_instr)
    /// calls would, consuming generator state (including any RNG draws) in
    /// the same order. The default implementation delegates to
    /// `next_instr`, so every generator is automatically correct; hot
    /// generators override it with a monomorphized loop that amortizes the
    /// per-µop call overhead away.
    fn refill(&mut self, block: &mut InstrBlock) {
        block.clear();
        for _ in 0..block.capacity() {
            block.push(self.next_instr());
        }
    }
}

/// Synthesizes the instruction stream of one Table 2(a) benchmark.
///
/// Per instruction, with probability `mpki/1000` the program touches a
/// *fresh* cache line from its pattern stream (a guaranteed L2 miss while
/// the footprint exceeds the cache); otherwise, with probability up to
/// `mem_fraction`, it touches its hot working set (cache hits); otherwise
/// it retires a compute µop. Stores occur among memory µops at
/// `write_fraction`.
///
/// All addresses fall inside `[base, base + footprint + hot set)`, so
/// multi-programmed mixes place each program at a disjoint base — the
/// paper's first-come-first-serve physical allocation.
///
/// # Examples
///
/// ```
/// use stacksim_workload::{Benchmark, SyntheticWorkload, TraceGenerator};
///
/// let spec = Benchmark::by_name("S.copy").unwrap();
/// let mut a = SyntheticWorkload::new(spec, 1, 0);
/// let mut b = SyntheticWorkload::new(spec, 1, 0);
/// // Same seed, same stream: fully deterministic.
/// for _ in 0..100 {
///     assert_eq!(a.next_instr(), b.next_instr());
/// }
/// ```
#[derive(Clone, Debug)]
pub struct SyntheticWorkload {
    spec: &'static Benchmark,
    rng: SmallRng,
    fresh: FreshStream,
    base_line: u64,
    hot_cursor: u64,
    pc_base: u64,
    generated: u64,
    /// Per loop-branch: (trip count, iteration counter). The branch is
    /// taken except on the last iteration of each trip — the pattern a
    /// history-based predictor learns and a bimodal one misses.
    loops: [(u32, u32); LOOP_BRANCHES],
    next_loop: usize,
}

impl SyntheticWorkload {
    /// Creates a generator for `spec`, seeded deterministically, placing
    /// the program's data at byte address `base` (must be line-aligned).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 64-byte aligned.
    pub fn new(spec: &'static Benchmark, seed: u64, base: u64) -> Self {
        assert!(
            base.is_multiple_of(LINE_BYTES),
            "base address must be line-aligned"
        );
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5374_6163_6b53_696d);
        let mut fresh = FreshStream::new(spec.pattern, spec.footprint_lines);
        fresh.randomize_phase(&mut rng);
        let mut loops = [(0u32, 0u32); LOOP_BRANCHES];
        for entry in &mut loops {
            entry.0 = rng.gen_range(4..48);
        }
        SyntheticWorkload {
            spec,
            rng,
            fresh,
            base_line: base / LINE_BYTES,
            hot_cursor: 0,
            pc_base: 0x40_0000 + (seed << 8),
            generated: 0,
            loops,
            next_loop: 0,
        }
    }

    /// The benchmark spec driving this generator.
    pub const fn spec(&self) -> &'static Benchmark {
        self.spec
    }

    /// µops generated so far.
    pub const fn generated(&self) -> u64 {
        self.generated
    }

    /// Total bytes this program can touch (footprint + hot set).
    pub fn span_bytes(&self) -> u64 {
        (self.spec.footprint_lines + HOT_LINES) * LINE_BYTES
    }

    /// Produces the next conditional branch: mostly predictable loop
    /// back-edges, plus a slice of data-dependent coin flips.
    fn branch_instr(&mut self) -> Instr {
        if self.rng.gen::<f64>() < HARD_BRANCH_FRACTION {
            let pc = self.pc_base + 0x2000;
            return Instr::Branch {
                pc,
                taken: self.rng.gen::<bool>(),
            };
        }
        let slot = self.next_loop;
        self.next_loop = (self.next_loop + 1) % LOOP_BRANCHES;
        let (trip, counter) = &mut self.loops[slot];
        *counter += 1;
        let taken = if *counter >= *trip {
            *counter = 0;
            false // loop exit
        } else {
            true // back edge
        };
        Instr::Branch {
            pc: self.pc_base + 0x3000 + 16 * slot as u64,
            taken,
        }
    }

    fn mem_instr(&mut self, rel_line: u64, pc: u64) -> Instr {
        let addr = PhysAddr::new((self.base_line + rel_line) * LINE_BYTES);
        if self.rng.gen::<f64>() < self.spec.write_fraction {
            Instr::Store { pc, addr }
        } else {
            Instr::Load { pc, addr }
        }
    }

    /// The single generation step, shared verbatim by the per-instruction
    /// and block paths so the two observable sequences cannot drift apart
    /// (every RNG draw happens here, in one fixed order).
    #[inline(always)]
    fn gen_one(&mut self) -> Instr {
        self.generated += 1;
        let r = self.rng.gen::<f64>();
        if r < self.spec.fresh_probability() {
            let line = self.fresh.next_line(&mut self.rng);
            let pc = self.pc_base + 16 * self.fresh.last_slot() as u64;
            self.mem_instr(line.index(), pc)
        } else if r < self.spec.mem_fraction {
            // Hot-set access: cycles through a small L1-resident region
            // placed just past the footprint.
            let line = self.spec.footprint_lines + (self.hot_cursor % HOT_LINES);
            self.hot_cursor += 1;
            let pc = self.pc_base + 0x1000 + 16 * (self.hot_cursor % 4);
            self.mem_instr(line, pc)
        } else if self.rng.gen::<f64>() < BRANCH_FRACTION {
            self.branch_instr()
        } else {
            Instr::Compute
        }
    }
}

impl TraceGenerator for SyntheticWorkload {
    fn next_instr(&mut self) -> Instr {
        self.gen_one()
    }

    fn name(&self) -> &str {
        self.spec.name
    }

    /// Monomorphized batch loop: one virtual call per block instead of one
    /// per µop, with the generation step inlined into a tight loop.
    fn refill(&mut self, block: &mut InstrBlock) {
        block.clear();
        for _ in 0..block.capacity() {
            block.push(self.gen_one());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(name: &str) -> SyntheticWorkload {
        SyntheticWorkload::new(Benchmark::by_name(name).unwrap(), 7, 0)
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = gen("mcf");
        let mut b = gen("mcf");
        for _ in 0..1000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let spec = Benchmark::by_name("soplex").unwrap();
        let mut a = SyntheticWorkload::new(spec, 1, 0);
        let mut b = SyntheticWorkload::new(spec, 2, 0);
        let same = (0..1000)
            .filter(|_| a.next_instr() == b.next_instr())
            .count();
        assert!(same < 1000);
    }

    #[test]
    fn mem_fraction_is_respected() {
        let mut g = gen("S.copy");
        let n = 100_000;
        let mem = (0..n).filter(|_| g.next_instr().is_mem()).count();
        let frac = mem as f64 / n as f64;
        assert!((frac - 0.60).abs() < 0.02, "mem fraction {frac}");
    }

    #[test]
    fn fresh_line_rate_tracks_published_mpki() {
        use std::collections::HashSet;
        // Count distinct new lines touched per kilo-instruction; for a
        // footprint >> any cache this is the program's intrinsic MPKI.
        for name in ["S.copy", "libquantum", "mcf", "namd"] {
            let mut g = gen(name);
            let mut seen: HashSet<u64> = HashSet::new();
            let n = 200_000u64;
            let mut fresh = 0u64;
            for _ in 0..n {
                if let Some(addr) = g.next_instr().addr() {
                    if seen.insert(addr.line().index()) {
                        fresh += 1;
                    }
                }
            }
            let mpki = fresh as f64 / n as f64 * 1000.0;
            let expect = Benchmark::by_name(name).unwrap().mpki_6mb;
            // Hot-set lines inflate the count by at most HOT_LINES overall.
            let tolerance = expect * 0.1 + 2.0;
            assert!(
                (mpki - expect).abs() < tolerance,
                "{name}: intrinsic MPKI {mpki:.1} vs published {expect}"
            );
        }
    }

    #[test]
    fn addresses_stay_within_program_span() {
        let mut g = SyntheticWorkload::new(Benchmark::by_name("qsort").unwrap(), 3, 1 << 31);
        let base = 1u64 << 31;
        let span = g.span_bytes();
        for _ in 0..50_000 {
            if let Some(addr) = g.next_instr().addr() {
                assert!(addr.raw() >= base && addr.raw() < base + span);
            }
        }
    }

    #[test]
    fn store_fraction_roughly_matches() {
        let mut g = gen("S.copy"); // write_fraction 0.5
        let mut mem = 0u64;
        let mut stores = 0u64;
        for _ in 0..100_000 {
            let i = g.next_instr();
            if i.is_mem() {
                mem += 1;
                if i.is_store() {
                    stores += 1;
                }
            }
        }
        let frac = stores as f64 / mem as f64;
        assert!((frac - 0.5).abs() < 0.03, "store fraction {frac}");
    }

    #[test]
    fn branches_are_emitted_with_loop_structure() {
        let mut g = gen("gzip");
        let mut branches = 0u64;
        let mut taken = 0u64;
        let n = 100_000;
        for _ in 0..n {
            if let Instr::Branch { taken: t, .. } = g.next_instr() {
                branches += 1;
                taken += u64::from(t);
            }
        }
        assert!(branches > 0, "programs must contain branches");
        let taken_rate = taken as f64 / branches as f64;
        // Loop back-edges dominate: branches are mostly taken.
        assert!(
            taken_rate > 0.75 && taken_rate < 0.99,
            "taken rate {taken_rate}"
        );
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn unaligned_base_panics() {
        let _ = SyntheticWorkload::new(Benchmark::by_name("mcf").unwrap(), 0, 13);
    }

    #[test]
    fn trait_object_usable() {
        let mut boxed: Box<dyn TraceGenerator> = Box::new(gen("tigr"));
        assert_eq!(boxed.name(), "tigr");
        let _ = boxed.next_instr();
    }
}
