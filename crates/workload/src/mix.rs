//! The twelve four-program workload mixes of Table 2(b).

use core::fmt;

use crate::spec::Benchmark;

/// Memory-intensity class of a mix (the paper reports GM(H,VH) as its
/// primary metric and GM(all) as supplementary).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MixClass {
    /// High miss rate.
    High,
    /// Very high miss rate (STREAM-dominated).
    VeryHigh,
    /// High/moderate blend.
    HighModerate,
    /// Moderate miss rate.
    Moderate,
}

impl fmt::Display for MixClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MixClass::High => "H",
            MixClass::VeryHigh => "VH",
            MixClass::HighModerate => "HM",
            MixClass::Moderate => "M",
        };
        f.write_str(s)
    }
}

/// One four-program multi-programmed workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mix {
    /// The paper's mix name ("H1", "VH2", …).
    pub name: &'static str,
    /// Intensity class.
    pub class: MixClass,
    /// The four programs, one per core.
    pub programs: [&'static str; 4],
    /// Baseline HMIPC the paper reports for this mix on the 2D machine
    /// (Table 2(b)) — kept for reference/plot labels, not used by the
    /// simulator.
    pub paper_hmipc: f64,
}

/// All twelve mixes of Table 2(b).
pub const MIXES: &[Mix] = &[
    Mix {
        name: "H1",
        class: MixClass::High,
        programs: ["S.all", "libquantum", "wupwise", "mcf"],
        paper_hmipc: 0.153,
    },
    Mix {
        name: "H2",
        class: MixClass::High,
        programs: ["tigr", "soplex", "equake", "mummer"],
        paper_hmipc: 0.105,
    },
    Mix {
        name: "H3",
        class: MixClass::High,
        programs: ["qsort", "milc", "lbm", "swim"],
        paper_hmipc: 0.406,
    },
    Mix {
        name: "VH1",
        class: MixClass::VeryHigh,
        programs: ["S.all", "S.all", "S.all", "S.all"],
        paper_hmipc: 0.065,
    },
    Mix {
        name: "VH2",
        class: MixClass::VeryHigh,
        programs: ["S.copy", "S.scale", "S.add", "S.triad"],
        paper_hmipc: 0.058,
    },
    Mix {
        name: "VH3",
        class: MixClass::VeryHigh,
        programs: ["tigr", "libquantum", "qsort", "soplex"],
        paper_hmipc: 0.098,
    },
    Mix {
        name: "HM1",
        class: MixClass::HighModerate,
        programs: ["tigr", "equake", "applu", "astar"],
        paper_hmipc: 0.138,
    },
    Mix {
        name: "HM2",
        class: MixClass::HighModerate,
        programs: ["libquantum", "mcf", "apsi", "bzip2"],
        paper_hmipc: 0.386,
    },
    Mix {
        name: "HM3",
        class: MixClass::HighModerate,
        programs: ["milc", "swim", "mesa", "namd"],
        paper_hmipc: 0.907,
    },
    Mix {
        name: "M1",
        class: MixClass::Moderate,
        programs: ["omnetpp", "apsi", "gzip", "bzip2"],
        paper_hmipc: 1.323,
    },
    Mix {
        name: "M2",
        class: MixClass::Moderate,
        programs: ["applu", "h264", "astar", "vortex"],
        paper_hmipc: 1.319,
    },
    Mix {
        name: "M3",
        class: MixClass::Moderate,
        programs: ["mgrid", "mesa", "zeusmp", "namd"],
        paper_hmipc: 1.523,
    },
];

impl Mix {
    /// All twelve mixes in the paper's order.
    pub fn all() -> &'static [Mix] {
        MIXES
    }

    /// Looks up a mix by name.
    pub fn by_name(name: &str) -> Option<&'static Mix> {
        MIXES.iter().find(|m| m.name == name)
    }

    /// The mixes of the paper's primary metric: classes H and VH.
    pub fn memory_intensive() -> impl Iterator<Item = &'static Mix> {
        MIXES
            .iter()
            .filter(|m| matches!(m.class, MixClass::High | MixClass::VeryHigh))
    }

    /// Resolves the four program names to benchmark specs.
    ///
    /// # Panics
    ///
    /// Panics if a program name is missing from the registry (the constant
    /// tables are covered by tests, so this indicates a typo in new code).
    pub fn benchmarks(&self) -> [&'static Benchmark; 4] {
        self.programs.map(|p| {
            Benchmark::by_name(p)
                .unwrap_or_else(|| panic!("unknown benchmark {p} in mix {}", self.name))
        })
    }
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {}",
            self.name,
            self.class,
            self.programs.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_mixes_three_per_class() {
        assert_eq!(MIXES.len(), 12);
        for class in [
            MixClass::High,
            MixClass::VeryHigh,
            MixClass::HighModerate,
            MixClass::Moderate,
        ] {
            assert_eq!(MIXES.iter().filter(|m| m.class == class).count(), 3);
        }
    }

    #[test]
    fn every_program_resolves() {
        for mix in MIXES {
            let specs = mix.benchmarks();
            assert_eq!(specs.len(), 4);
        }
    }

    #[test]
    fn memory_intensive_is_h_and_vh() {
        let names: Vec<&str> = Mix::memory_intensive().map(|m| m.name).collect();
        assert_eq!(names, ["H1", "H2", "H3", "VH1", "VH2", "VH3"]);
    }

    #[test]
    fn lookup_and_display() {
        let m = Mix::by_name("VH2").unwrap();
        assert_eq!(m.class, MixClass::VeryHigh);
        assert!(m.to_string().contains("S.triad"));
        assert!(Mix::by_name("X9").is_none());
    }

    #[test]
    fn vh_mixes_are_stream_heavy() {
        let vh1 = Mix::by_name("VH1").unwrap();
        assert!(vh1.programs.iter().all(|&p| p == "S.all"));
    }

    #[test]
    fn paper_hmipc_ordering_h_vs_m() {
        // Moderate mixes run much faster than very-high-miss mixes.
        let vh_max = MIXES
            .iter()
            .filter(|m| m.class == MixClass::VeryHigh)
            .map(|m| m.paper_hmipc)
            .fold(0.0, f64::max);
        let m_min = MIXES
            .iter()
            .filter(|m| m.class == MixClass::Moderate)
            .map(|m| m.paper_hmipc)
            .fold(f64::INFINITY, f64::min);
        assert!(vh_max < m_min);
    }
}
