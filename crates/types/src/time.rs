//! Simulated time.
//!
//! The whole machine is simulated at CPU-clock granularity (3.333 GHz in the
//! paper's baseline). Slower clock domains (the 833 MHz front-side bus, DRAM
//! command timing) are expressed as integer multiples of the CPU cycle via
//! [`ClockDomain`], mirroring the paper's rule that "everything is rounded up
//! to be integral multiples of the CPU cycle time".

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in CPU cycles since simulation start.
///
/// # Examples
///
/// ```
/// use stacksim_types::{Cycle, Cycles};
///
/// let t = Cycle::ZERO + Cycles::new(100);
/// assert_eq!(t.raw(), 100);
/// assert_eq!(t - Cycle::ZERO, Cycles::new(100));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// Simulation start.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a time point from a raw cycle count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the later of two time points.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> Cycles {
        Cycles(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A duration in CPU cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero-length duration.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a duration from a raw cycle count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Duration from nanoseconds at a given core frequency, rounded **up**
    /// to a whole number of cycles (the paper's integral-cycle rule).
    ///
    /// # Examples
    ///
    /// ```
    /// use stacksim_types::Cycles;
    ///
    /// // 12 ns at 3.333 GHz = 39.996 cycles -> 40.
    /// assert_eq!(Cycles::from_ns(12.0, 3.333e9).raw(), 40);
    /// ```
    pub fn from_ns(ns: f64, core_hz: f64) -> Cycles {
        assert!(ns >= 0.0 && core_hz > 0.0, "negative time or frequency");
        let exact = ns * 1e-9 * core_hz;
        // Tolerate floating-point noise so that exact multiples (e.g. 3 ns at
        // 1 GHz) do not spuriously round up to the next cycle.
        let nearest = exact.round();
        if (exact - nearest).abs() < 1e-6 {
            Cycles(nearest as u64)
        } else {
            Cycles(exact.ceil() as u64)
        }
    }

    /// Scales the duration by an integer factor.
    #[inline]
    pub const fn times(self, factor: u64) -> Cycles {
        Cycles(self.0 * factor)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl Add<Cycles> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: Cycles) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<Cycles> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = Cycles;

    #[inline]
    fn sub(self, rhs: Cycle) -> Cycles {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        Cycles(self.0 - rhs.0)
    }
}

impl Add<Cycles> for Cycles {
    type Output = Cycles;

    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign<Cycles> for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

/// A clock domain slower than (or equal to) the CPU clock, expressed as an
/// integer divisor of the CPU frequency.
///
/// The paper's baseline FSB runs at 833.3 MHz against a 3.333 GHz core —
/// divisor 4. On-stack configurations run the bus at core speed — divisor 1.
///
/// # Examples
///
/// ```
/// use stacksim_types::{ClockDomain, Cycle, Cycles};
///
/// let fsb = ClockDomain::new(4);
/// // One bus cycle costs 4 CPU cycles.
/// assert_eq!(fsb.ticks(3), Cycles::new(12));
/// // The next bus clock edge at or after CPU cycle 5 is cycle 8.
/// assert_eq!(fsb.next_edge(Cycle::new(5)), Cycle::new(8));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ClockDomain {
    divisor: u64,
}

impl ClockDomain {
    /// A domain running at the full CPU clock.
    pub const CORE: ClockDomain = ClockDomain { divisor: 1 };

    /// Creates a clock domain running at `cpu_freq / divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn new(divisor: u64) -> Self {
        assert!(divisor > 0, "clock divisor must be non-zero");
        ClockDomain { divisor }
    }

    /// The integer divisor relative to the CPU clock.
    #[inline]
    pub const fn divisor(self) -> u64 {
        self.divisor
    }

    /// Duration of `n` ticks of this domain, in CPU cycles.
    #[inline]
    pub const fn ticks(self, n: u64) -> Cycles {
        Cycles(n * self.divisor)
    }

    /// The first clock edge of this domain at or after `now`.
    #[inline]
    pub fn next_edge(self, now: Cycle) -> Cycle {
        let rem = now.0 % self.divisor;
        if rem == 0 {
            now
        } else {
            Cycle(now.0 + (self.divisor - rem))
        }
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        ClockDomain::CORE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ns_rounds_up() {
        // 36 ns at 3.333 GHz = 119.988 -> 120 cycles (paper tRAS).
        assert_eq!(Cycles::from_ns(36.0, 3.333e9).raw(), 120);
        // exact multiples stay exact
        assert_eq!(Cycles::from_ns(3.0, 1e9).raw(), 3);
    }

    #[test]
    fn cycle_arithmetic() {
        let mut t = Cycle::ZERO;
        t += Cycles::new(7);
        assert_eq!(t, Cycle::new(7));
        assert_eq!(t + Cycles::new(3), Cycle::new(10));
        assert_eq!(Cycle::new(10) - Cycle::new(7), Cycles::new(3));
        assert_eq!(Cycle::new(3).saturating_since(Cycle::new(10)), Cycles::ZERO);
    }

    #[test]
    fn clock_edges() {
        let d = ClockDomain::new(4);
        assert_eq!(d.next_edge(Cycle::new(0)), Cycle::new(0));
        assert_eq!(d.next_edge(Cycle::new(1)), Cycle::new(4));
        assert_eq!(d.next_edge(Cycle::new(4)), Cycle::new(4));
        assert_eq!(ClockDomain::CORE.next_edge(Cycle::new(13)), Cycle::new(13));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_divisor_panics() {
        let _ = ClockDomain::new(0);
    }

    #[test]
    fn max_picks_later() {
        assert_eq!(Cycle::new(3).max(Cycle::new(9)), Cycle::new(9));
    }
}
