//! Error types.

use core::fmt;

/// Error returned when a machine configuration is internally inconsistent
/// (e.g. a rank count that does not divide evenly among memory controllers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with a human-readable reason.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_reason() {
        let e = ConfigError::new("ranks must divide MCs");
        assert_eq!(
            e.to_string(),
            "invalid configuration: ranks must divide MCs"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
