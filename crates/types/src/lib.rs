//! Core identifier, address, time and configuration types shared by every
//! crate in the `stacksim` workspace.
//!
//! `stacksim` reproduces Gabriel Loh's ISCA 2008 paper *"3D-Stacked Memory
//! Architectures for Multi-Core Processors"*. This crate holds the vocabulary
//! types that the cache, DRAM, memory-controller and CPU models all speak:
//!
//! * [`PhysAddr`], [`LineAddr`] and [`PageIndex`] — physical addresses and
//!   their cache-line / page granular views;
//! * [`Cycle`] — a point in simulated time, measured in CPU clock cycles;
//! * strongly-typed component identifiers ([`CoreId`], [`McId`], [`RankId`],
//!   [`BankId`], …);
//! * [`AddressMapper`] — the page-interleaved physical-address → DRAM
//!   location decode used throughout the paper's §4.1 floorplans;
//! * shared configuration structs ([`DramTiming`], [`BusConfig`], …).
//!
//! # Examples
//!
//! ```
//! use stacksim_types::{AddressMapper, MemoryGeometry, PhysAddr};
//!
//! let geom = MemoryGeometry::new(8 << 30, 8, 8, 4096, 2).unwrap();
//! let mapper = AddressMapper::new(geom);
//! let loc = mapper.decode(PhysAddr::new(0x1234_5678));
//! assert!(loc.mc.index() < 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod config;
mod error;
mod fast_hash;
mod ids;
mod mapping;
mod time;

pub use addr::{
    LineAddr, PageIndex, PhysAddr, LINE_BYTES, LINE_OFFSET_BITS, PAGE_BYTES, PAGE_OFFSET_BITS,
};
pub use config::{BusConfig, DramTiming, DramTimingCycles, MemoryKind, RefreshConfig};
pub use error::ConfigError;
pub use fast_hash::{FastBuildHasher, FastHasher};
pub use ids::{BankId, CoreId, L2BankId, McId, MshrBankId, RankId, ThreadId};
pub use mapping::{AddressMapper, DramLocation, InterleaveGranularity, MemoryGeometry};
pub use time::{ClockDomain, Cycle, Cycles};
