//! Shared configuration structs for the memory system.

use crate::error::ConfigError;
use crate::time::{ClockDomain, Cycles};

/// Which physical memory implementation the machine uses.
///
/// These correspond to the configurations of the paper's Figure 4
/// progression (the *-wide* and rank/MC variations are expressed through
/// [`BusConfig`] and `MemoryGeometry`, not here).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// Commodity off-chip DRAM behind a front-side bus ("2D").
    #[default]
    OffChip2D,
    /// Commodity DRAM dies stacked on the processor; unchanged array timing
    /// but on-stack buses at core clock ("3D").
    Stacked3D,
    /// "True" 3D-split DRAM: bitcell arrays folded across layers above a
    /// dedicated high-speed logic layer, reducing array access time by
    /// 32.5 % ("3D-fast", after Tezzaron's five-layer part).
    True3DSplit,
}

impl MemoryKind {
    /// Whether the memory is on the 3D stack (affects refresh period and bus
    /// clocking).
    pub const fn is_stacked(self) -> bool {
        matches!(self, MemoryKind::Stacked3D | MemoryKind::True3DSplit)
    }

    /// The kind's canonical name (the scenario-file spelling).
    pub const fn name(&self) -> &'static str {
        match self {
            MemoryKind::OffChip2D => "off-chip-2d",
            MemoryKind::Stacked3D => "stacked-3d",
            MemoryKind::True3DSplit => "true-3d-split",
        }
    }

    /// Parses a canonical name back into a kind. `None` for an unknown name.
    ///
    /// # Examples
    ///
    /// ```
    /// use stacksim_types::MemoryKind;
    ///
    /// assert_eq!(MemoryKind::from_name("stacked-3d"), Some(MemoryKind::Stacked3D));
    /// assert_eq!(MemoryKind::from_name("2d"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<MemoryKind> {
        match name {
            "off-chip-2d" => Some(MemoryKind::OffChip2D),
            "stacked-3d" => Some(MemoryKind::Stacked3D),
            "true-3d-split" => Some(MemoryKind::True3DSplit),
            _ => None,
        }
    }
}

/// DRAM array timing parameters, in nanoseconds (Table 1 of the paper).
///
/// # Examples
///
/// ```
/// use stacksim_types::DramTiming;
///
/// let t2d = DramTiming::COMMODITY_2D;
/// let t3d = DramTiming::TRUE_3D;
/// assert!(t3d.t_ras_ns < t2d.t_ras_ns);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramTiming {
    /// Row access strobe: minimum time a row stays open (activate →
    /// precharge), ns.
    pub t_ras_ns: f64,
    /// Row-to-column delay: activate → first column command, ns.
    pub t_rcd_ns: f64,
    /// Column access strobe latency: column read → first data, ns.
    pub t_cas_ns: f64,
    /// Write recovery time, ns.
    pub t_wr_ns: f64,
    /// Row precharge time, ns.
    pub t_rp_ns: f64,
    /// Column-to-column command spacing, ns: how often back-to-back column
    /// bursts may issue to an open row. This is the bank's *occupancy* per
    /// row-buffer hit, distinct from the tCAS *latency* of each access.
    pub t_ccd_ns: f64,
}

impl DramTiming {
    /// Commodity DDR2 timing used for the 2D, 3D and 3D-wide configurations
    /// (Table 1: tRAS = 36 ns; tRCD = tCAS = tWR = tRP = 12 ns).
    pub const COMMODITY_2D: DramTiming = DramTiming {
        t_ras_ns: 36.0,
        t_rcd_ns: 12.0,
        t_cas_ns: 12.0,
        t_wr_ns: 12.0,
        t_rp_ns: 12.0,
        t_ccd_ns: 3.0, // two DDR2-533 memory clocks
    };

    /// True-3D split-array timing (Table 1: tRAS = 24.3 ns; others 8.1 ns),
    /// the conservative 32.5 % reduction from Tezzaron's five-layer part.
    pub const TRUE_3D: DramTiming = DramTiming {
        t_ras_ns: 24.3,
        t_rcd_ns: 8.1,
        t_cas_ns: 8.1,
        t_wr_ns: 8.1,
        t_rp_ns: 8.1,
        t_ccd_ns: 2.025, // same 32.5 % reduction as the other parameters
    };

    /// Converts all parameters to CPU cycles at `core_hz`, rounding each up
    /// to an integral cycle count (paper §3).
    pub fn to_cycles(&self, core_hz: f64) -> DramTimingCycles {
        DramTimingCycles {
            t_ras: Cycles::from_ns(self.t_ras_ns, core_hz),
            t_rcd: Cycles::from_ns(self.t_rcd_ns, core_hz),
            t_cas: Cycles::from_ns(self.t_cas_ns, core_hz),
            t_wr: Cycles::from_ns(self.t_wr_ns, core_hz),
            t_rp: Cycles::from_ns(self.t_rp_ns, core_hz),
            t_ccd: Cycles::from_ns(self.t_ccd_ns, core_hz),
        }
    }

    /// Scales every parameter by `factor` (used for sensitivity studies).
    pub fn scaled(&self, factor: f64) -> DramTiming {
        assert!(factor > 0.0, "scale factor must be positive");
        DramTiming {
            t_ras_ns: self.t_ras_ns * factor,
            t_rcd_ns: self.t_rcd_ns * factor,
            t_cas_ns: self.t_cas_ns * factor,
            t_wr_ns: self.t_wr_ns * factor,
            t_rp_ns: self.t_rp_ns * factor,
            t_ccd_ns: self.t_ccd_ns * factor,
        }
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming::COMMODITY_2D
    }
}

// Timing parameters are fixed design points (never NaN), so bitwise
// float identity is a sound equality — required for use in memoization
// keys over whole system configurations.
impl Eq for DramTiming {}

impl core::hash::Hash for DramTiming {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.t_ras_ns.to_bits().hash(state);
        self.t_rcd_ns.to_bits().hash(state);
        self.t_cas_ns.to_bits().hash(state);
        self.t_wr_ns.to_bits().hash(state);
        self.t_rp_ns.to_bits().hash(state);
        self.t_ccd_ns.to_bits().hash(state);
    }
}

/// [`DramTiming`] pre-converted to integral CPU cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramTimingCycles {
    /// Minimum activate → precharge spacing.
    pub t_ras: Cycles,
    /// Activate → column command.
    pub t_rcd: Cycles,
    /// Column read → data.
    pub t_cas: Cycles,
    /// Write recovery.
    pub t_wr: Cycles,
    /// Precharge.
    pub t_rp: Cycles,
    /// Column-to-column spacing (bank occupancy per open-row burst).
    pub t_ccd: Cycles,
}

impl DramTimingCycles {
    /// Latency of a row-buffer *miss* read: precharge + activate + CAS.
    pub fn row_miss_read(&self) -> Cycles {
        self.t_rp + self.t_rcd + self.t_cas
    }

    /// Latency of a row-buffer *hit* read: CAS only.
    pub fn row_hit_read(&self) -> Cycles {
        self.t_cas
    }
}

/// DRAM refresh configuration.
///
/// The paper uses 64 ms for off-chip DRAM and 32 ms for on-stack DRAM (the
/// hotter stack leaks faster, following Ghosh & Lee).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RefreshConfig {
    /// Full refresh period over all rows, in milliseconds. `None` disables
    /// refresh modelling.
    pub period_ms: Option<f64>,
}

impl RefreshConfig {
    /// 64 ms refresh (commodity off-chip DDR2).
    pub const OFF_CHIP: RefreshConfig = RefreshConfig {
        period_ms: Some(64.0),
    };
    /// 32 ms refresh (on-stack, higher temperature).
    pub const ON_STACK: RefreshConfig = RefreshConfig {
        period_ms: Some(32.0),
    };
    /// Refresh disabled.
    pub const DISABLED: RefreshConfig = RefreshConfig { period_ms: None };

    /// Interval between successive row refreshes in CPU cycles, given the
    /// number of rows a refresh engine must cover and the core frequency.
    ///
    /// Returns `None` when refresh is disabled.
    pub fn row_interval(&self, rows: u64, core_hz: f64) -> Option<Cycles> {
        let period = self.period_ms?;
        assert!(rows > 0, "refresh over zero rows");
        let interval_ns = period * 1e6 / rows as f64;
        Some(Cycles::from_ns(interval_ns, core_hz))
    }
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig::OFF_CHIP
    }
}

// Refresh periods are fixed design points (never NaN); see [`DramTiming`].
impl Eq for RefreshConfig {}

impl core::hash::Hash for RefreshConfig {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.period_ms.map(f64::to_bits).hash(state);
    }
}

/// A data bus between the memory controller(s) and the DRAM, or the
/// front-side bus between the processor and an off-chip controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusConfig {
    /// Usable data width in bytes per bus clock edge.
    pub width_bytes: u32,
    /// Clock domain the bus runs in.
    pub clock: ClockDomain,
}

impl BusConfig {
    /// Creates the paper's baseline off-chip FSB: 64-bit (8-byte) wide at
    /// 833.3 MHz DDR — an effective 1.66 GHz transfer rate, i.e. one
    /// transfer edge every 2 CPU cycles at 3.333 GHz.
    pub fn fsb_2d() -> BusConfig {
        BusConfig {
            width_bytes: 8,
            clock: ClockDomain::new(2),
        }
    }

    /// An on-stack bus at core clock with the given width.
    pub fn on_stack(width_bytes: u32) -> BusConfig {
        BusConfig {
            width_bytes,
            clock: ClockDomain::CORE,
        }
    }

    /// Number of CPU cycles the bus is occupied transferring `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the bus width is zero.
    pub fn transfer_cycles(&self, bytes: u32) -> Result<Cycles, ConfigError> {
        if self.width_bytes == 0 {
            return Err(ConfigError::new("bus width must be non-zero"));
        }
        let beats = bytes.div_ceil(self.width_bytes) as u64;
        Ok(self.clock.ticks(beats))
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig::fsb_2d()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORE_HZ: f64 = 3.333e9;

    #[test]
    fn table1_timings_in_cycles() {
        let t = DramTiming::COMMODITY_2D.to_cycles(CORE_HZ);
        assert_eq!(t.t_ras.raw(), 120); // 36ns * 3.333GHz = 119.99 -> 120
        assert_eq!(t.t_cas.raw(), 40); // 12ns -> 40
        let t3 = DramTiming::TRUE_3D.to_cycles(CORE_HZ);
        assert_eq!(t3.t_ras.raw(), 81); // 24.3ns * 3.333 = 80.99 -> 81
        assert_eq!(t3.t_cas.raw(), 27); // 8.1ns * 3.333 = 26.99 -> 27
    }

    #[test]
    fn true_3d_is_about_32_percent_faster() {
        let ratio = DramTiming::TRUE_3D.t_ras_ns / DramTiming::COMMODITY_2D.t_ras_ns;
        assert!((ratio - 0.675).abs() < 1e-9);
    }

    #[test]
    fn row_hit_cheaper_than_miss() {
        let t = DramTiming::COMMODITY_2D.to_cycles(CORE_HZ);
        assert!(t.row_hit_read() < t.row_miss_read());
        assert_eq!(t.row_miss_read(), t.t_rp + t.t_rcd + t.t_cas);
    }

    #[test]
    fn refresh_row_interval() {
        // 64 ms over 32768 rows/bank-group -> ~1953 ns per row.
        let r = RefreshConfig::OFF_CHIP
            .row_interval(32768, CORE_HZ)
            .unwrap();
        assert!(r.raw() > 6000 && r.raw() < 7000);
        assert!(RefreshConfig::DISABLED
            .row_interval(32768, CORE_HZ)
            .is_none());
        // on-stack refreshes twice as often
        let s = RefreshConfig::ON_STACK
            .row_interval(32768, CORE_HZ)
            .unwrap();
        assert!(s.raw() < r.raw());
    }

    #[test]
    fn bus_transfer_cycles() {
        // 64-byte line over 8-byte FSB at divisor 2: 8 beats * 2 = 16 cycles.
        let fsb = BusConfig::fsb_2d();
        assert_eq!(fsb.transfer_cycles(64).unwrap().raw(), 16);
        // 64-byte on-stack bus: 1 beat * 1 = 1 cycle.
        let wide = BusConfig::on_stack(64);
        assert_eq!(wide.transfer_cycles(64).unwrap().raw(), 1);
        // 8-byte on-stack bus at core clock: 8 cycles.
        let narrow = BusConfig::on_stack(8);
        assert_eq!(narrow.transfer_cycles(64).unwrap().raw(), 8);
    }

    #[test]
    fn zero_width_bus_is_error() {
        let b = BusConfig {
            width_bytes: 0,
            clock: ClockDomain::CORE,
        };
        assert!(b.transfer_cycles(64).is_err());
    }

    #[test]
    fn memory_kind_stacking() {
        assert!(!MemoryKind::OffChip2D.is_stacked());
        assert!(MemoryKind::Stacked3D.is_stacked());
        assert!(MemoryKind::True3DSplit.is_stacked());
    }

    #[test]
    fn scaled_timing() {
        let half = DramTiming::COMMODITY_2D.scaled(0.5);
        assert!((half.t_ras_ns - 18.0).abs() < 1e-12);
    }
}
