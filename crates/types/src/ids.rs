//! Strongly-typed component identifiers.
//!
//! Every hardware structure in the simulated machine is addressed by a
//! newtype index so that, e.g., a rank number can never be confused with a
//! bank number at a call site (C-NEWTYPE).

use core::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u16);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(index: u16) -> Self {
                $name(index)
            }

            /// The raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u16> for $name {
            fn from(index: u16) -> Self {
                $name(index)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                debug_assert!(index <= u16::MAX as usize, "id out of range");
                $name(index as u16)
            }
        }
    };
}

define_id!(
    /// Identifies one CPU core of the multi-core processor.
    CoreId,
    "core"
);
define_id!(
    /// Identifies one hardware thread / workload slot (one program of a
    /// multi-programmed mix). In this simulator threads map 1:1 onto cores.
    ThreadId,
    "t"
);
define_id!(
    /// Identifies one memory controller (the paper evaluates 1, 2 and 4 MCs).
    McId,
    "mc"
);
define_id!(
    /// Identifies one DRAM rank, globally across all memory controllers.
    RankId,
    "rank"
);
define_id!(
    /// Identifies one DRAM bank *within* a rank (8 banks/rank in the paper).
    BankId,
    "bank"
);
define_id!(
    /// Identifies one bank of the shared L2 cache (16 banks in the paper).
    L2BankId,
    "l2b"
);
define_id!(
    /// Identifies one bank of the banked L2 MSHR file. MSHR banks align
    /// one-to-one with memory controllers (paper §4.1, Figure 5).
    MshrBankId,
    "mshrb"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_indices() {
        let r = RankId::new(3);
        let b = BankId::new(3);
        assert_eq!(r.index(), b.index());
        assert_eq!(r.to_string(), "rank3");
        assert_eq!(b.to_string(), "bank3");
    }

    #[test]
    fn from_usize_roundtrips() {
        let c: CoreId = 2usize.into();
        assert_eq!(c, CoreId::new(2));
        let m: McId = 1u16.into();
        assert_eq!(m.index(), 1);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(L2BankId::new(1) < L2BankId::new(5));
        assert!(MshrBankId::new(0) < MshrBankId::new(1));
        assert!(ThreadId::new(0) < ThreadId::new(3));
    }
}
