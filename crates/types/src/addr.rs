//! Physical addresses and their cache-line / page granular views.

use core::fmt;
use core::ops::{Add, Sub};

/// Number of low address bits covered by one cache line (64 bytes).
pub const LINE_OFFSET_BITS: u32 = 6;
/// Size of a cache line in bytes.
pub const LINE_BYTES: u64 = 1 << LINE_OFFSET_BITS;
/// Number of low address bits covered by one physical page (4096 bytes).
pub const PAGE_OFFSET_BITS: u32 = 12;
/// Size of a physical page (and of one DRAM row) in bytes.
pub const PAGE_BYTES: u64 = 1 << PAGE_OFFSET_BITS;

/// A byte-granular physical memory address.
///
/// The simulator performs virtual-to-physical allocation up front (the paper
/// uses first-come-first-serve allocation, §2.4), so every address seen by
/// the cache hierarchy and the memory system is physical.
///
/// # Examples
///
/// ```
/// use stacksim_types::PhysAddr;
///
/// let a = PhysAddr::new(0x1040);
/// assert_eq!(a.line().index(), 0x41);
/// assert_eq!(a.page().index(), 0x1);
/// assert_eq!(a.line_offset(), 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates an address from a raw byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// The raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_OFFSET_BITS)
    }

    /// The physical page containing this address.
    #[inline]
    pub const fn page(self) -> PageIndex {
        PageIndex(self.0 >> PAGE_OFFSET_BITS)
    }

    /// Byte offset of this address inside its cache line.
    #[inline]
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }

    /// Byte offset of this address inside its physical page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_BYTES - 1)
    }

    /// Returns this address rounded down to its cache-line base.
    #[inline]
    pub const fn line_aligned(self) -> PhysAddr {
        PhysAddr(self.0 & !(LINE_BYTES - 1))
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

impl Add<u64> for PhysAddr {
    type Output = PhysAddr;

    #[inline]
    fn add(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0.wrapping_add(rhs))
    }
}

impl Sub<u64> for PhysAddr {
    type Output = PhysAddr;

    #[inline]
    fn sub(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0.wrapping_sub(rhs))
    }
}

/// A cache-line-granular address: a physical address shifted right by
/// [`LINE_OFFSET_BITS`].
///
/// All miss tracking (MSHRs, memory requests) operates on line addresses
/// since a whole 64-byte line is transferred per fill.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line index (byte address >> 6).
    #[inline]
    pub const fn new(index: u64) -> Self {
        LineAddr(index)
    }

    /// The line index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The base byte address of the line.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << LINE_OFFSET_BITS)
    }

    /// The physical page containing this line.
    #[inline]
    pub const fn page(self) -> PageIndex {
        PageIndex(self.0 >> (PAGE_OFFSET_BITS - LINE_OFFSET_BITS))
    }

    /// Index of this line within its page (0..64 for 4 KB pages / 64 B lines).
    #[inline]
    pub const fn line_in_page(self) -> u64 {
        self.0 & ((1 << (PAGE_OFFSET_BITS - LINE_OFFSET_BITS)) - 1)
    }

    /// The next sequential line (used by next-line prefetchers).
    #[inline]
    pub const fn next(self) -> LineAddr {
        LineAddr(self.0.wrapping_add(1))
    }

    /// Offsets the line address by a signed number of lines.
    #[inline]
    pub const fn offset(self, delta: i64) -> LineAddr {
        LineAddr(self.0.wrapping_add(delta as u64))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<PhysAddr> for LineAddr {
    fn from(a: PhysAddr) -> Self {
        a.line()
    }
}

/// A page-granular address: a physical address shifted right by
/// [`PAGE_OFFSET_BITS`].
///
/// Main memory is interleaved across memory controllers, ranks and banks at
/// page granularity (one DRAM row holds exactly one 4 KB page), following the
/// paper's §4.1 banking discussion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageIndex(u64);

impl PageIndex {
    /// Creates a page index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        PageIndex(index)
    }

    /// The page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The base byte address of the page.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_OFFSET_BITS)
    }
}

impl fmt::Display for PageIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:#x}", self.0)
    }
}

impl From<PhysAddr> for PageIndex {
    fn from(a: PhysAddr) -> Self {
        a.page()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_decomposition() {
        let a = PhysAddr::new(0x0000_1234_5678);
        assert_eq!(a.line().index(), 0x0000_1234_5678 >> 6);
        assert_eq!(a.page().index(), 0x0000_1234_5678 >> 12);
        assert_eq!(a.line_offset(), 0x38);
        assert_eq!(a.page_offset(), 0x678);
    }

    #[test]
    fn line_aligned_clears_offset() {
        let a = PhysAddr::new(0x1FFF);
        assert_eq!(a.line_aligned().raw(), 0x1FC0);
        assert_eq!(a.line_aligned().line(), a.line());
    }

    #[test]
    fn line_roundtrip_through_base() {
        let l = LineAddr::new(12345);
        assert_eq!(l.base().line(), l);
    }

    #[test]
    fn page_roundtrip_through_base() {
        let p = PageIndex::new(999);
        assert_eq!(p.base().page(), p);
    }

    #[test]
    fn lines_per_page_is_64() {
        let base = PageIndex::new(7).base();
        let last = base + (PAGE_BYTES - 1);
        assert_eq!(last.line().line_in_page(), 63);
        assert_eq!(base.line().line_in_page(), 0);
    }

    #[test]
    fn next_line_crosses_page_boundary() {
        let l = LineAddr::new(63);
        assert_eq!(l.page().index(), 0);
        assert_eq!(l.next().page().index(), 1);
    }

    #[test]
    fn signed_offset_wraps_consistently() {
        let l = LineAddr::new(100);
        assert_eq!(l.offset(-4).index(), 96);
        assert_eq!(l.offset(4).index(), 104);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PhysAddr::new(0x40).to_string(), "0x40");
        assert_eq!(LineAddr::new(1).to_string(), "L0x1");
        assert_eq!(PageIndex::new(2).to_string(), "P0x2");
    }
}
