//! A fast, deterministic hasher for the simulator's hot keyed maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) dominates the cost of
//! per-access map operations on the simulator hot path — CAM MSHR lookups,
//! page-table translations — each paying a full keyed SipHash round for a
//! single-word key. The keys are simulated addresses, not untrusted input,
//! so attacker-resistant hashing buys nothing; a two-multiply mix is both
//! sufficient and several times faster.
//!
//! Determinism also matters in its own right: SipHash draws per-process
//! random keys, and while no simulator code iterates these maps (simlint
//! D003 enforces that), a fixed hash function removes the randomness from
//! the picture entirely.

use std::hash::{BuildHasher, Hasher};

/// Multiplier for the streaming mix (the 64-bit golden-ratio constant, as
/// in Fibonacci hashing).
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;
/// Multiplier for the finalizer (from the MurmurHash3/SplitMix64 fmix step).
const FMIX: u64 = 0xFF51_AFD7_ED55_8CCD;

/// A deterministic multiplicative [`Hasher`].
///
/// Streams words through an xor-multiply mix and applies an xor-shift
/// finalizer so that entropy reaches the low bits the hash table indexes
/// with. Not collision-resistant against adversarial keys — do not use it
/// for untrusted input.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut h = self.state;
        h ^= h >> 33;
        h = h.wrapping_mul(FMIX);
        h ^ (h >> 33)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback for compound keys; the hot path (u64 newtype
        // keys) goes through `write_u64` below.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.state = (self.state ^ n).wrapping_mul(MIX);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// [`BuildHasher`] producing [`FastHasher`]s. Stateless: every build yields
/// the same (deterministic) hash function.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastBuildHasher;

impl BuildHasher for FastBuildHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuildHasher.hash_one(v)
    }

    #[test]
    fn deterministic_across_builds() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        let a = FastBuildHasher.build_hasher().finish();
        let b = FastBuildHasher.build_hasher().finish();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_keys_disperse_low_bits() {
        // The table indexes with low bits: sequential line addresses must
        // not collide there.
        let mut low_bits: Vec<u64> = (0..64u64).map(|i| hash_of(&i) & 0xFF).collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert!(
            low_bits.len() > 48,
            "sequential keys collapse in the low bits: {} distinct of 64",
            low_bits.len()
        );
    }

    #[test]
    fn byte_stream_fallback_matches_word_writes() {
        let mut a = FastHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FastHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
