//! Physical-address → DRAM-location decode and L2-bank interleaving.
//!
//! The paper interleaves main memory across memory controllers, ranks and
//! banks at **page granularity** (one DRAM row buffers one 4 KB page), and —
//! crucially for the §4.1 "streamlined" floorplan — re-banks the L2 at the
//! same page granularity so that each L2 bank communicates with exactly one
//! memory controller.

use crate::addr::{PhysAddr, PAGE_BYTES};
use crate::error::ConfigError;
use crate::ids::{BankId, L2BankId, McId, RankId};

/// Granularity at which consecutive addresses rotate among L2 banks.
///
/// Commodity designs interleave at cache-line granularity; the paper's 3D
/// organizations switch to page granularity so L2 banks align with memory
/// controllers (§4.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum InterleaveGranularity {
    /// Rotate banks every 64-byte cache line.
    Line,
    /// Rotate banks every 4096-byte page (paper's streamlined organization).
    #[default]
    Page,
}

/// Static geometry of the main-memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryGeometry {
    total_bytes: u64,
    ranks: u16,
    banks_per_rank: u16,
    row_bytes: u64,
    mcs: u16,
}

impl MemoryGeometry {
    /// Creates a memory geometry.
    ///
    /// * `total_bytes` — total physical memory (8 GB in the paper);
    /// * `ranks` — global rank count (8 or 16 in the paper);
    /// * `banks_per_rank` — 8 in the paper;
    /// * `row_bytes` — DRAM row / page size (4096 in the paper);
    /// * `mcs` — number of memory controllers (1, 2 or 4 in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any count is zero, if `ranks` is not a
    /// multiple of `mcs` (each MC must own an equal, disjoint set of ranks),
    /// or if sizes are not powers of two.
    pub fn new(
        total_bytes: u64,
        ranks: u16,
        banks_per_rank: u16,
        row_bytes: u64,
        mcs: u16,
    ) -> Result<Self, ConfigError> {
        if total_bytes == 0 || ranks == 0 || banks_per_rank == 0 || row_bytes == 0 || mcs == 0 {
            return Err(ConfigError::new("geometry counts must be non-zero"));
        }
        if !ranks.is_multiple_of(mcs) {
            return Err(ConfigError::new(format!(
                "{ranks} ranks do not divide evenly among {mcs} memory controllers"
            )));
        }
        if !row_bytes.is_power_of_two() || !total_bytes.is_power_of_two() {
            return Err(ConfigError::new(
                "row and total sizes must be powers of two",
            ));
        }
        let rows_total = total_bytes / row_bytes;
        let banks_total = ranks as u64 * banks_per_rank as u64;
        if rows_total < banks_total {
            return Err(ConfigError::new("fewer rows than banks"));
        }
        Ok(MemoryGeometry {
            total_bytes,
            ranks,
            banks_per_rank,
            row_bytes,
            mcs,
        })
    }

    /// Total physical memory in bytes.
    pub const fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Global rank count.
    pub const fn ranks(&self) -> u16 {
        self.ranks
    }

    /// Banks per rank.
    pub const fn banks_per_rank(&self) -> u16 {
        self.banks_per_rank
    }

    /// Total banks across all ranks.
    pub const fn total_banks(&self) -> u32 {
        self.ranks as u32 * self.banks_per_rank as u32
    }

    /// DRAM row (page) size in bytes.
    pub const fn row_bytes(&self) -> u64 {
        self.row_bytes
    }

    /// Number of memory controllers.
    pub const fn mcs(&self) -> u16 {
        self.mcs
    }

    /// Ranks owned by each memory controller.
    pub const fn ranks_per_mc(&self) -> u16 {
        self.ranks / self.mcs
    }

    /// Rows per bank.
    pub const fn rows_per_bank(&self) -> u64 {
        self.total_bytes / self.row_bytes / self.total_banks() as u64
    }
}

/// A fully decoded DRAM location for one physical address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DramLocation {
    /// Owning memory controller.
    pub mc: McId,
    /// Global rank identifier.
    pub rank: RankId,
    /// Rank index local to the owning MC (`rank.index() / mcs`).
    pub rank_in_mc: u16,
    /// Bank within the rank.
    pub bank: BankId,
    /// Row within the bank (one row = one 4 KB page).
    pub row: u64,
    /// Byte column within the row.
    pub column: u64,
}

/// Decodes physical addresses into DRAM locations and L2 bank indices.
///
/// Page `p` maps to MC `p mod mcs`, then to rank `⌊p/mcs⌋ mod ranks_per_mc`
/// within that MC, then to bank `⌊p/(mcs·ranks_per_mc)⌋ mod banks_per_rank`,
/// and the remaining bits select the row. Consecutive pages therefore rotate
/// across MCs first (maximizing controller-level parallelism), then ranks,
/// then banks — the highest-parallelism page-interleave for the paper's
/// topology.
///
/// # Examples
///
/// ```
/// use stacksim_types::{AddressMapper, MemoryGeometry, PhysAddr};
///
/// let geom = MemoryGeometry::new(8 << 30, 16, 8, 4096, 4).unwrap();
/// let mapper = AddressMapper::new(geom);
/// // Page 0 -> MC0, page 1 -> MC1, ...
/// assert_eq!(mapper.decode(PhysAddr::new(0)).mc.index(), 0);
/// assert_eq!(mapper.decode(PhysAddr::new(4096)).mc.index(), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddressMapper {
    geom: MemoryGeometry,
}

impl AddressMapper {
    /// Creates a mapper over the given geometry.
    pub const fn new(geom: MemoryGeometry) -> Self {
        AddressMapper { geom }
    }

    /// The underlying geometry.
    pub const fn geometry(&self) -> &MemoryGeometry {
        &self.geom
    }

    /// Decodes a physical address into its DRAM location.
    pub fn decode(&self, addr: PhysAddr) -> DramLocation {
        let g = &self.geom;
        let page = addr.raw() / g.row_bytes;
        let mcs = g.mcs as u64;
        let ranks_per_mc = g.ranks_per_mc() as u64;
        let banks = g.banks_per_rank as u64;

        let mc = (page % mcs) as u16;
        let rest = page / mcs;
        let rank_in_mc = (rest % ranks_per_mc) as u16;
        let rest = rest / ranks_per_mc;
        let bank = (rest % banks) as u16;
        let row = rest / banks;
        let column = addr.raw() % g.row_bytes;

        DramLocation {
            mc: McId::new(mc),
            rank: RankId::new(rank_in_mc * g.mcs + mc),
            rank_in_mc,
            bank: BankId::new(bank),
            row,
            column,
        }
    }

    /// Maps an address to one of `l2_banks` L2 cache banks at the given
    /// interleave granularity.
    pub fn l2_bank(
        &self,
        addr: PhysAddr,
        l2_banks: u16,
        granularity: InterleaveGranularity,
    ) -> L2BankId {
        let unit = match granularity {
            InterleaveGranularity::Line => addr.line().index(),
            InterleaveGranularity::Page => addr.raw() / PAGE_BYTES,
        };
        L2BankId::new((unit % l2_banks as u64) as u16)
    }

    /// The memory controller that owns an address.
    pub fn mc_of(&self, addr: PhysAddr) -> McId {
        self.decode(addr).mc
    }

    /// With page-granularity interleaving and `l2_banks` a multiple of the
    /// MC count, every L2 bank routes to exactly one MC. Returns that MC for
    /// a given L2 bank, or `None` if the alignment property does not hold.
    ///
    /// This is the §4.1 "streamlined floorplan" invariant: a miss in L2 bank
    /// *b* can only allocate in MSHR bank `b mod mcs` and only access the
    /// ranks of MC `b mod mcs`.
    pub fn mc_for_l2_bank(&self, bank: L2BankId, l2_banks: u16) -> Option<McId> {
        if !l2_banks.is_multiple_of(self.geom.mcs) {
            return None;
        }
        Some(McId::new((bank.index() as u16) % self.geom.mcs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_BYTES;

    fn mapper(ranks: u16, mcs: u16) -> AddressMapper {
        AddressMapper::new(MemoryGeometry::new(8 << 30, ranks, 8, 4096, mcs).unwrap())
    }

    #[test]
    fn geometry_validation() {
        assert!(MemoryGeometry::new(8 << 30, 8, 8, 4096, 3).is_err()); // 8 % 3 != 0
        assert!(MemoryGeometry::new(0, 8, 8, 4096, 1).is_err());
        assert!(MemoryGeometry::new(8 << 30, 8, 8, 4095, 1).is_err()); // not pow2
        assert!(MemoryGeometry::new(8 << 30, 16, 8, 4096, 4).is_ok());
    }

    #[test]
    fn rows_per_bank_consistent() {
        let g = MemoryGeometry::new(8 << 30, 8, 8, 4096, 1).unwrap();
        // 8 GB / 4 KB rows = 2M rows, / 64 banks = 32768 rows/bank.
        assert_eq!(g.rows_per_bank(), 32768);
    }

    #[test]
    fn consecutive_pages_rotate_mcs_first() {
        let m = mapper(16, 4);
        for p in 0..16u64 {
            let loc = m.decode(PhysAddr::new(p * PAGE_BYTES));
            assert_eq!(loc.mc.index() as u64, p % 4);
        }
    }

    #[test]
    fn rank_ownership_is_disjoint_per_mc() {
        let m = mapper(16, 4);
        for p in 0..4096u64 {
            let loc = m.decode(PhysAddr::new(p * PAGE_BYTES));
            // Global rank id must map back to the same MC (rank % mcs == mc).
            assert_eq!(loc.rank.index() % 4, loc.mc.index());
            assert!(loc.rank_in_mc < 4);
        }
    }

    #[test]
    fn decode_is_injective_over_a_window() {
        use std::collections::HashSet;
        let m = mapper(8, 2);
        let mut seen = HashSet::new();
        for p in 0..10_000u64 {
            let loc = m.decode(PhysAddr::new(p * PAGE_BYTES));
            assert!(
                seen.insert((loc.mc, loc.rank, loc.bank, loc.row)),
                "duplicate location for page {p}"
            );
        }
    }

    #[test]
    fn column_is_page_offset() {
        let m = mapper(8, 2);
        let loc = m.decode(PhysAddr::new(3 * PAGE_BYTES + 123));
        assert_eq!(loc.column, 123);
    }

    #[test]
    fn same_page_same_bank_row() {
        let m = mapper(16, 4);
        let a = m.decode(PhysAddr::new(77 * PAGE_BYTES));
        let b = m.decode(PhysAddr::new(77 * PAGE_BYTES + 4000));
        assert_eq!((a.mc, a.rank, a.bank, a.row), (b.mc, b.rank, b.bank, b.row));
    }

    #[test]
    fn l2_bank_interleave_granularities() {
        let m = mapper(8, 2);
        // Line granularity: consecutive lines hit different banks.
        let b0 = m.l2_bank(PhysAddr::new(0), 16, InterleaveGranularity::Line);
        let b1 = m.l2_bank(PhysAddr::new(64), 16, InterleaveGranularity::Line);
        assert_ne!(b0, b1);
        // Page granularity: all lines in a page hit the same bank.
        let p0 = m.l2_bank(PhysAddr::new(0), 16, InterleaveGranularity::Page);
        let p1 = m.l2_bank(PhysAddr::new(64), 16, InterleaveGranularity::Page);
        assert_eq!(p0, p1);
    }

    #[test]
    fn streamlined_invariant_l2_bank_to_single_mc() {
        // With page interleave, l2 bank index mod mcs == page mod mcs == mc.
        let m = mapper(16, 4);
        for p in 0..256u64 {
            let addr = PhysAddr::new(p * PAGE_BYTES);
            let bank = m.l2_bank(addr, 16, InterleaveGranularity::Page);
            let mc = m.mc_of(addr);
            assert_eq!(m.mc_for_l2_bank(bank, 16), Some(mc));
        }
    }

    #[test]
    fn mc_for_l2_bank_requires_alignment() {
        let m = mapper(16, 4);
        assert!(m.mc_for_l2_bank(L2BankId::new(0), 6).is_none());
    }
}
