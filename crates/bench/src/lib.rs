//! Shared plumbing for the `stacksim` benchmark harness.
//!
//! The harness has two faces:
//!
//! * `cargo bench -p stacksim-bench` — Criterion benches, one per paper
//!   table/figure plus microbenches of the hot substrates, each regenerating
//!   its rows at bench-friendly windows;
//! * `cargo run -p stacksim-bench --release --bin reproduce` — the full
//!   reproduction pass over all twelve mixes at publication windows,
//!   printing every table the paper reports (the source of
//!   `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod obs;

use stacksim::runner::RunConfig;
use stacksim::scenario::Machines;
use stacksim_workload::Mix;

/// The six named machines the experiment drivers take. Benches use the
/// builtin constructors directly (no file IO inside an iterated bench);
/// `tests/scenarios.rs` keeps these bit-identical to the shipped
/// `scenarios/` files.
pub fn bench_machines() -> Machines {
    Machines::builtin()
}

/// The window used by Criterion benches: long enough to be past warmup
/// transients, short enough for iterated measurement.
pub fn bench_run() -> RunConfig {
    RunConfig {
        warmup_cycles: 5_000,
        measure_cycles: 25_000,
        seed: 0xBE7C,
        ..RunConfig::default()
    }
}

/// The window used by the full reproduction binary.
pub fn full_run() -> RunConfig {
    RunConfig {
        warmup_cycles: 30_000,
        measure_cycles: 250_000,
        seed: 0xC0FFEE,
        ..RunConfig::default()
    }
}

/// A small representative mix subset for iterated benches: one of each
/// class.
pub fn bench_mixes() -> Vec<&'static Mix> {
    ["VH2", "H1", "HM2", "M1"]
        .iter()
        .map(|n| Mix::by_name(n).expect("known mix"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_mixes_cover_all_classes() {
        use stacksim_workload::MixClass;
        let classes: Vec<MixClass> = bench_mixes().iter().map(|m| m.class).collect();
        assert!(classes.contains(&MixClass::VeryHigh));
        assert!(classes.contains(&MixClass::High));
        assert!(classes.contains(&MixClass::HighModerate));
        assert!(classes.contains(&MixClass::Moderate));
    }

    #[test]
    fn windows_are_ordered() {
        assert!(bench_run().measure_cycles < full_run().measure_cycles);
    }
}
